//! Trace validation against the IR's dependency structure.
//!
//! A trace is a witness of one execution; these checks prove the witness
//! is feasible under the program's happens-before relation — the same
//! relation `mscclang::verify` executes symbolically. They are the
//! backbone of the differential test tier: the runtime's wall-clock trace,
//! the simulator's virtual-time trace and the verifier's dependency graph
//! must all tell one consistent story.

use std::collections::HashMap;

use mscclang::{IrProgram, OpCode};

use crate::event::EventKind;
use crate::Trace;

impl Trace {
    /// Checks this trace for internal consistency and, when `ir` is given,
    /// against the program's dependency graph:
    ///
    /// 1. per thread block, `InstrBegin`/`InstrEnd` events are well nested
    ///    (alternating, matching `(step, tile)`); FIFO block/resume
    ///    intervals sit *inside* an instruction, semaphore wait intervals
    ///    sit *between* instructions (`InstrBegin` means dependencies are
    ///    already satisfied);
    /// 2. per thread block, semaphore values ([`EventKind::SemSet`]) are
    ///    strictly increasing;
    /// 3. per connection, sends and receives are numbered `0, 1, 2, …` in
    ///    trace order, every receive pairs with the send of the same
    ///    sequence number (FIFO order), no connection ends with a
    ///    send/receive imbalance, and receive `k` never has an earlier
    ///    timestamp than send `k`;
    /// 4. with `ir`: an instruction begins only at or after the end of
    ///    every `(tb, step)` dependency of the same tile.
    ///
    /// Cause and effect may legally share a timestamp (virtual time, or
    /// wall-clock ties after µs conversion), so cross-thread-block checks
    /// (3) and (4) compare timestamps with `<=` rather than relying on
    /// merged event order.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_consistency(&self, ir: Option<&IrProgram>) -> Result<(), String> {
        self.check_nesting()?;
        self.check_sem_monotonic()?;
        self.check_fifo_pairing()?;
        if let Some(ir) = ir {
            self.check_dependencies(ir)?;
        }
        Ok(())
    }

    fn check_nesting(&self) -> Result<(), String> {
        // (rank, tb) -> currently open instruction.
        let mut open: HashMap<(usize, usize), (usize, usize, OpCode)> = HashMap::new();
        // (rank, tb) -> currently open wait/block kind name.
        let mut open_interval: HashMap<(usize, usize), &'static str> = HashMap::new();
        for e in self.events() {
            let key = (e.rank, e.tb);
            match e.kind {
                EventKind::InstrBegin { step, tile, op } => {
                    if let Some(kind) = open_interval.get(&key) {
                        return Err(format!(
                            "rank {} tb {}: instr_begin(step {step}) while {kind} is open",
                            e.rank, e.tb
                        ));
                    }
                    if let Some(prev) = open.insert(key, (step, tile, op)) {
                        return Err(format!(
                            "rank {} tb {}: instr_begin(step {step}, tile {tile}) while \
                             (step {}, tile {}) is still open",
                            e.rank, e.tb, prev.0, prev.1
                        ));
                    }
                }
                EventKind::InstrEnd { step, tile, op } => match open.remove(&key) {
                    Some((s, t, o)) if s == step && t == tile && o == op => {
                        if let Some(kind) = open_interval.remove(&key) {
                            return Err(format!(
                                "rank {} tb {}: instr_end(step {step}) with open {kind}",
                                e.rank, e.tb
                            ));
                        }
                    }
                    Some((s, t, _)) => {
                        return Err(format!(
                            "rank {} tb {}: instr_end(step {step}, tile {tile}) does not \
                             match open (step {s}, tile {t})",
                            e.rank, e.tb
                        ))
                    }
                    None => {
                        return Err(format!(
                            "rank {} tb {}: instr_end(step {step}) without instr_begin",
                            e.rank, e.tb
                        ))
                    }
                },
                // Semaphore waits gate an instruction, so they happen
                // between instructions: InstrBegin = deps satisfied.
                EventKind::SemWaitEnter { .. } => {
                    if let Some((step, _, _)) = open.get(&key) {
                        return Err(format!(
                            "rank {} tb {}: sem_wait_enter inside instruction step {step}",
                            e.rank, e.tb
                        ));
                    }
                    if let Some(prev) = open_interval.insert(key, e.kind.name()) {
                        return Err(format!(
                            "rank {} tb {}: sem_wait_enter while {prev} is open",
                            e.rank, e.tb
                        ));
                    }
                }
                // FIFO blocking is part of executing a send/recv
                // instruction, so it nests inside the instruction span.
                EventKind::SendBlock { .. } | EventKind::RecvBlock { .. } => {
                    if !open.contains_key(&key) {
                        return Err(format!(
                            "rank {} tb {}: {} outside any instruction",
                            e.rank,
                            e.tb,
                            e.kind.name()
                        ));
                    }
                    if let Some(prev) = open_interval.insert(key, e.kind.name()) {
                        return Err(format!(
                            "rank {} tb {}: {} while {prev} is open",
                            e.rank,
                            e.tb,
                            e.kind.name()
                        ));
                    }
                }
                EventKind::SemWaitExit { .. }
                | EventKind::SendResume { .. }
                | EventKind::RecvResume { .. } => {
                    let expected = match e.kind {
                        EventKind::SemWaitExit { .. } => "sem_wait_enter",
                        EventKind::SendResume { .. } => "send_block",
                        _ => "recv_block",
                    };
                    match open_interval.remove(&key) {
                        Some(kind) if kind == expected => {}
                        Some(kind) => {
                            return Err(format!(
                                "rank {} tb {}: {} closes {kind}",
                                e.rank,
                                e.tb,
                                e.kind.name()
                            ))
                        }
                        None => {
                            return Err(format!(
                                "rank {} tb {}: {} without a matching enter",
                                e.rank,
                                e.tb,
                                e.kind.name()
                            ))
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(((rank, tb), (step, tile, _))) = open.into_iter().next() {
            return Err(format!(
                "rank {rank} tb {tb}: instruction (step {step}, tile {tile}) never ended"
            ));
        }
        Ok(())
    }

    fn check_sem_monotonic(&self) -> Result<(), String> {
        let mut last: HashMap<(usize, usize), u64> = HashMap::new();
        for e in self.events() {
            if let EventKind::SemSet { value } = e.kind {
                let prev = last.insert((e.rank, e.tb), value);
                if let Some(prev) = prev {
                    if value <= prev {
                        return Err(format!(
                            "rank {} tb {}: semaphore value {value} after {prev} \
                             (must be strictly increasing)",
                            e.rank, e.tb
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_fifo_pairing(&self) -> Result<(), String> {
        // Sends first: each connection has exactly one sending thread
        // block, so the stable merge preserves its program order and the
        // sequence numbers must read 0, 1, 2, …
        let mut sends: HashMap<(usize, usize, usize), Vec<f64>> = HashMap::new();
        for e in self.events() {
            if let EventKind::Send {
                dst, channel, seq, ..
            } = e.kind
            {
                let entry = sends.entry((e.rank, dst, channel)).or_default();
                if seq != entry.len() as u64 {
                    return Err(format!(
                        "connection ({}, {dst}, ch {channel}): send seq {seq}, \
                         expected {} (FIFO order)",
                        e.rank,
                        entry.len()
                    ));
                }
                entry.push(e.ts_us);
            }
        }
        // Then receives, paired by sequence number against the sends.
        let mut recvs: HashMap<(usize, usize, usize), u64> = HashMap::new();
        for e in self.events() {
            if let EventKind::Recv {
                src, channel, seq, ..
            } = e.kind
            {
                let conn = (src, e.rank, channel);
                let next = recvs.entry(conn).or_default();
                if seq != *next {
                    return Err(format!(
                        "connection ({src}, {}, ch {channel}): recv seq {seq}, \
                         expected {next} (FIFO order)",
                        e.rank
                    ));
                }
                let sent_at = sends
                    .get(&conn)
                    .and_then(|s| s.get(seq as usize))
                    .copied()
                    .ok_or_else(|| {
                        format!(
                            "connection ({src}, {}, ch {channel}): recv seq {seq} \
                             without a matching send",
                            e.rank
                        )
                    })?;
                if e.ts_us < sent_at {
                    return Err(format!(
                        "connection ({src}, {}, ch {channel}): recv seq {seq} at \
                         {:.3}µs precedes its send at {sent_at:.3}µs",
                        e.rank, e.ts_us
                    ));
                }
                *next += 1;
            }
        }
        for (&(src, dst, channel), sent) in &sends {
            let received = recvs.get(&(src, dst, channel)).copied().unwrap_or(0);
            if sent.len() as u64 != received {
                return Err(format!(
                    "connection ({src}, {dst}, ch {channel}): {} sends but \
                     {received} receives",
                    sent.len()
                ));
            }
        }
        Ok(())
    }

    fn check_dependencies(&self, ir: &IrProgram) -> Result<(), String> {
        // Two passes so the check is insensitive to merge order among
        // equal timestamps: first index every instruction end…
        let mut ended: HashMap<(usize, usize, usize, usize), f64> = HashMap::new();
        for e in self.events() {
            if let EventKind::InstrEnd { step, tile, .. } = e.kind {
                ended.insert((e.rank, e.tb, step, tile), e.ts_us);
            }
        }
        // …then require every begin to be at or after its dependencies'
        // ends within the same tile.
        for e in self.events() {
            let EventKind::InstrBegin { step, tile, .. } = e.kind else {
                continue;
            };
            let Some(gpu) = ir.gpus.iter().find(|g| g.rank == e.rank) else {
                return Err(format!("trace references unknown rank {}", e.rank));
            };
            let Some(tb) = gpu.threadblocks.iter().find(|t| t.id == e.tb) else {
                return Err(format!(
                    "trace references unknown tb {} on rank {}",
                    e.tb, e.rank
                ));
            };
            let Some(instr) = tb.instructions.get(step) else {
                return Err(format!(
                    "trace references unknown step {step} on rank {} tb {}",
                    e.rank, e.tb
                ));
            };
            for dep in &instr.deps {
                match ended.get(&(e.rank, dep.tb, dep.step, tile)) {
                    Some(&end_ts) if end_ts <= e.ts_us => {}
                    Some(&end_ts) => {
                        return Err(format!(
                            "rank {} tb {} step {step} tile {tile} began at \
                             {:.3}µs before its dependency (tb {}, step {}) \
                             ended at {end_ts:.3}µs",
                            e.rank, e.tb, e.ts_us, dep.tb, dep.step
                        ))
                    }
                    None => {
                        return Err(format!(
                            "rank {} tb {} step {step} tile {tile} began but \
                             its dependency (tb {}, step {}) never executed",
                            e.rank, e.tb, dep.tb, dep.step
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockDomain, TraceEvent};

    fn ev(ts: f64, rank: usize, tb: usize, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            rank,
            tb,
            kind,
        }
    }

    fn instr(ts: f64, rank: usize, tb: usize, step: usize, end: bool) -> TraceEvent {
        let op = OpCode::Copy;
        ev(
            ts,
            rank,
            tb,
            if end {
                EventKind::InstrEnd { step, tile: 0, op }
            } else {
                EventKind::InstrBegin { step, tile: 0, op }
            },
        )
    }

    #[test]
    fn unbalanced_connection_is_flagged() {
        let t = Trace::from_buffers(
            ClockDomain::Wall,
            vec![vec![
                instr(0.0, 0, 0, 0, false),
                ev(
                    0.5,
                    0,
                    0,
                    EventKind::Send {
                        dst: 1,
                        channel: 0,
                        seq: 0,
                        bytes: 0,
                    },
                ),
                instr(1.0, 0, 0, 0, true),
                ev(1.0, 0, 0, EventKind::SemSet { value: 1 }),
            ]],
        );
        // One send with no recv: connection imbalance must be flagged.
        assert!(t.check_consistency(None).unwrap_err().contains("receives"));
    }

    #[test]
    fn paired_send_recv_passes() {
        let t = Trace::from_buffers(
            ClockDomain::Wall,
            vec![
                vec![
                    instr(0.0, 0, 0, 0, false),
                    ev(
                        0.5,
                        0,
                        0,
                        EventKind::Send {
                            dst: 1,
                            channel: 0,
                            seq: 0,
                            bytes: 0,
                        },
                    ),
                    instr(1.0, 0, 0, 0, true),
                ],
                vec![
                    instr(0.2, 1, 0, 0, false),
                    ev(0.3, 1, 0, EventKind::RecvBlock { src: 0, channel: 0 }),
                    ev(0.6, 1, 0, EventKind::RecvResume { src: 0, channel: 0 }),
                    ev(
                        0.8,
                        1,
                        0,
                        EventKind::Recv {
                            src: 0,
                            channel: 0,
                            seq: 0,
                            bytes: 0,
                        },
                    ),
                    instr(1.2, 1, 0, 0, true),
                ],
            ],
        );
        t.check_consistency(None).expect("consistent");
    }

    #[test]
    fn recv_before_send_is_flagged() {
        let t = Trace::from_buffers(
            ClockDomain::Wall,
            vec![
                vec![
                    instr(0.0, 0, 0, 0, false),
                    ev(
                        0.5,
                        0,
                        0,
                        EventKind::Send {
                            dst: 1,
                            channel: 0,
                            seq: 0,
                            bytes: 0,
                        },
                    ),
                    instr(1.0, 0, 0, 0, true),
                ],
                vec![
                    instr(0.0, 1, 0, 0, false),
                    ev(
                        0.1,
                        1,
                        0,
                        EventKind::Recv {
                            src: 0,
                            channel: 0,
                            seq: 0,
                            bytes: 0,
                        },
                    ),
                    instr(0.2, 1, 0, 0, true),
                ],
            ],
        );
        assert!(t
            .check_consistency(None)
            .unwrap_err()
            .contains("precedes its send"));
    }

    #[test]
    fn sem_wait_inside_instruction_is_flagged() {
        let t = Trace::from_buffers(
            ClockDomain::Wall,
            vec![vec![
                instr(0.0, 0, 0, 0, false),
                ev(
                    0.1,
                    0,
                    0,
                    EventKind::SemWaitEnter {
                        dep_tb: 1,
                        target: 1,
                    },
                ),
                ev(
                    0.2,
                    0,
                    0,
                    EventKind::SemWaitExit {
                        dep_tb: 1,
                        target: 1,
                    },
                ),
                instr(1.0, 0, 0, 0, true),
            ]],
        );
        assert!(t
            .check_consistency(None)
            .unwrap_err()
            .contains("sem_wait_enter inside instruction"));
    }

    #[test]
    fn non_monotonic_semaphore_is_flagged() {
        let t = Trace::from_buffers(
            ClockDomain::Wall,
            vec![vec![
                ev(0.0, 0, 0, EventKind::SemSet { value: 2 }),
                ev(1.0, 0, 0, EventKind::SemSet { value: 2 }),
            ]],
        );
        assert!(t
            .check_consistency(None)
            .unwrap_err()
            .contains("strictly increasing"));
    }

    #[test]
    fn mismatched_nesting_is_flagged() {
        let t = Trace::from_buffers(ClockDomain::Wall, vec![vec![instr(0.0, 0, 0, 3, true)]]);
        assert!(t
            .check_consistency(None)
            .unwrap_err()
            .contains("without instr_begin"));
    }
}
