//! Aggregate metrics derived from a trace: per-thread-block time
//! breakdowns, per-connection FIFO occupancy and critical-path length.

use std::collections::HashMap;

use crate::event::EventKind;
use crate::Trace;

/// How one thread block spent its time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbBreakdown {
    /// Rank owning the thread block.
    pub rank: usize,
    /// Thread block id within the rank.
    pub tb: usize,
    /// Instructions completed (across all tiles).
    pub instructions: usize,
    /// Time inside instructions minus waiting, µs (actual processing).
    pub busy_us: f64,
    /// Time blocked on cross-thread-block semaphores, µs.
    pub sem_wait_us: f64,
    /// Time blocked on full send FIFOs or empty receive FIFOs, µs.
    pub fifo_blocked_us: f64,
}

/// Traffic over one `(src, dst, channel)` connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Channel id.
    pub channel: usize,
    /// Messages (tiles) carried.
    pub messages: u64,
    /// Payload bytes carried (sum of per-send sizes).
    pub bytes: u64,
    /// Peak number of unconsumed messages in the FIFO.
    pub peak_occupancy: usize,
}

/// Summary statistics computed by [`Trace::summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Time between the first and last event, µs.
    pub span_us: f64,
    /// Length of the longest chain of dependent processing, µs: per-node
    /// busy time accumulated along program order, observed semaphore waits
    /// and send→recv message edges.
    pub critical_path_us: f64,
    /// Per-thread-block breakdown, sorted by `(rank, tb)`.
    pub per_tb: Vec<TbBreakdown>,
    /// Per-connection FIFO statistics, sorted by `(src, dst, channel)`.
    pub per_connection: Vec<ConnectionStats>,
    /// Instruction instances `(rank, tb, step, tile)` on the critical
    /// path, in path order (the chain whose busy times sum to
    /// `critical_path_us`).
    pub critical_nodes: Vec<(usize, usize, usize, usize)>,
    /// Tile-pool `(allocated, reused)` counters, when the trace carries a
    /// [`EventKind::PoolStats`] event (threaded-runtime traces do; the
    /// simulator has no allocator to count).
    pub pool: Option<(u64, u64)>,
}

/// An instruction instance in the trace.
type InstrKey = (usize, usize, usize, usize); // (rank, tb, step, tile)

#[derive(Debug, Clone, Copy, Default)]
struct NodeTimes {
    begin_us: f64,
    end_us: f64,
    wait_us: f64,
}

impl Trace {
    /// Computes the aggregate metrics for this trace.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let mut per_tb: HashMap<(usize, usize), TbBreakdown> = HashMap::new();
        // Open wait/block interval start per (rank, tb), by kind name.
        let mut open_wait: HashMap<(usize, usize), f64> = HashMap::new();
        let mut open_block: HashMap<(usize, usize), f64> = HashMap::new();
        let mut open_instr: HashMap<(usize, usize), (InstrKey, f64, f64)> = HashMap::new();

        // Per-instruction node times for the critical path.
        let mut nodes: HashMap<InstrKey, NodeTimes> = HashMap::new();
        // Program-order and wait/message edges: pred -> succ.
        let mut edges: Vec<(InstrKey, InstrKey)> = Vec::new();
        let mut last_instr: HashMap<(usize, usize), InstrKey> = HashMap::new();
        // Semaphore waits observed since the last instruction ended; they
        // gate the next instruction and are drained at its InstrEnd.
        let mut pending_deps: HashMap<(usize, usize), Vec<(usize, u64)>> = HashMap::new();
        // k-th send / k-th recv node per connection.
        let mut send_nodes: HashMap<(usize, usize, usize), Vec<InstrKey>> = HashMap::new();
        let mut recv_nodes: HashMap<(usize, usize, usize), Vec<InstrKey>> = HashMap::new();
        // Highest step seen per (rank, tb): the per-tile instruction count,
        // used to decode semaphore targets back into (step, tile).
        let mut tb_len: HashMap<(usize, usize), u64> = HashMap::new();

        // FIFO occupancy per connection: +1 at send, -1 at recv, with the
        // peak depth, message count and payload byte total.
        type Occupancy = (i64, usize, u64, u64);
        let mut occupancy: HashMap<(usize, usize, usize), Occupancy> = HashMap::new();

        let mut pool: Option<(u64, u64)> = None;

        for e in &self.events {
            let tbkey = (e.rank, e.tb);
            let slot = per_tb.entry(tbkey).or_insert(TbBreakdown {
                rank: e.rank,
                tb: e.tb,
                instructions: 0,
                busy_us: 0.0,
                sem_wait_us: 0.0,
                fifo_blocked_us: 0.0,
            });
            match e.kind {
                EventKind::InstrBegin { step, tile, .. } => {
                    let key = (e.rank, e.tb, step, tile);
                    open_instr.insert(tbkey, (key, e.ts_us, 0.0));
                    let len = tb_len.entry(tbkey).or_insert(0);
                    *len = (*len).max(step as u64 + 1);
                }
                EventKind::InstrEnd { step, tile, .. } => {
                    slot.instructions += 1;
                    let key = (e.rank, e.tb, step, tile);
                    let (open_key, begin, waited) =
                        open_instr.remove(&tbkey).unwrap_or((key, e.ts_us, 0.0));
                    let begin = if open_key == key { begin } else { e.ts_us };
                    slot.busy_us += (e.ts_us - begin - waited).max(0.0);
                    nodes.insert(
                        key,
                        NodeTimes {
                            begin_us: begin,
                            end_us: e.ts_us,
                            wait_us: waited,
                        },
                    );
                    if let Some(prev) = last_instr.insert(tbkey, key) {
                        edges.push((prev, key));
                    }
                    for (dep_tb, target) in pending_deps.remove(&tbkey).unwrap_or_default() {
                        // Decode target = tile * len + step + 1 with the
                        // dep block's per-tile instruction count.
                        if let Some(&len) = tb_len.get(&(e.rank, dep_tb)) {
                            if len > 0 && target > 0 {
                                let idx = target - 1;
                                let dep_key =
                                    (e.rank, dep_tb, (idx % len) as usize, (idx / len) as usize);
                                edges.push((dep_key, key));
                            }
                        }
                    }
                }
                EventKind::SemWaitEnter { .. } => {
                    open_wait.insert(tbkey, e.ts_us);
                }
                EventKind::SemWaitExit { dep_tb, target } => {
                    if let Some(t0) = open_wait.remove(&tbkey) {
                        let waited = e.ts_us - t0;
                        slot.sem_wait_us += waited;
                        if let Some(open) = open_instr.get_mut(&tbkey) {
                            open.2 += waited;
                        }
                    }
                    pending_deps
                        .entry(tbkey)
                        .or_default()
                        .push((dep_tb, target));
                }
                EventKind::SendBlock { .. } | EventKind::RecvBlock { .. } => {
                    open_block.insert(tbkey, e.ts_us);
                }
                EventKind::SendResume { .. } | EventKind::RecvResume { .. } => {
                    if let Some(t0) = open_block.remove(&tbkey) {
                        let blocked = e.ts_us - t0;
                        slot.fifo_blocked_us += blocked;
                        if let Some(open) = open_instr.get_mut(&tbkey) {
                            open.2 += blocked;
                        }
                    }
                }
                EventKind::Send {
                    dst,
                    channel,
                    bytes,
                    ..
                } => {
                    let conn = (e.rank, dst, channel);
                    let entry = occupancy.entry(conn).or_insert((0, 0, 0, 0));
                    entry.0 += 1;
                    entry.1 = entry.1.max(entry.0 as usize);
                    entry.2 += 1;
                    entry.3 += bytes;
                    if let Some(open) = open_instr.get(&tbkey) {
                        send_nodes.entry(conn).or_default().push(open.0);
                    }
                }
                EventKind::Recv { src, channel, .. } => {
                    let conn = (src, e.rank, channel);
                    let entry = occupancy.entry(conn).or_insert((0, 0, 0, 0));
                    entry.0 -= 1;
                    if let Some(open) = open_instr.get(&tbkey) {
                        recv_nodes.entry(conn).or_default().push(open.0);
                    }
                }
                EventKind::PoolStats { allocated, reused } => {
                    pool = Some((allocated, reused));
                }
                EventKind::KernelLaunch
                | EventKind::TileBegin { .. }
                | EventKind::TileEnd { .. }
                | EventKind::SemSet { .. }
                | EventKind::Recovery { .. } => {}
            }
        }

        // Message edges: the k-th send on a connection feeds the k-th recv.
        for (conn, sends) in &send_nodes {
            if let Some(recvs) = recv_nodes.get(conn) {
                for (s, r) in sends.iter().zip(recvs) {
                    edges.push((*s, *r));
                }
            }
        }

        let (critical_path_us, critical_nodes) = critical_path(&nodes, &edges);

        let mut per_tb: Vec<TbBreakdown> = per_tb.into_values().collect();
        per_tb.sort_by_key(|b| (b.rank, b.tb));
        let mut per_connection: Vec<ConnectionStats> = occupancy
            .into_iter()
            .map(
                |((src, dst, channel), (_, peak, messages, bytes))| ConnectionStats {
                    src,
                    dst,
                    channel,
                    messages,
                    bytes,
                    peak_occupancy: peak,
                },
            )
            .collect();
        per_connection.sort_by_key(|c| (c.src, c.dst, c.channel));

        TraceSummary {
            span_us: self.span_us(),
            critical_path_us,
            per_tb,
            per_connection,
            critical_nodes,
            pool,
        }
    }
}

/// Longest path through the instruction DAG, weighting each node by its
/// busy (non-waiting) time. Returns the path length and its nodes in path
/// order; `(0, [])` for empty or cyclic graphs (a cyclic "trace" cannot
/// come from a real execution).
fn critical_path(
    nodes: &HashMap<InstrKey, NodeTimes>,
    edges: &[(InstrKey, InstrKey)],
) -> (f64, Vec<InstrKey>) {
    let mut succs: HashMap<InstrKey, Vec<InstrKey>> = HashMap::new();
    let mut indegree: HashMap<InstrKey, usize> = nodes.keys().map(|&k| (k, 0)).collect();
    for &(a, b) in edges {
        if nodes.contains_key(&a) && nodes.contains_key(&b) {
            succs.entry(a).or_default().push(b);
            *indegree.entry(b).or_default() += 1;
        }
    }
    let busy =
        |k: &InstrKey| -> f64 { (nodes[k].end_us - nodes[k].begin_us - nodes[k].wait_us).max(0.0) };
    let mut ready: Vec<InstrKey> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&k, _)| k)
        .collect();
    let mut dist: HashMap<InstrKey, f64> = ready.iter().map(|&k| (k, busy(&k))).collect();
    let mut pred: HashMap<InstrKey, InstrKey> = HashMap::new();
    let mut processed = 0usize;
    let mut best: f64 = 0.0;
    let mut best_end: Option<InstrKey> = None;
    while let Some(k) = ready.pop() {
        processed += 1;
        let d = dist[&k];
        if best_end.is_none() || d > best {
            best = d;
            best_end = Some(k);
        }
        if let Some(next) = succs.get(&k) {
            for &n in next {
                let nd = d + busy(&n);
                let entry = dist.entry(n).or_insert(0.0);
                if nd > *entry {
                    *entry = nd;
                    pred.insert(n, k);
                }
                let deg = indegree.get_mut(&n).expect("known node");
                *deg -= 1;
                if *deg == 0 {
                    ready.push(n);
                }
            }
        }
    }
    if processed < nodes.len() {
        return (0.0, Vec::new()); // cycle: not a feasible execution order
    }
    let mut path = Vec::new();
    let mut cursor = best_end;
    while let Some(k) = cursor {
        path.push(k);
        cursor = pred.get(&k).copied();
    }
    path.reverse();
    (best, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockDomain, TraceEvent};
    use mscclang::OpCode;

    fn ev(ts: f64, rank: usize, tb: usize, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            rank,
            tb,
            kind,
        }
    }

    /// tb0 copies for 2µs; tb1 waits 2µs on tb0's semaphore then works 3µs.
    /// Critical path = 2 + 3; tb1's wait is excluded from its busy time.
    #[test]
    fn breakdown_and_critical_path() {
        let events = vec![
            ev(
                0.0,
                0,
                0,
                EventKind::InstrBegin {
                    step: 0,
                    tile: 0,
                    op: OpCode::Copy,
                },
            ),
            ev(
                0.0,
                0,
                1,
                EventKind::SemWaitEnter {
                    dep_tb: 0,
                    target: 1,
                },
            ),
            ev(
                2.0,
                0,
                0,
                EventKind::InstrEnd {
                    step: 0,
                    tile: 0,
                    op: OpCode::Copy,
                },
            ),
            ev(2.0, 0, 0, EventKind::SemSet { value: 1 }),
            ev(
                2.0,
                0,
                1,
                EventKind::SemWaitExit {
                    dep_tb: 0,
                    target: 1,
                },
            ),
            ev(
                2.0,
                0,
                1,
                EventKind::InstrBegin {
                    step: 0,
                    tile: 0,
                    op: OpCode::Copy,
                },
            ),
            ev(
                5.0,
                0,
                1,
                EventKind::InstrEnd {
                    step: 0,
                    tile: 0,
                    op: OpCode::Copy,
                },
            ),
        ];
        let t = Trace::from_buffers(ClockDomain::Wall, vec![events]);
        let s = t.summary();
        assert_eq!(s.per_tb.len(), 2);
        let tb0 = &s.per_tb[0];
        let tb1 = &s.per_tb[1];
        assert!((tb0.busy_us - 2.0).abs() < 1e-9);
        assert!((tb1.sem_wait_us - 2.0).abs() < 1e-9);
        assert!((tb1.busy_us - 3.0).abs() < 1e-9);
        assert!((s.critical_path_us - 5.0).abs() < 1e-9, "{s:?}");
    }

    /// Two sends queued before the first recv: peak occupancy 2.
    #[test]
    fn fifo_occupancy_peaks() {
        let mk_instr = |ts, tb, step, end| {
            ev(
                ts,
                0,
                tb,
                if end {
                    EventKind::InstrEnd {
                        step,
                        tile: 0,
                        op: OpCode::Send,
                    }
                } else {
                    EventKind::InstrBegin {
                        step,
                        tile: 0,
                        op: OpCode::Send,
                    }
                },
            )
        };
        let events = vec![
            mk_instr(0.0, 0, 0, false),
            ev(
                1.0,
                0,
                0,
                EventKind::Send {
                    dst: 1,
                    channel: 0,
                    seq: 0,
                    bytes: 0,
                },
            ),
            mk_instr(1.0, 0, 0, true),
            mk_instr(1.0, 0, 1, false),
            ev(
                2.0,
                0,
                0,
                EventKind::Send {
                    dst: 1,
                    channel: 0,
                    seq: 1,
                    bytes: 0,
                },
            ),
            mk_instr(2.0, 0, 1, true),
            ev(
                3.0,
                1,
                0,
                EventKind::Recv {
                    src: 0,
                    channel: 0,
                    seq: 0,
                    bytes: 0,
                },
            ),
            ev(
                4.0,
                1,
                0,
                EventKind::Recv {
                    src: 0,
                    channel: 0,
                    seq: 1,
                    bytes: 0,
                },
            ),
        ];
        let t = Trace::from_buffers(ClockDomain::Wall, vec![events]);
        let s = t.summary();
        assert_eq!(s.per_connection.len(), 1);
        let c = &s.per_connection[0];
        assert_eq!((c.src, c.dst, c.channel), (0, 1, 0));
        assert_eq!(c.messages, 2);
        assert_eq!(c.peak_occupancy, 2);
    }
}
