//! The structured event model shared by the runtime and the simulator.
//!
//! Both executors observe the same phenomena — instructions starting and
//! finishing, semaphore waits, FIFO slots filling up, tiles pipelining —
//! so they emit one shared vocabulary of events and differ only in their
//! clock: the runtime stamps wall-clock microseconds, the simulator stamps
//! virtual microseconds.

use mscclang::OpCode;

/// Which clock produced a trace's timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Wall-clock microseconds measured by the threaded runtime.
    Wall,
    /// Virtual microseconds advanced by the discrete-event simulator.
    Virtual,
}

impl ClockDomain {
    /// Short label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::Wall => "wall",
            ClockDomain::Virtual => "virtual",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The kernel (all thread blocks) launched.
    KernelLaunch,
    /// A thread block entered tile `tile` of its outer pipelining loop.
    TileBegin {
        /// Tile index.
        tile: usize,
    },
    /// A thread block finished tile `tile`.
    TileEnd {
        /// Tile index.
        tile: usize,
    },
    /// An instruction started executing (dependencies already satisfied).
    InstrBegin {
        /// Step index within the thread block.
        step: usize,
        /// Tile iteration the step ran under.
        tile: usize,
        /// Opcode.
        op: OpCode,
    },
    /// An instruction finished.
    InstrEnd {
        /// Step index within the thread block.
        step: usize,
        /// Tile iteration the step ran under.
        tile: usize,
        /// Opcode.
        op: OpCode,
    },
    /// The thread block started blocking on another block's semaphore.
    SemWaitEnter {
        /// Thread block whose semaphore is awaited.
        dep_tb: usize,
        /// Monotonic counter value awaited.
        target: u64,
    },
    /// The semaphore wait was satisfied.
    SemWaitExit {
        /// Thread block whose semaphore was awaited.
        dep_tb: usize,
        /// Monotonic counter value awaited.
        target: u64,
    },
    /// The thread block advanced its own semaphore to `value`.
    SemSet {
        /// New (monotonic) counter value.
        value: u64,
    },
    /// A send found every FIFO slot full and blocked.
    SendBlock {
        /// Destination rank.
        dst: usize,
        /// Channel id.
        channel: usize,
    },
    /// A blocked send acquired a slot and resumed.
    SendResume {
        /// Destination rank.
        dst: usize,
        /// Channel id.
        channel: usize,
    },
    /// A tile was deposited into a FIFO slot (the `seq`-th send on this
    /// connection, counting from zero).
    Send {
        /// Destination rank.
        dst: usize,
        /// Channel id.
        channel: usize,
        /// Per-connection send sequence number.
        seq: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A receive found the FIFO empty and blocked.
    RecvBlock {
        /// Source rank.
        src: usize,
        /// Channel id.
        channel: usize,
    },
    /// A blocked receive saw data arrive and resumed.
    RecvResume {
        /// Source rank.
        src: usize,
        /// Channel id.
        channel: usize,
    },
    /// A tile was consumed from a FIFO slot (the `seq`-th receive on this
    /// connection, counting from zero).
    Recv {
        /// Source rank.
        src: usize,
        /// Channel id.
        channel: usize,
        /// Per-connection receive sequence number.
        seq: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Tile-pool allocation counters for the whole run, emitted once at
    /// the end by the threaded runtime (`rank = 0`, `tb = 0`: the pool is
    /// shared by every thread block). `allocated` is the number of fresh
    /// tile-buffer allocations (pool misses); in a warm steady state it
    /// is zero and every tile movement reuses a recycled buffer.
    PoolStats {
        /// Fresh tile-buffer allocations (pool misses) during the run.
        allocated: u64,
        /// Takes served from recycled buffers (pool hits) during the run.
        reused: u64,
    },
    /// The recovery layer decided what to do after an execution attempt
    /// (emitted with `rank = 0`, `tb = 0`: recovery is collective-level,
    /// not per-block).
    Recovery {
        /// Zero-based attempt the decision follows.
        attempt: usize,
        /// What the recovery layer decided.
        decision: RecoveryDecision,
    },
}

/// The outcome of one attempt, as judged by the recovery layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryDecision {
    /// The attempt produced verified-correct outputs; the run is done.
    Accept,
    /// The attempt failed transiently after completing at least one
    /// epoch; resume from the last published checkpoint instead of
    /// redoing the whole run.
    Resume,
    /// The attempt failed transiently; retry after backoff.
    Retry,
    /// Retries are exhausted; switch to the fallback algorithm.
    Fallback,
    /// Nothing left to try; surface the error.
    GiveUp,
}

impl RecoveryDecision {
    /// Stable lowercase name used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RecoveryDecision::Accept => "accept",
            RecoveryDecision::Resume => "resume",
            RecoveryDecision::Retry => "retry",
            RecoveryDecision::Fallback => "fallback",
            RecoveryDecision::GiveUp => "give_up",
        }
    }
}

impl EventKind {
    /// Stable lowercase name used by both exporters.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::KernelLaunch => "kernel_launch",
            EventKind::TileBegin { .. } => "tile_begin",
            EventKind::TileEnd { .. } => "tile_end",
            EventKind::InstrBegin { .. } => "instr_begin",
            EventKind::InstrEnd { .. } => "instr_end",
            EventKind::SemWaitEnter { .. } => "sem_wait_enter",
            EventKind::SemWaitExit { .. } => "sem_wait_exit",
            EventKind::SemSet { .. } => "sem_set",
            EventKind::SendBlock { .. } => "send_block",
            EventKind::SendResume { .. } => "send_resume",
            EventKind::Send { .. } => "send",
            EventKind::RecvBlock { .. } => "recv_block",
            EventKind::RecvResume { .. } => "recv_resume",
            EventKind::Recv { .. } => "recv",
            EventKind::PoolStats { .. } => "pool_stats",
            EventKind::Recovery { .. } => "recovery",
        }
    }
}

/// One timestamped observation from one thread block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Timestamp in microseconds within the trace's [`ClockDomain`].
    pub ts_us: f64,
    /// Rank the thread block belongs to.
    pub rank: usize,
    /// Thread block id within the rank.
    pub tb: usize,
    /// What happened.
    pub kind: EventKind,
}
