//! CSV trace importer: the inverse of [`Trace::to_csv`], so a recorded
//! trace can be re-analyzed offline (`msccl profile --from-trace`).

use mscclang::OpCode;

use crate::event::{EventKind, RecoveryDecision, TraceEvent};
use crate::{ClockDomain, Trace};

fn parse<T: std::str::FromStr>(cell: &str, what: &str, line_no: usize) -> Result<T, String> {
    cell.parse()
        .map_err(|_| format!("line {line_no}: bad {what} {cell:?}"))
}

impl Trace {
    /// Parses a trace previously rendered by [`Trace::to_csv`]. The CSV
    /// does not record the clock domain, so the caller states it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed row: wrong column
    /// count, unknown event kind, or an unparsable field.
    pub fn from_csv(text: &str, domain: ClockDomain) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header))
                if header.trim() == "ts_us,rank,tb,kind,step,tile,op,peer,channel,seq,value" => {}
            Some((_, header)) => return Err(format!("unrecognized CSV header {header:?}")),
            None => return Err("empty CSV".to_string()),
        }
        let mut events = Vec::new();
        for (i, line) in lines {
            let line_no = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != 11 {
                return Err(format!(
                    "line {line_no}: expected 11 columns, found {}",
                    cells.len()
                ));
            }
            let (ts, rank, tb, kind) = (cells[0], cells[1], cells[2], cells[3]);
            let (step, tile, op) = (cells[4], cells[5], cells[6]);
            let (peer, channel, seq, value) = (cells[7], cells[8], cells[9], cells[10]);
            let instr = |what| -> Result<(usize, usize, OpCode), String> {
                Ok((
                    parse(step, "step", line_no)?,
                    parse(tile, "tile", line_no)?,
                    OpCode::parse(op)
                        .ok_or_else(|| format!("line {line_no}: bad {what} op {op:?}"))?,
                ))
            };
            let kind = match kind {
                "kernel_launch" => EventKind::KernelLaunch,
                "tile_begin" => EventKind::TileBegin {
                    tile: parse(tile, "tile", line_no)?,
                },
                "tile_end" => EventKind::TileEnd {
                    tile: parse(tile, "tile", line_no)?,
                },
                "instr_begin" => {
                    let (step, tile, op) = instr("instr_begin")?;
                    EventKind::InstrBegin { step, tile, op }
                }
                "instr_end" => {
                    let (step, tile, op) = instr("instr_end")?;
                    EventKind::InstrEnd { step, tile, op }
                }
                "sem_wait_enter" => EventKind::SemWaitEnter {
                    dep_tb: parse(peer, "dep_tb", line_no)?,
                    target: parse(value, "target", line_no)?,
                },
                "sem_wait_exit" => EventKind::SemWaitExit {
                    dep_tb: parse(peer, "dep_tb", line_no)?,
                    target: parse(value, "target", line_no)?,
                },
                "sem_set" => EventKind::SemSet {
                    value: parse(value, "value", line_no)?,
                },
                "send_block" => EventKind::SendBlock {
                    dst: parse(peer, "dst", line_no)?,
                    channel: parse(channel, "channel", line_no)?,
                },
                "send_resume" => EventKind::SendResume {
                    dst: parse(peer, "dst", line_no)?,
                    channel: parse(channel, "channel", line_no)?,
                },
                "send" => EventKind::Send {
                    dst: parse(peer, "dst", line_no)?,
                    channel: parse(channel, "channel", line_no)?,
                    seq: parse(seq, "seq", line_no)?,
                    bytes: parse(value, "bytes", line_no)?,
                },
                "recv_block" => EventKind::RecvBlock {
                    src: parse(peer, "src", line_no)?,
                    channel: parse(channel, "channel", line_no)?,
                },
                "recv_resume" => EventKind::RecvResume {
                    src: parse(peer, "src", line_no)?,
                    channel: parse(channel, "channel", line_no)?,
                },
                "recv" => EventKind::Recv {
                    src: parse(peer, "src", line_no)?,
                    channel: parse(channel, "channel", line_no)?,
                    seq: parse(seq, "seq", line_no)?,
                    bytes: parse(value, "bytes", line_no)?,
                },
                "pool_stats" => EventKind::PoolStats {
                    allocated: parse(seq, "allocated", line_no)?,
                    reused: parse(value, "reused", line_no)?,
                },
                "recovery" => EventKind::Recovery {
                    attempt: parse(step, "attempt", line_no)?,
                    decision: match value {
                        "accept" => RecoveryDecision::Accept,
                        "resume" => RecoveryDecision::Resume,
                        "retry" => RecoveryDecision::Retry,
                        "fallback" => RecoveryDecision::Fallback,
                        "give_up" => RecoveryDecision::GiveUp,
                        other => {
                            return Err(format!("line {line_no}: bad recovery decision {other:?}"))
                        }
                    },
                },
                other => return Err(format!("line {line_no}: unknown event kind {other:?}")),
            };
            events.push(TraceEvent {
                ts_us: parse(ts, "ts_us", line_no)?,
                rank: parse(rank, "rank", line_no)?,
                tb: parse(tb, "tb", line_no)?,
                kind,
            });
        }
        Ok(Trace::from_buffers(domain, vec![events]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every event kind survives a CSV round trip (timestamps to the
    /// exporter's three-decimal precision).
    #[test]
    fn csv_round_trips_every_kind() {
        let kinds = vec![
            EventKind::KernelLaunch,
            EventKind::TileBegin { tile: 1 },
            EventKind::InstrBegin {
                step: 0,
                tile: 1,
                op: OpCode::RecvReduceCopySend,
            },
            EventKind::SemWaitEnter {
                dep_tb: 2,
                target: 7,
            },
            EventKind::SemWaitExit {
                dep_tb: 2,
                target: 7,
            },
            EventKind::SendBlock { dst: 3, channel: 1 },
            EventKind::SendResume { dst: 3, channel: 1 },
            EventKind::Send {
                dst: 3,
                channel: 1,
                seq: 0,
                bytes: 4096,
            },
            EventKind::RecvBlock { src: 0, channel: 2 },
            EventKind::RecvResume { src: 0, channel: 2 },
            EventKind::Recv {
                src: 0,
                channel: 2,
                seq: 5,
                bytes: 128,
            },
            EventKind::SemSet { value: 9 },
            EventKind::InstrEnd {
                step: 0,
                tile: 1,
                op: OpCode::RecvReduceCopySend,
            },
            EventKind::TileEnd { tile: 1 },
            EventKind::PoolStats {
                allocated: 4,
                reused: 40,
            },
            EventKind::Recovery {
                attempt: 1,
                decision: RecoveryDecision::Retry,
            },
        ];
        let events: Vec<TraceEvent> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                ts_us: i as f64 * 1.5,
                rank: 1,
                tb: 2,
                kind,
            })
            .collect();
        let trace = Trace::from_buffers(ClockDomain::Wall, vec![events]);
        let parsed = Trace::from_csv(&trace.to_csv(), ClockDomain::Wall).expect("parses");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(Trace::from_csv("", ClockDomain::Wall).is_err());
        assert!(Trace::from_csv("nonsense header\n", ClockDomain::Wall).is_err());
        let header = "ts_us,rank,tb,kind,step,tile,op,peer,channel,seq,value\n";
        let short = format!("{header}0.0,0,0,send,,,\n");
        assert!(Trace::from_csv(&short, ClockDomain::Wall)
            .unwrap_err()
            .contains("11 columns"));
        let bad_kind = format!("{header}0.0,0,0,warp_drive,,,,,,,\n");
        assert!(Trace::from_csv(&bad_kind, ClockDomain::Wall)
            .unwrap_err()
            .contains("unknown event kind"));
        let bad_bytes = format!("{header}0.0,0,0,send,,,,1,0,0,many\n");
        assert!(Trace::from_csv(&bad_bytes, ClockDomain::Wall)
            .unwrap_err()
            .contains("bad bytes"));
    }
}
