//! Per-step performance attribution: where did the time go, and does the
//! measurement match the α–β cost model?
//!
//! [`ProfileReport::from_traces`] folds one *measured* trace (wall-clock
//! runtime or virtual-time simulator) and optionally one *modeled* trace
//! (always the simulator replaying the same IR) into a per-thread-block /
//! per-channel / per-instruction-kind breakdown — compute vs. send vs.
//! sync-wait vs. FIFO-block — plus each block's share of the critical
//! path.
//!
//! The measured-vs-modeled column needs care: wall-clock and virtual
//! microseconds are not absolutely comparable (the simulator's α–β
//! parameters describe a datacenter NIC, not this machine's memcpy), so
//! steps are compared on *normalized shares* — each step's busy time as a
//! fraction of the run's total busy time. A step is flagged when its
//! measured share diverges from its modeled share by more than the
//! threshold (relative to the modeled share) — i.e. the step consumes a
//! very different fraction of the run than the α–β model predicts, which
//! is exactly the signal schedule tuning needs. Steps below
//! [`MIN_SHARE`] of total busy time in both domains are never flagged;
//! at that size the shares are dominated by timer noise.
//!
//! [`snapshot_from_trace`] derives the same logical counters the live
//! registry would have recorded (bytes/sends/receives per channel, wait
//! and block time, latency histograms) from a recorded trace, so offline
//! analysis exports the identical JSON/Prometheus schema.

use std::collections::HashMap;
use std::fmt::Write as _;

use msccl_metrics::{names, MetricsSnapshot, Registry};
use mscclang::OpCode;

use crate::event::EventKind;
use crate::Trace;

/// Steps whose busy share is below this in both domains are never
/// flagged: at well under 1% of the run, shares measure timer noise.
pub const MIN_SHARE: f64 = 0.005;

/// An instruction instance `(rank, tb, step, tile)`.
type InstrKey = (usize, usize, usize, usize);

fn is_sending(op: OpCode) -> bool {
    matches!(
        op,
        OpCode::Send | OpCode::RecvCopySend | OpCode::RecvReduceSend | OpCode::RecvReduceCopySend
    )
}

/// How one thread block's time is attributed.
#[derive(Debug, Clone, PartialEq)]
pub struct TbProfile {
    /// Rank owning the thread block.
    pub rank: usize,
    /// Thread block id within the rank.
    pub tb: usize,
    /// Instructions completed (across all tiles).
    pub instructions: usize,
    /// Busy time in non-sending instructions (receive/copy/reduce), µs.
    pub compute_us: f64,
    /// Busy time in sending instructions, µs.
    pub send_us: f64,
    /// Time blocked on cross-thread-block semaphores, µs.
    pub sem_wait_us: f64,
    /// Time blocked on full send FIFOs or empty receive FIFOs, µs.
    pub fifo_blocked_us: f64,
    /// Busy time of this block's instructions on the critical path, µs.
    pub critical_us: f64,
    /// `critical_us` as a fraction of the whole critical path.
    pub critical_share: f64,
}

/// Logical traffic over one `(src, dst, channel)` connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelProfile {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Channel id.
    pub channel: usize,
    /// Tiles deposited.
    pub sends: u64,
    /// Tiles consumed.
    pub recvs: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Peak number of unconsumed tiles in the FIFO.
    pub peak_occupancy: usize,
}

/// Latency aggregate for one instruction kind.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Opcode mnemonic.
    pub op: String,
    /// Instructions completed.
    pub count: u64,
    /// Total busy time, µs.
    pub total_us: f64,
    /// Mean busy time per instruction, µs.
    pub mean_us: f64,
    /// Largest single busy time, µs.
    pub max_us: f64,
}

/// One `(rank, tb, step)` with its measured-vs-modeled comparison
/// (summed over tile iterations, so the comparison is insensitive to the
/// two executors tiling differently).
#[derive(Debug, Clone, PartialEq)]
pub struct StepProfile {
    /// Rank owning the step.
    pub rank: usize,
    /// Thread block id within the rank.
    pub tb: usize,
    /// Step index within the thread block.
    pub step: usize,
    /// Opcode mnemonic.
    pub op: String,
    /// Measured busy time, µs (in the measured trace's clock domain).
    pub measured_us: f64,
    /// Measured busy time as a fraction of total measured busy time.
    pub measured_share: f64,
    /// Modeled busy time, virtual µs (absent without a modeled trace or
    /// when the model never ran this step).
    pub modeled_us: Option<f64>,
    /// Modeled busy share of total modeled busy time.
    pub modeled_share: Option<f64>,
    /// `|measured_share - modeled_share| / max(modeled_share, ε)`.
    pub divergence: Option<f64>,
    /// Whether the divergence exceeds the report's threshold (and the
    /// step is large enough for shares to be meaningful).
    pub flagged: bool,
}

/// The full attribution report emitted by `msccl profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Clock domain of the measured trace (`"wall"` or `"virtual"`).
    pub domain: String,
    /// Clock domain of the modeled trace, when one was supplied.
    pub modeled_domain: Option<String>,
    /// Measured time between first and last event, µs.
    pub span_us: f64,
    /// Total measured busy time across all thread blocks, µs.
    pub busy_us: f64,
    /// Measured critical-path length, µs.
    pub critical_path_us: f64,
    /// Relative-share divergence above which a step is flagged.
    pub divergence_threshold: f64,
    /// Number of flagged steps.
    pub flagged_steps: usize,
    /// Per-thread-block attribution, sorted by `(rank, tb)`.
    pub thread_blocks: Vec<TbProfile>,
    /// Per-connection logical counters, sorted by `(src, dst, channel)`.
    pub channels: Vec<ChannelProfile>,
    /// Per-instruction-kind latency aggregates, sorted by mnemonic.
    pub ops: Vec<OpProfile>,
    /// Per-step measured-vs-modeled comparison, sorted by
    /// `(rank, tb, step)`.
    pub steps: Vec<StepProfile>,
}

/// Per-instruction busy time: span minus FIFO-blocked time within the
/// span (semaphore waits happen between instructions and never overlap).
fn instr_busy(trace: &Trace) -> HashMap<InstrKey, (OpCode, f64)> {
    let mut open: HashMap<(usize, usize), (InstrKey, OpCode, f64, f64)> = HashMap::new();
    let mut open_block: HashMap<(usize, usize), f64> = HashMap::new();
    let mut out = HashMap::new();
    for e in trace.events() {
        let tbkey = (e.rank, e.tb);
        match e.kind {
            EventKind::InstrBegin { step, tile, op } => {
                open.insert(tbkey, ((e.rank, e.tb, step, tile), op, e.ts_us, 0.0));
            }
            EventKind::InstrEnd { step, tile, .. } => {
                if let Some((key, op, begin, blocked)) = open.remove(&tbkey) {
                    if key == (e.rank, e.tb, step, tile) {
                        out.insert(key, (op, (e.ts_us - begin - blocked).max(0.0)));
                    }
                }
            }
            EventKind::SendBlock { .. } | EventKind::RecvBlock { .. } => {
                open_block.insert(tbkey, e.ts_us);
            }
            EventKind::SendResume { .. } | EventKind::RecvResume { .. } => {
                if let Some(t0) = open_block.remove(&tbkey) {
                    if let Some(o) = open.get_mut(&tbkey) {
                        o.3 += e.ts_us - t0;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-`(rank, tb, step)` busy time summed over tiles, with the opcode.
fn step_busy(
    busy: &HashMap<InstrKey, (OpCode, f64)>,
) -> HashMap<(usize, usize, usize), (OpCode, f64)> {
    let mut out: HashMap<(usize, usize, usize), (OpCode, f64)> = HashMap::new();
    for (&(rank, tb, step, _tile), &(op, us)) in busy {
        let entry = out.entry((rank, tb, step)).or_insert((op, 0.0));
        entry.1 += us;
    }
    out
}

impl ProfileReport {
    /// Builds the attribution report from a measured trace and an
    /// optional modeled trace (the simulator replaying the same IR).
    /// `threshold` is the relative share divergence above which a step is
    /// flagged (e.g. `0.5` = the measured share is more than 50% away
    /// from the modeled share).
    #[must_use]
    pub fn from_traces(measured: &Trace, modeled: Option<&Trace>, threshold: f64) -> Self {
        let summary = measured.summary();
        let busy = instr_busy(measured);
        let total_busy: f64 = busy.values().map(|&(_, us)| us).sum();

        // Critical-path busy time per thread block.
        let mut critical_by_tb: HashMap<(usize, usize), f64> = HashMap::new();
        for key in &summary.critical_nodes {
            if let Some(&(_, us)) = busy.get(key) {
                *critical_by_tb.entry((key.0, key.1)).or_default() += us;
            }
        }

        // Per-thread-block compute/send split.
        let mut split: HashMap<(usize, usize), (f64, f64)> = HashMap::new();
        for (&(rank, tb, _, _), &(op, us)) in &busy {
            let entry = split.entry((rank, tb)).or_default();
            if is_sending(op) {
                entry.1 += us;
            } else {
                entry.0 += us;
            }
        }
        let thread_blocks: Vec<TbProfile> = summary
            .per_tb
            .iter()
            .map(|b| {
                let (compute_us, send_us) = split.get(&(b.rank, b.tb)).copied().unwrap_or_default();
                let critical_us = critical_by_tb.get(&(b.rank, b.tb)).copied().unwrap_or(0.0);
                TbProfile {
                    rank: b.rank,
                    tb: b.tb,
                    instructions: b.instructions,
                    compute_us,
                    send_us,
                    sem_wait_us: b.sem_wait_us,
                    fifo_blocked_us: b.fifo_blocked_us,
                    critical_us,
                    critical_share: if summary.critical_path_us > 0.0 {
                        critical_us / summary.critical_path_us
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        // Receive counts per connection (sends/bytes come from summary).
        let mut recvs: HashMap<(usize, usize, usize), u64> = HashMap::new();
        for e in measured.events() {
            if let EventKind::Recv { src, channel, .. } = e.kind {
                *recvs.entry((src, e.rank, channel)).or_default() += 1;
            }
        }
        let channels: Vec<ChannelProfile> = summary
            .per_connection
            .iter()
            .map(|c| ChannelProfile {
                src: c.src,
                dst: c.dst,
                channel: c.channel,
                sends: c.messages,
                recvs: recvs.get(&(c.src, c.dst, c.channel)).copied().unwrap_or(0),
                bytes: c.bytes,
                peak_occupancy: c.peak_occupancy,
            })
            .collect();

        // Per-opcode latency aggregates.
        let mut by_op: HashMap<&'static str, (u64, f64, f64)> = HashMap::new();
        for &(op, us) in busy.values() {
            let entry = by_op.entry(op.mnemonic()).or_default();
            entry.0 += 1;
            entry.1 += us;
            entry.2 = entry.2.max(us);
        }
        let mut ops: Vec<OpProfile> = by_op
            .into_iter()
            .map(|(op, (count, total_us, max_us))| OpProfile {
                op: op.to_string(),
                count,
                total_us,
                mean_us: total_us / count as f64,
                max_us,
            })
            .collect();
        ops.sort_by(|a, b| a.op.cmp(&b.op));

        // Measured-vs-modeled per step, on normalized busy shares.
        let measured_steps = step_busy(&busy);
        let modeled_steps = modeled.map(|t| {
            let busy = instr_busy(t);
            let total: f64 = busy.values().map(|&(_, us)| us).sum();
            (step_busy(&busy), total)
        });
        let mut steps: Vec<StepProfile> = measured_steps
            .iter()
            .map(|(&(rank, tb, step), &(op, us))| {
                let measured_share = if total_busy > 0.0 {
                    us / total_busy
                } else {
                    0.0
                };
                let modeled = modeled_steps.as_ref().and_then(|(steps, total)| {
                    steps.get(&(rank, tb, step)).map(|&(_, m_us)| {
                        let share = if *total > 0.0 { m_us / total } else { 0.0 };
                        (m_us, share)
                    })
                });
                let divergence =
                    modeled.map(|(_, share)| (measured_share - share).abs() / share.max(1e-9));
                let flagged = matches!(
                    (divergence, modeled),
                    (Some(d), Some((_, m_share)))
                        if d > threshold && (measured_share >= MIN_SHARE || m_share >= MIN_SHARE)
                );
                StepProfile {
                    rank,
                    tb,
                    step,
                    op: op.mnemonic().to_string(),
                    measured_us: us,
                    measured_share,
                    modeled_us: modeled.map(|(us, _)| us),
                    modeled_share: modeled.map(|(_, s)| s),
                    divergence,
                    flagged,
                }
            })
            .collect();
        steps.sort_by_key(|s| (s.rank, s.tb, s.step));
        let flagged_steps = steps.iter().filter(|s| s.flagged).count();

        ProfileReport {
            domain: measured.domain().label().to_string(),
            modeled_domain: modeled.map(|t| t.domain().label().to_string()),
            span_us: summary.span_us,
            busy_us: total_busy,
            critical_path_us: summary.critical_path_us,
            divergence_threshold: threshold,
            flagged_steps,
            thread_blocks,
            channels,
            ops,
            steps,
        }
    }

    /// Deterministic JSON rendering (schema `msccl-profile-v1`): stable
    /// field order, three-decimal microseconds, six-decimal shares.
    #[must_use]
    pub fn to_json(&self) -> String {
        let us = |v: f64| format!("{v:.3}");
        let share = |v: f64| format!("{v:.6}");
        let opt_us = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.3}"));
        let opt_share = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.6}"));
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"msccl-profile-v1\",");
        let _ = writeln!(s, "  \"domain\": \"{}\",", self.domain);
        let _ = writeln!(
            s,
            "  \"modeled_domain\": {},",
            self.modeled_domain
                .as_ref()
                .map_or("null".to_string(), |d| format!("\"{d}\""))
        );
        let _ = writeln!(s, "  \"span_us\": {},", us(self.span_us));
        let _ = writeln!(s, "  \"busy_us\": {},", us(self.busy_us));
        let _ = writeln!(s, "  \"critical_path_us\": {},", us(self.critical_path_us));
        let _ = writeln!(
            s,
            "  \"divergence_threshold\": {},",
            share(self.divergence_threshold)
        );
        let _ = writeln!(s, "  \"flagged_steps\": {},", self.flagged_steps);
        let _ = writeln!(s, "  \"thread_blocks\": [");
        for (i, b) in self.thread_blocks.iter().enumerate() {
            let comma = if i + 1 == self.thread_blocks.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                s,
                "    {{\"rank\": {}, \"tb\": {}, \"instructions\": {}, \"compute_us\": {}, \
                 \"send_us\": {}, \"sem_wait_us\": {}, \"fifo_blocked_us\": {}, \
                 \"critical_us\": {}, \"critical_share\": {}}}{comma}",
                b.rank,
                b.tb,
                b.instructions,
                us(b.compute_us),
                us(b.send_us),
                us(b.sem_wait_us),
                us(b.fifo_blocked_us),
                us(b.critical_us),
                share(b.critical_share),
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"channels\": [");
        for (i, c) in self.channels.iter().enumerate() {
            let comma = if i + 1 == self.channels.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                s,
                "    {{\"src\": {}, \"dst\": {}, \"channel\": {}, \"sends\": {}, \
                 \"recvs\": {}, \"bytes\": {}, \"peak_occupancy\": {}}}{comma}",
                c.src, c.dst, c.channel, c.sends, c.recvs, c.bytes, c.peak_occupancy,
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"ops\": [");
        for (i, o) in self.ops.iter().enumerate() {
            let comma = if i + 1 == self.ops.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"op\": \"{}\", \"count\": {}, \"total_us\": {}, \"mean_us\": {}, \
                 \"max_us\": {}}}{comma}",
                o.op,
                o.count,
                us(o.total_us),
                us(o.mean_us),
                us(o.max_us),
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"steps\": [");
        for (i, p) in self.steps.iter().enumerate() {
            let comma = if i + 1 == self.steps.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"rank\": {}, \"tb\": {}, \"step\": {}, \"op\": \"{}\", \
                 \"measured_us\": {}, \"measured_share\": {}, \"modeled_us\": {}, \
                 \"modeled_share\": {}, \"divergence\": {}, \"flagged\": {}}}{comma}",
                p.rank,
                p.tb,
                p.step,
                p.op,
                us(p.measured_us),
                share(p.measured_share),
                opt_us(p.modeled_us),
                opt_share(p.modeled_share),
                opt_share(p.divergence),
                p.flagged,
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Human-readable rendering for the terminal. Shows the breakdown
    /// tables and only the flagged rows of the step comparison.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "domain={}  span={:.1}µs  busy={:.1}µs  critical path={:.1}µs ({:.0}% of span)",
            self.domain,
            self.span_us,
            self.busy_us,
            self.critical_path_us,
            if self.span_us > 0.0 {
                100.0 * self.critical_path_us / self.span_us
            } else {
                0.0
            },
        );
        match &self.modeled_domain {
            Some(d) => {
                let _ = writeln!(
                    s,
                    "measured vs modeled ({d}): {} of {} steps diverge more than {:.0}% \
                     in normalized busy share",
                    self.flagged_steps,
                    self.steps.len(),
                    self.divergence_threshold * 100.0,
                );
            }
            None => {
                let _ = writeln!(s, "no modeled trace: measured-vs-modeled column omitted");
            }
        }
        let _ = writeln!(s, "\nper thread block:");
        let _ = writeln!(
            s,
            "{:>4} {:>3} {:>6} {:>11} {:>9} {:>12} {:>12} {:>9} {:>6}",
            "rank",
            "tb",
            "instr",
            "compute_us",
            "send_us",
            "sem_wait_us",
            "fifo_blk_us",
            "crit_us",
            "crit%"
        );
        for b in &self.thread_blocks {
            let _ = writeln!(
                s,
                "{:>4} {:>3} {:>6} {:>11.1} {:>9.1} {:>12.1} {:>12.1} {:>9.1} {:>6.1}",
                b.rank,
                b.tb,
                b.instructions,
                b.compute_us,
                b.send_us,
                b.sem_wait_us,
                b.fifo_blocked_us,
                b.critical_us,
                b.critical_share * 100.0,
            );
        }
        let _ = writeln!(s, "\nper channel:");
        let _ = writeln!(
            s,
            "{:>4} {:>4} {:>3} {:>6} {:>6} {:>12} {:>5}",
            "src", "dst", "ch", "sends", "recvs", "bytes", "peak"
        );
        for c in &self.channels {
            let _ = writeln!(
                s,
                "{:>4} {:>4} {:>3} {:>6} {:>6} {:>12} {:>5}",
                c.src, c.dst, c.channel, c.sends, c.recvs, c.bytes, c.peak_occupancy,
            );
        }
        let _ = writeln!(s, "\nper instruction kind:");
        let _ = writeln!(
            s,
            "{:>5} {:>7} {:>10} {:>9} {:>9}",
            "op", "count", "total_us", "mean_us", "max_us"
        );
        for o in &self.ops {
            let _ = writeln!(
                s,
                "{:>5} {:>7} {:>10.1} {:>9.3} {:>9.3}",
                o.op, o.count, o.total_us, o.mean_us, o.max_us,
            );
        }
        if self.modeled_domain.is_some() {
            let _ = writeln!(
                s,
                "\ndivergent steps (threshold {:.0}%):",
                self.divergence_threshold * 100.0
            );
            if self.flagged_steps == 0 {
                let _ = writeln!(s, "  (none)");
            } else {
                let _ = writeln!(
                    s,
                    "{:>4} {:>3} {:>4} {:>5} {:>11} {:>7} {:>10} {:>7} {:>7}",
                    "rank",
                    "tb",
                    "step",
                    "op",
                    "measured_us",
                    "share%",
                    "modeled_us",
                    "share%",
                    "diff"
                );
                for p in self.steps.iter().filter(|p| p.flagged) {
                    let _ = writeln!(
                        s,
                        "{:>4} {:>3} {:>4} {:>5} {:>11.2} {:>7.2} {:>10.2} {:>7.2} {:>6.0}%",
                        p.rank,
                        p.tb,
                        p.step,
                        p.op,
                        p.measured_us,
                        p.measured_share * 100.0,
                        p.modeled_us.unwrap_or(0.0),
                        p.modeled_share.unwrap_or(0.0) * 100.0,
                        p.divergence.unwrap_or(0.0) * 100.0,
                    );
                }
            }
        }
        s
    }
}

/// Derives the logical metric counters a live registry would have
/// recorded from a recorded trace: per-channel bytes/sends/receives and
/// peak occupancy, semaphore and FIFO block time, per-opcode latency
/// histograms, pool and recovery counters. Time-valued metrics convert
/// the trace's microseconds to integer nanoseconds.
#[must_use]
pub fn snapshot_from_trace(trace: &Trace) -> MetricsSnapshot {
    let registry = Registry::new(1);
    let ns = |us: f64| (us * 1000.0).round().max(0.0) as u64;
    for (&(_, _, _, _), &(op, busy_us)) in &instr_busy(trace) {
        registry
            .histogram(names::INSTR_LATENCY_NS, &[("op", op.mnemonic())])
            .record(0, ns(busy_us));
        registry
            .counter(names::INSTRUCTIONS, &[("op", op.mnemonic())])
            .inc(0);
    }
    let mut open_sem: HashMap<(usize, usize), f64> = HashMap::new();
    let mut open_block: HashMap<(usize, usize), (bool, f64)> = HashMap::new();
    for e in trace.events() {
        let tbkey = (e.rank, e.tb);
        match e.kind {
            EventKind::Send {
                dst,
                channel,
                bytes,
                ..
            } => {
                let labels = [
                    ("src", e.rank.to_string()),
                    ("dst", dst.to_string()),
                    ("channel", channel.to_string()),
                ];
                let labels: Vec<(&str, &str)> =
                    labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
                registry.counter(names::BYTES_SENT, &labels).add(0, bytes);
                registry.counter(names::SENDS, &labels).inc(0);
            }
            EventKind::Recv {
                src,
                channel,
                bytes,
                ..
            } => {
                let labels = [
                    ("src", src.to_string()),
                    ("dst", e.rank.to_string()),
                    ("channel", channel.to_string()),
                ];
                let labels: Vec<(&str, &str)> =
                    labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
                registry
                    .counter(names::BYTES_RECEIVED, &labels)
                    .add(0, bytes);
                registry.counter(names::RECVS, &labels).inc(0);
            }
            EventKind::SemWaitEnter { .. } => {
                open_sem.insert(tbkey, e.ts_us);
            }
            EventKind::SemWaitExit { .. } => {
                if let Some(t0) = open_sem.remove(&tbkey) {
                    registry
                        .counter(names::SEM_WAIT_NS, &[])
                        .add(0, ns(e.ts_us - t0));
                }
            }
            EventKind::SendBlock { .. } => {
                open_block.insert(tbkey, (true, e.ts_us));
            }
            EventKind::RecvBlock { .. } => {
                open_block.insert(tbkey, (false, e.ts_us));
            }
            EventKind::SendResume { .. } | EventKind::RecvResume { .. } => {
                if let Some((is_send, t0)) = open_block.remove(&tbkey) {
                    let name = if is_send {
                        names::FIFO_SEND_BLOCK_NS
                    } else {
                        names::FIFO_RECV_BLOCK_NS
                    };
                    registry.counter(name, &[]).add(0, ns(e.ts_us - t0));
                }
            }
            EventKind::PoolStats { allocated, reused } => {
                registry
                    .counter(names::POOL_ALLOCATED, &[])
                    .add(0, allocated);
                registry.counter(names::POOL_REUSED, &[]).add(0, reused);
            }
            EventKind::Recovery { decision, .. } => {
                registry.counter(names::RECOVERY_ATTEMPTS, &[]).inc(0);
                match decision {
                    crate::event::RecoveryDecision::Resume => {
                        registry.counter(names::RECOVERY_RESUMES, &[]).inc(0);
                    }
                    crate::event::RecoveryDecision::Retry => {
                        registry.counter(names::RECOVERY_RETRIES, &[]).inc(0);
                    }
                    crate::event::RecoveryDecision::Fallback => {
                        registry.counter(names::RECOVERY_FALLBACKS, &[]).inc(0);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    for c in trace.summary().per_connection {
        let labels = [
            ("src", c.src.to_string()),
            ("dst", c.dst.to_string()),
            ("channel", c.channel.to_string()),
        ];
        let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        registry
            .gauge(names::FIFO_PEAK_OCCUPANCY, &labels)
            .set_max(c.peak_occupancy as u64);
    }
    registry.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockDomain, TraceEvent};

    fn ev(ts: f64, rank: usize, tb: usize, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            rank,
            tb,
            kind,
        }
    }

    fn instr(ts: f64, rank: usize, tb: usize, step: usize, op: OpCode, end: bool) -> TraceEvent {
        ev(
            ts,
            rank,
            tb,
            if end {
                EventKind::InstrEnd { step, tile: 0, op }
            } else {
                EventKind::InstrBegin { step, tile: 0, op }
            },
        )
    }

    /// rank 0 sends 2µs (step 0), rank 1 receives 4µs (step 0): compute
    /// vs send split, channel counters and step table all line up.
    fn measured() -> Trace {
        Trace::from_buffers(
            ClockDomain::Wall,
            vec![
                vec![
                    instr(0.0, 0, 0, 0, OpCode::Send, false),
                    ev(
                        1.0,
                        0,
                        0,
                        EventKind::Send {
                            dst: 1,
                            channel: 0,
                            seq: 0,
                            bytes: 256,
                        },
                    ),
                    instr(2.0, 0, 0, 0, OpCode::Send, true),
                ],
                vec![
                    instr(0.5, 1, 0, 0, OpCode::Recv, false),
                    ev(
                        1.5,
                        1,
                        0,
                        EventKind::Recv {
                            src: 0,
                            channel: 0,
                            seq: 0,
                            bytes: 256,
                        },
                    ),
                    instr(4.5, 1, 0, 0, OpCode::Recv, true),
                ],
            ],
        )
    }

    /// A model of the same two steps where the send dominates instead:
    /// shares flip, so both steps diverge hard.
    fn modeled() -> Trace {
        Trace::from_buffers(
            ClockDomain::Virtual,
            vec![
                vec![
                    instr(0.0, 0, 0, 0, OpCode::Send, false),
                    ev(
                        4.0,
                        0,
                        0,
                        EventKind::Send {
                            dst: 1,
                            channel: 0,
                            seq: 0,
                            bytes: 256,
                        },
                    ),
                    instr(5.0, 0, 0, 0, OpCode::Send, true),
                ],
                vec![
                    instr(5.0, 1, 0, 0, OpCode::Recv, false),
                    ev(
                        5.0,
                        1,
                        0,
                        EventKind::Recv {
                            src: 0,
                            channel: 0,
                            seq: 0,
                            bytes: 256,
                        },
                    ),
                    instr(6.0, 1, 0, 0, OpCode::Recv, true),
                ],
            ],
        )
    }

    #[test]
    fn attribution_tables_line_up() {
        let report = ProfileReport::from_traces(&measured(), None, 0.5);
        assert_eq!(report.domain, "wall");
        assert_eq!(report.modeled_domain, None);
        assert_eq!(report.thread_blocks.len(), 2);
        let tb0 = &report.thread_blocks[0];
        assert!((tb0.send_us - 2.0).abs() < 1e-9);
        assert!((tb0.compute_us).abs() < 1e-9);
        let tb1 = &report.thread_blocks[1];
        assert!((tb1.compute_us - 4.0).abs() < 1e-9);
        assert_eq!(report.channels.len(), 1);
        let c = &report.channels[0];
        assert_eq!((c.sends, c.recvs, c.bytes), (1, 1, 256));
        assert_eq!(report.ops.len(), 2);
        assert_eq!(report.steps.len(), 2);
        assert!(report.steps.iter().all(|s| !s.flagged));
        // Critical path: send (2µs) feeds recv (4µs); both tbs on it.
        assert!((report.critical_path_us - 6.0).abs() < 1e-9);
        let shares: f64 = report.thread_blocks.iter().map(|b| b.critical_share).sum();
        assert!((shares - 1.0).abs() < 1e-9);
    }

    #[test]
    fn divergent_shares_are_flagged() {
        let report = ProfileReport::from_traces(&measured(), Some(&modeled()), 0.5);
        assert_eq!(report.modeled_domain.as_deref(), Some("virtual"));
        // Measured shares: send 1/3, recv 2/3. Modeled: send 5/6, recv
        // 1/6. Send diverges by |1/3-5/6|/(5/6) = 0.6, recv by
        // |2/3-1/6|/(1/6) = 3.0 — both above 0.5.
        assert_eq!(report.flagged_steps, 2);
        let send = report.steps.iter().find(|s| s.op == "s").unwrap();
        assert!((send.divergence.unwrap() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_carries_schema() {
        let report = ProfileReport::from_traces(&measured(), Some(&modeled()), 0.5);
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.contains("\"schema\": \"msccl-profile-v1\""));
        assert!(json.contains("\"modeled_domain\": \"virtual\""));
        assert!(json.contains("\"flagged\": true"));
        let no_model = ProfileReport::from_traces(&measured(), None, 0.5);
        assert!(no_model.to_json().contains("\"modeled_us\": null"));
    }

    #[test]
    fn snapshot_matches_trace_counters() {
        use msccl_metrics::names;
        let snap = snapshot_from_trace(&measured());
        let labels = [("src", "0"), ("dst", "1"), ("channel", "0")];
        assert_eq!(snap.counter(names::BYTES_SENT, &labels), 256);
        assert_eq!(snap.counter(names::BYTES_RECEIVED, &labels), 256);
        assert_eq!(snap.counter(names::SENDS, &labels), 1);
        assert_eq!(snap.counter(names::RECVS, &labels), 1);
        assert_eq!(snap.counter_total(names::INSTRUCTIONS), 2);
    }
}
