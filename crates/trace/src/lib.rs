//! Execution-trace observability for MSCCL-IR executors.
//!
//! The paper's runtime is an interpreter (Figure 5) whose interesting
//! behaviour — semaphore waits, FIFO-slot blocking, tile pipelining — is
//! invisible from the outside: a hang reports only `(rank, tb, step)` and
//! the simulator's timelines were ad-hoc CSV. This crate defines one
//! structured event vocabulary ([`TraceEvent`]/[`EventKind`]) emitted by
//! *both* executors:
//!
//! * `msccl-runtime` stamps **wall-clock** microseconds, recording into
//!   per-thread buffers that are merged when the worker threads join;
//! * `msccl-sim` stamps **virtual** microseconds from its discrete-event
//!   clock;
//!
//! and everything downstream is shared: aggregate metrics
//! ([`Trace::summary`] — per-thread-block busy/wait/blocked breakdowns,
//! per-connection FIFO occupancy, critical-path length), exporters
//! ([`Trace::to_chrome_json`] for `chrome://tracing`/Perfetto,
//! [`Trace::to_csv`]), and a consistency oracle
//! ([`Trace::check_consistency`]) that validates a trace against the IR's
//! dependency structure — the backbone of the differential test tier.

mod consistency;
mod event;
mod export;
mod import;
mod metrics;
mod profile;

pub use event::{ClockDomain, EventKind, RecoveryDecision, TraceEvent};
pub use metrics::{ConnectionStats, TbBreakdown, TraceSummary};
pub use profile::{
    snapshot_from_trace, ChannelProfile, OpProfile, ProfileReport, StepProfile, TbProfile,
    MIN_SHARE,
};

/// A completed execution trace: events from every thread block, sorted by
/// timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    domain: ClockDomain,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace in the given clock domain.
    #[must_use]
    pub fn new(domain: ClockDomain) -> Self {
        Self {
            domain,
            events: Vec::new(),
        }
    }

    /// Merges per-thread event buffers into one sorted trace. The sort is
    /// stable, so each thread block's own events keep their program order
    /// even when timestamps tie.
    #[must_use]
    pub fn from_buffers(domain: ClockDomain, buffers: Vec<Vec<TraceEvent>>) -> Self {
        let mut events: Vec<TraceEvent> = buffers.into_iter().flatten().collect();
        events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        Self { domain, events }
    }

    /// Appends one event (used by the single-threaded simulator sink).
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Sorts events by timestamp (stable); call after out-of-order pushes.
    pub fn sort(&mut self) {
        self.events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    }

    /// The clock domain the timestamps live in.
    #[must_use]
    pub fn domain(&self) -> ClockDomain {
        self.domain
    }

    /// All events in timestamp order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time between the first and last event, in microseconds.
    #[must_use]
    pub fn span_us(&self) -> f64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.ts_us - first.ts_us,
            _ => 0.0,
        }
    }

    /// Every executed instruction as `(rank, tb, step, tile)`, sorted —
    /// the unit of comparison for differential tests between executors.
    #[must_use]
    pub fn executed_instructions(&self) -> Vec<(usize, usize, usize, usize)> {
        let mut out: Vec<_> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::InstrEnd { step, tile, .. } => Some((e.rank, e.tb, step, tile)),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::OpCode;

    fn ev(ts: f64, rank: usize, tb: usize, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            rank,
            tb,
            kind,
        }
    }

    #[test]
    fn buffers_merge_sorted_and_stable() {
        let a = vec![
            ev(
                1.0,
                0,
                0,
                EventKind::InstrBegin {
                    step: 0,
                    tile: 0,
                    op: OpCode::Copy,
                },
            ),
            ev(
                3.0,
                0,
                0,
                EventKind::InstrEnd {
                    step: 0,
                    tile: 0,
                    op: OpCode::Copy,
                },
            ),
        ];
        let b = vec![ev(2.0, 0, 1, EventKind::SemSet { value: 1 })];
        let t = Trace::from_buffers(ClockDomain::Wall, vec![a, b]);
        let ts: Vec<f64> = t.events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 3);
        assert!((t.span_us() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn executed_instructions_extracts_instr_ends() {
        let t = Trace::from_buffers(
            ClockDomain::Virtual,
            vec![vec![
                ev(
                    0.0,
                    1,
                    0,
                    EventKind::InstrBegin {
                        step: 0,
                        tile: 0,
                        op: OpCode::Send,
                    },
                ),
                ev(
                    1.0,
                    1,
                    0,
                    EventKind::InstrEnd {
                        step: 0,
                        tile: 0,
                        op: OpCode::Send,
                    },
                ),
            ]],
        );
        assert_eq!(t.executed_instructions(), vec![(1, 0, 0, 0)]);
    }
}
