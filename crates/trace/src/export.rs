//! Chrome-trace JSON and CSV exporters.
//!
//! The JSON is hand-rolled (the build is offline; no serde) with a fully
//! deterministic field order so simulator traces can be golden-snapshot
//! tested byte-for-byte. The format is the Chrome `chrome://tracing` /
//! Perfetto "Trace Event Format": `pid` is the rank, `tid` is the thread
//! block, duration (`"X"`) events carry instruction spans and wait/block
//! intervals, instant (`"i"`) events carry sends, receives and semaphore
//! updates.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::EventKind;
use crate::Trace;

/// Formats a microsecond timestamp with fixed precision so output is
/// byte-stable across platforms.
fn us(v: f64) -> String {
    format!("{v:.3}")
}

#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: &str,
    ts: f64,
    rank: usize,
    tb: usize,
    dur: Option<f64>,
    args: &[(&str, String)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "    {{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{rank},\"tid\":{tb}",
        us(ts)
    );
    if let Some(dur) = dur {
        let _ = write!(out, ",\"dur\":{}", us(dur));
    }
    if ph == "i" {
        out.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push('}');
}

impl Trace {
    /// Renders the trace in Chrome's Trace Event Format (JSON object form).
    ///
    /// Instruction spans and wait/block intervals become `"X"` complete
    /// events; sends, receives, semaphore updates, kernel launch and tile
    /// boundaries become `"i"` instant events; per-rank `"M"` metadata
    /// names each process `rank N`. Field order is fixed, timestamps are
    /// printed with three decimals, so the output of a deterministic
    /// producer (the simulator) is byte-stable.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"clock\": \"{}\"}},\n  \"traceEvents\": [\n",
            self.domain().label()
        );
        let mut first = true;

        // Process metadata, one entry per rank, in rank order.
        let mut ranks: Vec<usize> = self.events().iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for rank in ranks {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{rank},\"args\":{{\"name\":\"rank {rank}\"}}}}"
            );
        }

        // Pair begin/end events into "X" spans; emit the rest as instants.
        // An open interval is (begin ts, span name, span args).
        type OpenInterval = (f64, String, Vec<(String, String)>);
        let mut open_instr: HashMap<(usize, usize), (f64, usize, usize, String)> = HashMap::new();
        let mut open_interval: HashMap<(usize, usize), OpenInterval> = HashMap::new();
        for e in self.events() {
            let key = (e.rank, e.tb);
            match &e.kind {
                EventKind::InstrBegin { step, tile, op } => {
                    open_instr.insert(key, (e.ts_us, *step, *tile, op.mnemonic().to_string()));
                }
                EventKind::InstrEnd { step, tile, .. } => {
                    if let Some((begin, s, t, op)) = open_instr.remove(&key) {
                        push_event(
                            &mut out,
                            &mut first,
                            &op,
                            "X",
                            begin,
                            e.rank,
                            e.tb,
                            Some(e.ts_us - begin),
                            &[("step", step.to_string()), ("tile", tile.to_string())],
                        );
                        debug_assert_eq!((s, t), (*step, *tile));
                    }
                }
                EventKind::SemWaitEnter { dep_tb, target } => {
                    open_interval.insert(
                        key,
                        (
                            e.ts_us,
                            "sem_wait".to_string(),
                            vec![
                                ("dep_tb".to_string(), dep_tb.to_string()),
                                ("target".to_string(), target.to_string()),
                            ],
                        ),
                    );
                }
                EventKind::SendBlock { dst, channel } => {
                    open_interval.insert(
                        key,
                        (
                            e.ts_us,
                            "send_block".to_string(),
                            vec![
                                ("dst".to_string(), dst.to_string()),
                                ("channel".to_string(), channel.to_string()),
                            ],
                        ),
                    );
                }
                EventKind::RecvBlock { src, channel } => {
                    open_interval.insert(
                        key,
                        (
                            e.ts_us,
                            "recv_block".to_string(),
                            vec![
                                ("src".to_string(), src.to_string()),
                                ("channel".to_string(), channel.to_string()),
                            ],
                        ),
                    );
                }
                EventKind::SemWaitExit { .. }
                | EventKind::SendResume { .. }
                | EventKind::RecvResume { .. } => {
                    if let Some((begin, name, args)) = open_interval.remove(&key) {
                        let args: Vec<(&str, String)> =
                            args.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                        push_event(
                            &mut out,
                            &mut first,
                            &name,
                            "X",
                            begin,
                            e.rank,
                            e.tb,
                            Some(e.ts_us - begin),
                            &args,
                        );
                    }
                }
                EventKind::KernelLaunch => {
                    push_event(
                        &mut out,
                        &mut first,
                        "kernel_launch",
                        "i",
                        e.ts_us,
                        e.rank,
                        e.tb,
                        None,
                        &[],
                    );
                }
                EventKind::TileBegin { tile } | EventKind::TileEnd { tile } => {
                    push_event(
                        &mut out,
                        &mut first,
                        e.kind.name(),
                        "i",
                        e.ts_us,
                        e.rank,
                        e.tb,
                        None,
                        &[("tile", tile.to_string())],
                    );
                }
                EventKind::SemSet { value } => {
                    push_event(
                        &mut out,
                        &mut first,
                        "sem_set",
                        "i",
                        e.ts_us,
                        e.rank,
                        e.tb,
                        None,
                        &[("value", value.to_string())],
                    );
                }
                EventKind::Send {
                    dst,
                    channel,
                    seq,
                    bytes,
                } => {
                    push_event(
                        &mut out,
                        &mut first,
                        "send",
                        "i",
                        e.ts_us,
                        e.rank,
                        e.tb,
                        None,
                        &[
                            ("dst", dst.to_string()),
                            ("channel", channel.to_string()),
                            ("seq", seq.to_string()),
                            ("bytes", bytes.to_string()),
                        ],
                    );
                }
                EventKind::Recv {
                    src,
                    channel,
                    seq,
                    bytes,
                } => {
                    push_event(
                        &mut out,
                        &mut first,
                        "recv",
                        "i",
                        e.ts_us,
                        e.rank,
                        e.tb,
                        None,
                        &[
                            ("src", src.to_string()),
                            ("channel", channel.to_string()),
                            ("seq", seq.to_string()),
                            ("bytes", bytes.to_string()),
                        ],
                    );
                }
                EventKind::PoolStats { allocated, reused } => {
                    push_event(
                        &mut out,
                        &mut first,
                        "pool_stats",
                        "i",
                        e.ts_us,
                        e.rank,
                        e.tb,
                        None,
                        &[
                            ("allocated", allocated.to_string()),
                            ("reused", reused.to_string()),
                        ],
                    );
                }
                EventKind::Recovery { attempt, decision } => {
                    push_event(
                        &mut out,
                        &mut first,
                        "recovery",
                        "i",
                        e.ts_us,
                        e.rank,
                        e.tb,
                        None,
                        &[
                            ("attempt", attempt.to_string()),
                            ("decision", format!("\"{}\"", decision.label())),
                        ],
                    );
                }
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders every event as one CSV row:
    /// `ts_us,rank,tb,kind,step,tile,op,peer,channel,seq,value` with empty
    /// cells for fields a kind does not carry.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ts_us,rank,tb,kind,step,tile,op,peer,channel,seq,value\n");
        for e in self.events() {
            let mut step = String::new();
            let mut tile = String::new();
            let mut op = String::new();
            let mut peer = String::new();
            let mut channel = String::new();
            let mut seq = String::new();
            let mut value = String::new();
            match &e.kind {
                EventKind::KernelLaunch => {}
                EventKind::TileBegin { tile: t } | EventKind::TileEnd { tile: t } => {
                    tile = t.to_string();
                }
                EventKind::InstrBegin {
                    step: s,
                    tile: t,
                    op: o,
                }
                | EventKind::InstrEnd {
                    step: s,
                    tile: t,
                    op: o,
                } => {
                    step = s.to_string();
                    tile = t.to_string();
                    op = o.mnemonic().to_string();
                }
                EventKind::SemWaitEnter { dep_tb, target }
                | EventKind::SemWaitExit { dep_tb, target } => {
                    peer = dep_tb.to_string();
                    value = target.to_string();
                }
                EventKind::SemSet { value: v } => value = v.to_string(),
                EventKind::SendBlock { dst, channel: c }
                | EventKind::SendResume { dst, channel: c } => {
                    peer = dst.to_string();
                    channel = c.to_string();
                }
                // Payload bytes ride in the free-form `value` column.
                EventKind::Send {
                    dst,
                    channel: c,
                    seq: q,
                    bytes,
                } => {
                    peer = dst.to_string();
                    channel = c.to_string();
                    seq = q.to_string();
                    value = bytes.to_string();
                }
                EventKind::RecvBlock { src, channel: c }
                | EventKind::RecvResume { src, channel: c } => {
                    peer = src.to_string();
                    channel = c.to_string();
                }
                EventKind::Recv {
                    src,
                    channel: c,
                    seq: q,
                    bytes,
                } => {
                    peer = src.to_string();
                    channel = c.to_string();
                    seq = q.to_string();
                    value = bytes.to_string();
                }
                // `seq` reuses its column for the allocation count; the
                // reuse count rides in the free-form `value` column.
                EventKind::PoolStats { allocated, reused } => {
                    seq = allocated.to_string();
                    value = reused.to_string();
                }
                // `step` reuses its column for the attempt index; the
                // decision label rides in the free-form `value` column.
                EventKind::Recovery { attempt, decision } => {
                    step = attempt.to_string();
                    value = decision.label().to_string();
                }
            }
            let _ = writeln!(
                out,
                "{},{},{},{},{step},{tile},{op},{peer},{channel},{seq},{value}",
                us(e.ts_us),
                e.rank,
                e.tb,
                e.kind.name()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockDomain, TraceEvent};
    use mscclang::OpCode;

    fn sample() -> Trace {
        Trace::from_buffers(
            ClockDomain::Virtual,
            vec![vec![
                TraceEvent {
                    ts_us: 0.0,
                    rank: 0,
                    tb: 0,
                    kind: EventKind::KernelLaunch,
                },
                TraceEvent {
                    ts_us: 0.0,
                    rank: 0,
                    tb: 0,
                    kind: EventKind::InstrBegin {
                        step: 0,
                        tile: 0,
                        op: OpCode::Send,
                    },
                },
                TraceEvent {
                    ts_us: 1.5,
                    rank: 0,
                    tb: 0,
                    kind: EventKind::Send {
                        dst: 1,
                        channel: 0,
                        seq: 0,
                        bytes: 64,
                    },
                },
                TraceEvent {
                    ts_us: 2.0,
                    rank: 0,
                    tb: 0,
                    kind: EventKind::InstrEnd {
                        step: 0,
                        tile: 0,
                        op: OpCode::Send,
                    },
                },
            ]],
        )
    }

    #[test]
    fn chrome_json_is_wellformed_and_stable() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with("{\n  \"displayTimeUnit\": \"ms\""));
        assert!(json.contains("\"otherData\": {\"clock\": \"virtual\"}"));
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"rank 0\"}}"
        ));
        // Send instruction span: begins at 0, lasts 2µs.
        assert!(json.contains(
            "{\"name\":\"s\",\"ph\":\"X\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"dur\":2.000,\
             \"args\":{\"step\":0,\"tile\":0}}"
        ));
        // The send instant carries its connection, sequence and size.
        assert!(json.contains(
            "{\"name\":\"send\",\"ph\":\"i\",\"ts\":1.500,\"pid\":0,\"tid\":0,\"s\":\"t\",\
             \"args\":{\"dst\":1,\"channel\":0,\"seq\":0,\"bytes\":64}}"
        ));
        assert!(json.ends_with("  ]\n}\n"));
        // Byte-stable: rendering twice is identical.
        assert_eq!(json, sample().to_chrome_json());
    }

    #[test]
    fn csv_has_one_row_per_event() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + sample().len());
        assert_eq!(
            lines[0],
            "ts_us,rank,tb,kind,step,tile,op,peer,channel,seq,value"
        );
        assert_eq!(lines[1], "0.000,0,0,kernel_launch,,,,,,,");
        assert_eq!(lines[2], "0.000,0,0,instr_begin,0,0,s,,,,");
        assert_eq!(lines[3], "1.500,0,0,send,,,,1,0,0,64");
        assert_eq!(lines[4], "2.000,0,0,instr_end,0,0,s,,,,");
    }
}
