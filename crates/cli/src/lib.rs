//! The `msccl` command line: compile the algorithm library to MSCCL-IR
//! XML, verify, inspect, simulate and functionally execute IR files.
//!
//! ```text
//! msccl list
//! msccl compile ring-allreduce --ranks 8 --channels 4 --instances 8 -o ring.xml
//! msccl verify ring.xml --slots 8
//! msccl inspect ring.xml
//! msccl simulate ring.xml --machine ndv4:1 --size 32MB --protocol LL128
//! msccl run ring.xml --elems 1024
//! ```
//!
//! Every command is a pure function from parsed arguments to an output
//! string, so the complete surface is unit-testable without spawning
//! processes.

mod args;
mod commands;
mod machine_spec;

pub use args::{parse_args, Args, CliError};
pub use commands::{dispatch, HELP};
pub use machine_spec::{format_size, parse_machine, parse_size};
