//! Parsing of machine specs (`ndv4:4`, `dgx2:2`, `dgx1`) and byte sizes
//! (`64MB`, `4KB`, `1GB`, `512`) — thin [`CliError`] adapters over the
//! shared parsers in `msccl_topology::spec`.

use msccl_topology::Machine;

use crate::args::CliError;

pub use msccl_topology::format_size;

/// Parses a machine spec: `ndv4[:N]`, `dgx2[:N]`, `dgx1`, or a custom
/// cluster `custom:<nodes>x<gpus>[:intra_gbps[:nic_gbps]]`.
///
/// # Errors
///
/// Returns an error for unknown families or malformed parameters.
pub fn parse_machine(spec: &str) -> Result<Machine, CliError> {
    msccl_topology::parse_machine(spec).map_err(CliError::new)
}

/// Parses a byte size with optional `KB`/`MB`/`GB` suffix (binary units).
///
/// # Errors
///
/// Returns an error for malformed numbers or unknown suffixes.
pub fn parse_size(spec: &str) -> Result<u64, CliError> {
    msccl_topology::parse_size(spec).map_err(CliError::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_specs_parse() {
        assert_eq!(parse_machine("ndv4:4").unwrap().num_ranks(), 32);
        assert_eq!(parse_machine("dgx2").unwrap().num_ranks(), 16);
        assert_eq!(parse_machine("dgx1").unwrap().num_ranks(), 8);
        assert_eq!(parse_machine("A100:2").unwrap().num_ranks(), 16);
        assert_eq!(parse_machine("ndv5:2").unwrap().num_ranks(), 16);
        assert!(parse_machine("tpu").is_err());
        assert!(parse_machine("ndv4:0").is_err());
        assert!(parse_machine("dgx1:2").is_err());
    }

    #[test]
    fn custom_machines_parse() {
        let m = parse_machine("custom:2x4").unwrap();
        assert_eq!(m.num_ranks(), 8);
        assert_eq!(m.intra_link().bandwidth_gbps, 200.0);
        let m = parse_machine("custom:3x2:100:12.5").unwrap();
        assert_eq!(m.num_ranks(), 6);
        assert_eq!(m.intra_link().bandwidth_gbps, 100.0);
        assert_eq!(m.nic_link().bandwidth_gbps, 12.5);
        assert!(parse_machine("custom:0x4").is_err());
        assert!(parse_machine("custom:2").is_err());
        assert!(parse_machine("custom:2x4:-5").is_err());
    }

    #[test]
    fn format_size_round_trips() {
        for bytes in [512u64, 4 << 10, 3 << 20, 1 << 30, 1000] {
            assert_eq!(parse_size(&format_size(bytes)).unwrap(), bytes);
        }
    }

    #[test]
    fn sizes_parse() {
        assert_eq!(parse_size("512").unwrap(), 512);
        assert_eq!(parse_size("512B").unwrap(), 512);
        assert_eq!(parse_size("4KB").unwrap(), 4096);
        assert_eq!(parse_size("64mb").unwrap(), 64 << 20);
        assert_eq!(parse_size("1GB").unwrap(), 1 << 30);
        assert!(parse_size("4TB").is_err());
        assert!(parse_size("abc").is_err());
    }
}
