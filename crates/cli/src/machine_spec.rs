//! Parsing of machine specs (`ndv4:4`, `dgx2:2`, `dgx1`) and byte sizes
//! (`64MB`, `4KB`, `1GB`, `512`).

use msccl_topology::Machine;

use crate::args::CliError;

/// Parses a machine spec: `ndv4[:N]`, `dgx2[:N]`, `dgx1`, or a custom
/// cluster `custom:<nodes>x<gpus>[:intra_gbps[:nic_gbps]]`.
///
/// # Errors
///
/// Returns an error for unknown families or malformed parameters.
pub fn parse_machine(spec: &str) -> Result<Machine, CliError> {
    let lower = spec.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("custom:") {
        return parse_custom(rest, spec);
    }
    let (family, nodes) = match lower.split_once(':') {
        Some((f, n)) => {
            let nodes: usize = n
                .parse()
                .map_err(|_| CliError::new(format!("invalid node count in '{spec}'")))?;
            if nodes == 0 {
                return Err(CliError::new("node count must be at least 1"));
            }
            (f.to_owned(), nodes)
        }
        None => (lower, 1),
    };
    match family.as_str() {
        "ndv4" | "a100" => Ok(Machine::ndv4(nodes)),
        "ndv5" | "h100" => Ok(Machine::ndv5(nodes)),
        "dgx2" | "v100" => Ok(Machine::dgx2(nodes)),
        "dgx1" => {
            if nodes != 1 {
                return Err(CliError::new("dgx1 is a single-node machine"));
            }
            Ok(Machine::dgx1())
        }
        other => Err(CliError::new(format!(
            "unknown machine '{other}' (expected ndv4[:N], dgx2[:N], dgx1 or              custom:<nodes>x<gpus>[:intra_gbps[:nic_gbps]])"
        ))),
    }
}

fn parse_custom(rest: &str, spec: &str) -> Result<Machine, CliError> {
    let bad = || CliError::new(format!("invalid custom machine '{spec}'"));
    let mut parts = rest.split(':');
    let dims = parts.next().ok_or_else(bad)?;
    let (nodes, gpus) = dims.split_once('x').ok_or_else(bad)?;
    let nodes: usize = nodes.parse().map_err(|_| bad())?;
    let gpus: usize = gpus.parse().map_err(|_| bad())?;
    if nodes == 0 || gpus == 0 {
        return Err(bad());
    }
    let intra_gbps: f64 = match parts.next() {
        Some(v) => v.parse().map_err(|_| bad())?,
        None => 200.0,
    };
    let nic_gbps: f64 = match parts.next() {
        Some(v) => v.parse().map_err(|_| bad())?,
        None => 25.0,
    };
    if intra_gbps <= 0.0 || nic_gbps <= 0.0 {
        return Err(bad());
    }
    Ok(Machine::custom(
        nodes,
        gpus,
        msccl_topology::LinkParams::new(2.0, intra_gbps),
        gpus,
        msccl_topology::LinkParams::new(3.5, nic_gbps),
    ))
}

/// Parses a byte size with optional `KB`/`MB`/`GB` suffix (binary units).
///
/// # Errors
///
/// Returns an error for malformed numbers or unknown suffixes.
pub fn parse_size(spec: &str) -> Result<u64, CliError> {
    let s = spec.trim().to_ascii_uppercase();
    let (digits, multiplier) = if let Some(d) = s.strip_suffix("GB") {
        (d, 1u64 << 30)
    } else if let Some(d) = s.strip_suffix("MB") {
        (d, 1u64 << 20)
    } else if let Some(d) = s.strip_suffix("KB") {
        (d, 1u64 << 10)
    } else if let Some(d) = s.strip_suffix('B') {
        (d, 1)
    } else {
        (s.as_str(), 1)
    };
    let value: u64 = digits
        .trim()
        .parse()
        .map_err(|_| CliError::new(format!("invalid size '{spec}'")))?;
    value
        .checked_mul(multiplier)
        .ok_or_else(|| CliError::new(format!("size '{spec}' overflows")))
}

/// Formats a byte count compactly (inverse of [`parse_size`] for powers
/// of two).
#[must_use]
pub fn format_size(bytes: u64) -> String {
    if bytes >= 1 << 30 && bytes.is_multiple_of(1 << 30) {
        format!("{}GB", bytes >> 30)
    } else if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_specs_parse() {
        assert_eq!(parse_machine("ndv4:4").unwrap().num_ranks(), 32);
        assert_eq!(parse_machine("dgx2").unwrap().num_ranks(), 16);
        assert_eq!(parse_machine("dgx1").unwrap().num_ranks(), 8);
        assert_eq!(parse_machine("A100:2").unwrap().num_ranks(), 16);
        assert_eq!(parse_machine("ndv5:2").unwrap().num_ranks(), 16);
        assert!(parse_machine("tpu").is_err());
        assert!(parse_machine("ndv4:0").is_err());
        assert!(parse_machine("dgx1:2").is_err());
    }

    #[test]
    fn custom_machines_parse() {
        let m = parse_machine("custom:2x4").unwrap();
        assert_eq!(m.num_ranks(), 8);
        assert_eq!(m.intra_link().bandwidth_gbps, 200.0);
        let m = parse_machine("custom:3x2:100:12.5").unwrap();
        assert_eq!(m.num_ranks(), 6);
        assert_eq!(m.intra_link().bandwidth_gbps, 100.0);
        assert_eq!(m.nic_link().bandwidth_gbps, 12.5);
        assert!(parse_machine("custom:0x4").is_err());
        assert!(parse_machine("custom:2").is_err());
        assert!(parse_machine("custom:2x4:-5").is_err());
    }

    #[test]
    fn format_size_round_trips() {
        for bytes in [512u64, 4 << 10, 3 << 20, 1 << 30, 1000] {
            assert_eq!(parse_size(&format_size(bytes)).unwrap(), bytes);
        }
    }

    #[test]
    fn sizes_parse() {
        assert_eq!(parse_size("512").unwrap(), 512);
        assert_eq!(parse_size("512B").unwrap(), 512);
        assert_eq!(parse_size("4KB").unwrap(), 4096);
        assert_eq!(parse_size("64mb").unwrap(), 64 << 20);
        assert_eq!(parse_size("1GB").unwrap(), 1 << 30);
        assert!(parse_size("4TB").is_err());
        assert!(parse_size("abc").is_err());
    }
}
