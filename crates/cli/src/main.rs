//! Entry point for the `msccl` command line; all logic lives in the
//! library so it stays unit-testable.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let result = msccl_cli::parse_args(raw).and_then(|args| msccl_cli::dispatch(&args));
    match result {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
