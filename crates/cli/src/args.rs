//! Minimal dependency-free argument parsing.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: the subcommand, its positional operands and
/// `--key value` options (bare `--flag`s get the value `"true"`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    /// Positional operands after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options, keys without the dashes.
    pub options: HashMap<String, String>,
}

impl Args {
    /// Fetches an option parsed as `T`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the option when present but unparsable.
    pub fn opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::new(format!("invalid value '{v}' for --{key}"))),
        }
    }

    /// Fetches an option parsed as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when present but unparsable.
    pub fn opt_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        Ok(self.opt(key)?.unwrap_or(default))
    }

    /// Whether a bare flag was given.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// The single required positional operand.
    ///
    /// # Errors
    ///
    /// Errors when missing.
    pub fn positional1(&self, what: &str) -> Result<&str, CliError> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| CliError::new(format!("missing {what}")))
    }
}

/// A user-facing command-line error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
}

impl CliError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<mscclang::Error> for CliError {
    fn from(e: mscclang::Error) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<msccl_sim::SimError> for CliError {
    fn from(e: msccl_sim::SimError) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<msccl_runtime::RuntimeError> for CliError {
    fn from(e: msccl_runtime::RuntimeError) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<msccl_faults::FaultPlanError> for CliError {
    fn from(e: msccl_faults::FaultPlanError) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e.to_string())
    }
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns an error for an empty command line or an option missing its
/// value (options may also be written `--key=value`).
pub fn parse_args<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, CliError> {
    let mut iter = raw.into_iter().peekable();
    let command = iter
        .next()
        .ok_or_else(|| CliError::new("missing command; try 'msccl help'"))?;
    let mut args = Args {
        command,
        ..Args::default()
    };
    while let Some(token) = iter.next() {
        if let Some(key) = token.strip_prefix("--") {
            if let Some((k, v)) = key.split_once('=') {
                args.options.insert(k.to_owned(), v.to_owned());
            } else if iter.peek().is_some_and(|next| !next.starts_with('-')) {
                args.options
                    .insert(key.to_owned(), iter.next().expect("peeked"));
            } else {
                args.options.insert(key.to_owned(), "true".to_owned());
            }
        } else if let Some(key) = token.strip_prefix('-') {
            // Short options always take a value (-o file).
            let value = iter
                .next()
                .ok_or_else(|| CliError::new(format!("option -{key} needs a value")))?;
            let long = match key {
                "o" => "output",
                other => other,
            };
            args.options.insert(long.to_owned(), value);
        } else {
            args.positional.push(token);
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        parse_args(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_command_positionals_and_options() {
        let a = parse("compile ring-allreduce --ranks 8 --no-fuse -o out.xml");
        assert_eq!(a.command, "compile");
        assert_eq!(a.positional, vec!["ring-allreduce"]);
        assert_eq!(a.opt::<usize>("ranks").unwrap(), Some(8));
        assert!(a.flag("no-fuse"));
        assert_eq!(a.options["output"], "out.xml");
    }

    #[test]
    fn equals_form_is_supported() {
        let a = parse("simulate f.xml --size=32MB");
        assert_eq!(a.options["size"], "32MB");
    }

    #[test]
    fn trailing_flag_has_true_value() {
        let a = parse("verify f.xml --races");
        assert_eq!(a.options["races"], "true");
    }

    #[test]
    fn bad_numeric_option_is_reported() {
        let a = parse("compile x --ranks eight");
        let err = a.opt::<usize>("ranks").unwrap_err();
        assert!(err.to_string().contains("--ranks"));
    }

    #[test]
    fn empty_command_line_errors() {
        assert!(parse_args(Vec::<String>::new()).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = parse("compile x");
        assert_eq!(a.opt_or("instances", 1usize).unwrap(), 1);
    }
}
