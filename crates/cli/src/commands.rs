//! The subcommands and their registry of buildable algorithms.

use std::fmt::Write as _;
use std::time::Duration;

use msccl_faults::{FaultInjector, FaultPlan, FaultUniverse};
use msccl_metrics::{names, MetricsSnapshot};
use msccl_runtime::{
    execute_profiled, execute_with_metrics, execute_with_recovery, reference, Blackbox,
    RecoveryPolicy, ResumePolicy, RunOptions,
};
use msccl_scenario::{
    check_scenario, drive_scenario, run_scenario, DriveConfig, Engine as ScenarioEngine,
    RunConfig as ScenarioRunConfig, Scenario,
};
use msccl_service::{signal as service_signal, start as service_start, ServiceConfig, TenantSpec};
use msccl_sim::{simulate, SimConfig};
use msccl_topology::Protocol;
use msccl_trace::{snapshot_from_trace, ClockDomain, ProfileReport, Trace};
use mscclang::{compile, ir_xml, verify, CompileOptions, EpochMode, IrProgram, Program};

use crate::args::{Args, CliError};
use crate::machine_spec::{parse_machine, parse_size};

/// The `msccl help` text.
pub const HELP: &str = "\
msccl — MSCCLang compiler and tools (paper reproduction)

USAGE:
    msccl <command> [arguments]

COMMANDS:
    list                          list buildable algorithms
    compile <algorithm> [opts]    build an algorithm and emit MSCCL-IR XML
        --ranks N | --nodes N --gpus N    dimensions (per algorithm)
        --channels N                      ring channel count
        --chunks N                        chunk factor (tree)
        --instances N                     parallelization factor r
        --protocol Simple|LL|LL128        protocol hint stored in the IR
        --no-fuse                         disable instruction fusion
        --aggregate                       auto-merge contiguous sends
        --dce                             drop staging whose result is unread
        --slots N                         FIFO budget the schedule must respect
        -o FILE                           write XML here (default: stdout)
    verify <file.xml> [--slots N]  symbolically execute and check the IR
    inspect <file.xml>             print the IR and schedule statistics
    graph <file.xml>               emit a Graphviz DOT rendering of the IR
    simulate <file.xml> --machine M --size S [--protocol P] [--timeline F]
                        [--trace F] [--fault-seed N | --fault-plan F]
                        [--epochs off|auto|N] [--parallel N]
                                   estimate latency (M: ndv4[:N], dgx2[:N], dgx1,
                                   or custom:<nodes>x<gpus>[:intra_gbps[:nic_gbps]]);
                                   --timeline writes per-thread-block busy
                                   intervals as CSV to F; --trace writes a
                                   virtual-time event trace to F (Chrome
                                   trace JSON, or CSV if F ends in .csv);
                                   fault flags inject deterministic faults
                                   into the virtual timeline; --epochs
                                   charges the epoch checkpoint model (auto
                                   uses the compiler's cost model);
                                   --parallel runs the sharded engine on N
                                   threads (bit-identical to serial; see
                                   docs/simulator.md)
    run <file.xml> [--elems N] [--threads N] [--trace F] [--deadline-ms N]
                   [--fault-seed N | --fault-plan F] [--retries N]
                   [--fallback FILE.xml] [--epochs off|auto|N]
                   [--resume-policy epoch|retry] [--blackbox-dir DIR]
                                   execute on real data and check numerics;
                                   --threads sizes the scheduler's worker
                                   pool (default 0 = min(cores, thread
                                   blocks); results are bit-exact at any
                                   size); --trace writes a wall-clock event
                                   trace to F (Chrome trace JSON, or CSV if
                                   F ends in .csv); --deadline-ms bounds
                                   total wall-clock time including recovery
                                   backoff; fault flags inject deterministic
                                   faults (seeded, or from a plan file);
                                   --retries/--fallback enable collective-
                                   level recovery, with every decision
                                   reported (and traced); --epochs snapshots
                                   rank memory at provably quiescent cuts so
                                   --resume-policy epoch (default) restarts a
                                   failed attempt from the last complete
                                   epoch instead of from scratch;
                                   --blackbox-dir writes a post-mortem
                                   black-box dump (flight records, wait-for
                                   graph, stall diagnosis) there when the
                                   run fails — inspect it with msccl doctor
    doctor <dump.json> [--format human|json|chrome] [--out F]
                                   diagnose a black-box dump written by a
                                   failed run (--blackbox-dir): names the
                                   root-cause rank/tb/step, classifies the
                                   stall (deadlock cycle, orphaned wait,
                                   straggler, injected fault) and walks the
                                   wait chain; --format json re-emits the
                                   dump, chrome renders the flight recorder
                                   as a Chrome trace (requires --out)
    faults <file.xml> --seed N [--format text|json]
                                   print the deterministic fault plan that
                                   seed N generates for this program (feed
                                   it back via --fault-plan to reproduce);
                                   --format json emits the plan with per-
                                   fault classes for tooling
    scenario run <file.toml> [--parallel N] [--format text|json] [--out F]
                 [--blackbox-dir DIR]
                                   run a declarative robustness scenario:
                                   seeded traffic storms with faults,
                                   stragglers and SLO assertions (see
                                   docs/scenarios.md); exits non-zero when
                                   an SLO fails; --parallel selects the
                                   sharded sim backend (reports stay
                                   bit-identical); --out writes the report
                                   and prints a one-line summary;
                                   --blackbox-dir dumps a black box for
                                   every op that fails outright (runtime
                                   engine), with paths in the report
    scenario check <file.toml>     parse and validate a scenario without
                                   running it (machine, collectives, fault
                                   sites, SLO grammar)
    scenario list [dir]            summarize the scenarios in a directory
                                   (default: scenarios/)
    scenario drive <file.toml> --addr HOST:PORT [--connections N]
                   [--deadline-ms N] [--format text|json] [--out F]
                                   replay the scenario's seeded traffic
                                   program against a live `msccl serve`
                                   daemon: the same algorithm mix, sizes,
                                   tenants and input seeds the local
                                   engines would run, issued closed-loop
                                   over N keep-alive connections
                                   (default 4); 429/503 sheds are
                                   counted per tenant, not errors
    serve [--addr HOST:PORT] [--exec-workers N] [--http-workers N]
          [--queue-depth N] [--cache-capacity N]
          [--tenants name:rate:burst[:weight],...]
          [--default-rate R] [--default-burst B] [--deadline-ms N]
          [--retries N] [--no-verify] [--blackbox-dir DIR]
          [--topology NAME] [--max-ranks N]
                                   run the collective-as-a-service daemon
                                   (default addr 127.0.0.1:8080; port 0
                                   picks an ephemeral port): GET/POST
                                   /collective executes a collective
                                   (compile-or-hit IR cache), /healthz,
                                   /metrics (Prometheus), /stats (JSON),
                                   POST /shutdown drains; per-tenant
                                   token-bucket admission with weighted-
                                   fair dequeue sheds overload as
                                   structured 429/503 + Retry-After;
                                   SIGTERM/SIGINT stop admission, finish
                                   every in-flight request and exit 0
                                   (see docs/service.md)
    profile <file.xml> [--elems N] [--mode run|sim] [--machine M]
                       [--from-trace F.csv] [--format text|json|prom]
                       [--threshold X] [--out FILE] [--epochs off|auto|N]
                                   per-step performance attribution: compute
                                   vs send vs sync-wait vs FIFO-block per
                                   thread block, per-channel traffic, and a
                                   measured-vs-modeled column replaying the
                                   same IR through the simulator's cost
                                   model, flagging steps whose busy share
                                   diverges by more than --threshold
                                   (default 0.5). --mode run (default)
                                   measures a live execution; --mode sim
                                   attributes the virtual timeline only;
                                   --from-trace reads a recorded CSV trace
                                   instead of running. --format json emits
                                   the msccl-profile-v1 report, prom the
                                   Prometheus exposition of the counters
    tune <algorithm> --machine M [--sizes 4KB,1MB,...] [dimension opts]
                                   sweep (instances x protocol) and print
                                   the best configuration per buffer size
    help                           this text
";

/// Dispatches a parsed command line; returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing what went wrong, suitable for
/// printing to stderr.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" | "--help" => Ok(HELP.to_owned()),
        "list" => Ok(list()),
        "compile" => cmd_compile(args),
        "verify" => cmd_verify(args),
        "inspect" => cmd_inspect(args),
        "graph" => Ok(mscclang::dot::ir_dot(&load_ir(args)?)),
        "simulate" => cmd_simulate(args),
        "run" => cmd_run(args),
        "profile" => cmd_profile(args),
        "faults" => cmd_faults(args),
        "scenario" => cmd_scenario(args),
        "serve" => cmd_serve(args),
        "doctor" => cmd_doctor(args),
        "tune" => cmd_tune(args),
        other => Err(CliError::new(format!(
            "unknown command '{other}'; try 'msccl help'"
        ))),
    }
}

/// `(name, description, dimension hint)` for each buildable algorithm.
const ALGORITHMS: &[(&str, &str, &str)] = &[
    (
        "ring-allreduce",
        "Ring AllReduce (Fig. 3b), --channels distributes the ring",
        "--ranks",
    ),
    (
        "allpairs-allreduce",
        "All Pairs AllReduce for small buffers (§7.1.2)",
        "--ranks",
    ),
    (
        "hierarchical-allreduce",
        "hierarchical AllReduce (Fig. 3a)",
        "--nodes --gpus",
    ),
    (
        "two-step-alltoall",
        "Two-Step AllToAll with aggregated IB sends (Fig. 9)",
        "--nodes --gpus",
    ),
    (
        "one-step-alltoall",
        "naive point-to-point AllToAll",
        "--nodes --gpus",
    ),
    (
        "alltonext",
        "AllToNext custom collective (§7.4)",
        "--nodes --gpus",
    ),
    (
        "hcm-allgather",
        "3-step AllGather for the DGX-1 cube mesh (§7.5)",
        "(fixed 8 ranks)",
    ),
    (
        "recursive-doubling-allgather",
        "recursive doubling AllGather",
        "--ranks (power of 2)",
    ),
    (
        "tree-allreduce",
        "binary tree AllReduce",
        "--ranks [--chunks]",
    ),
    (
        "double-tree-allreduce",
        "NCCL-style double binary tree AllReduce",
        "--ranks [--chunks]",
    ),
    (
        "rabenseifner-allreduce",
        "recursive halving+doubling AllReduce",
        "--ranks (power of 2)",
    ),
    (
        "broadcast",
        "binomial tree Broadcast",
        "--ranks [--root R] [--chunks]",
    ),
    (
        "reduce",
        "binomial tree Reduce",
        "--ranks [--root R] [--chunks]",
    ),
    ("gather", "linear Gather", "--ranks [--root R] [--chunks]"),
    ("scatter", "linear Scatter", "--ranks [--root R] [--chunks]"),
];

fn list() -> String {
    let mut out = String::from("buildable algorithms:\n");
    for (name, desc, dims) in ALGORITHMS {
        let _ = writeln!(out, "  {name:<30} {desc}  [{dims}]");
    }
    out
}

/// Builds a program from the registry.
fn build_program(args: &Args) -> Result<Program, CliError> {
    let name = args.positional1("algorithm name (try 'msccl list')")?;
    let ranks: Option<usize> = args.opt("ranks")?;
    let nodes: usize = args.opt_or("nodes", 2)?;
    let gpus: usize = args.opt_or("gpus", 8)?;
    let need_ranks = || ranks.ok_or_else(|| CliError::new("--ranks is required"));
    let program = match name {
        "ring-allreduce" => {
            msccl_algos::ring_all_reduce(need_ranks()?, args.opt_or("channels", 1)?)?
        }
        "allpairs-allreduce" => msccl_algos::allpairs_all_reduce(need_ranks()?)?,
        "hierarchical-allreduce" => msccl_algos::hierarchical_all_reduce(nodes, gpus)?,
        "two-step-alltoall" => msccl_algos::two_step_all_to_all(nodes, gpus)?,
        "one-step-alltoall" => msccl_algos::one_step_all_to_all(nodes, gpus)?,
        "alltonext" => msccl_algos::all_to_next(nodes, gpus)?,
        "hcm-allgather" => msccl_algos::hcm_allgather()?,
        "recursive-doubling-allgather" => {
            msccl_algos::recursive_doubling_all_gather(need_ranks()?)?
        }
        "tree-allreduce" => {
            msccl_algos::binary_tree_all_reduce(need_ranks()?, args.opt_or("chunks", 1)?)?
        }
        "double-tree-allreduce" => {
            msccl_algos::double_binary_tree_all_reduce(need_ranks()?, args.opt_or("chunks", 2)?)?
        }
        "rabenseifner-allreduce" => msccl_algos::rabenseifner_all_reduce(need_ranks()?)?,
        "broadcast" => msccl_algos::binomial_broadcast(
            need_ranks()?,
            args.opt_or("chunks", 1)?,
            args.opt_or("root", 0)?,
        )?,
        "reduce" => msccl_algos::binomial_reduce(
            need_ranks()?,
            args.opt_or("chunks", 1)?,
            args.opt_or("root", 0)?,
        )?,
        "gather" => msccl_algos::linear_gather(
            need_ranks()?,
            args.opt_or("chunks", 1)?,
            args.opt_or("root", 0)?,
        )?,
        "scatter" => msccl_algos::linear_scatter(
            need_ranks()?,
            args.opt_or("chunks", 1)?,
            args.opt_or("root", 0)?,
        )?,
        other => {
            return Err(CliError::new(format!(
                "unknown algorithm '{other}'; try 'msccl list'"
            )))
        }
    };
    Ok(program)
}

fn cmd_compile(args: &Args) -> Result<String, CliError> {
    let mut program = build_program(args)?;
    if let Some(proto) = args.options.get("protocol") {
        let protocol = Protocol::parse(proto)
            .ok_or_else(|| CliError::new(format!("unknown protocol '{proto}'")))?;
        program.set_protocol(protocol);
    }
    program.validate()?;
    let opts = CompileOptions::default()
        .with_instances(args.opt_or("instances", 1)?)
        .with_fuse(!args.flag("no-fuse"))
        .with_aggregate(args.flag("aggregate"))
        .with_eliminate_dead(args.flag("dce"))
        .with_slots(args.opt_or("slots", 8)?);
    let ir = compile(&program, &opts)?;
    let xml = ir_xml::to_xml(&ir);
    match args.options.get("output") {
        Some(path) => {
            std::fs::write(path, &xml)?;
            Ok(format!(
                "wrote {path}: {} ranks, {} thread blocks, {} instructions (verified)\n",
                ir.num_ranks(),
                ir.num_threadblocks(),
                ir.num_instructions()
            ))
        }
        None => Ok(xml),
    }
}

/// Reads a user-named input file, producing an error that names both
/// the path and what it was supposed to be. The blanket
/// `From<io::Error>` conversion would render a bare "No such file or
/// directory" with no hint which of several path arguments was wrong.
fn read_input(path: &str, what: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {what} '{path}': {e}")))
}

fn load_ir(args: &Args) -> Result<IrProgram, CliError> {
    let path = args.positional1("MSCCL-IR XML file")?;
    let xml = read_input(path, "MSCCL-IR XML file")?;
    ir_xml::from_xml(&xml).map_err(|e| CliError::new(format!("{path}: {e}")))
}

fn cmd_verify(args: &Args) -> Result<String, CliError> {
    let ir = load_ir(args)?;
    let opts = verify::VerifyOptions {
        slots: args.opt_or("slots", 8)?,
        check_races: true,
    };
    let report = verify::check(&ir, &opts)?;
    Ok(format!(
        "{}: OK — {} instructions across {} thread blocks, deadlock-free at {} slot(s), \
         race-free, postcondition satisfied (peak queue depth {})\n",
        ir.name,
        report.instructions_executed,
        report.threadblocks,
        opts.slots,
        report.max_queue_depth
    ))
}

fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let ir = load_ir(args)?;
    let mut out = format!("{ir}");
    let _ = writeln!(
        out,
        "\nschedule: protocol hint {:?}, refinement x{}\n{}",
        ir.protocol,
        ir.refinement,
        mscclang::IrStats::compute(&ir)
    );
    Ok(out)
}

/// Extracts the `--trace` output path. The option parser records a bare
/// `--trace` as the value `"true"`; requiring an explicit path here keeps
/// the flag from silently writing a file named `true`.
fn trace_path(args: &Args) -> Result<Option<&str>, CliError> {
    match args.options.get("trace").map(String::as_str) {
        Some("true") => Err(CliError::new(
            "--trace requires a file path (e.g. --trace out.json)",
        )),
        other => Ok(other),
    }
}

/// Extracts the `--blackbox-dir` dump directory. Like [`trace_path`],
/// a bare flag (recorded as `"true"`) is rejected so it cannot silently
/// create a directory named `true`.
fn blackbox_dir(args: &Args) -> Result<Option<std::path::PathBuf>, CliError> {
    match args.options.get("blackbox-dir").map(String::as_str) {
        Some("true") => Err(CliError::new(
            "--blackbox-dir requires a directory path (e.g. --blackbox-dir dumps/)",
        )),
        other => Ok(other.map(std::path::PathBuf::from)),
    }
}

/// Writes `trace` to `path` — CSV when the extension is `.csv`, Chrome
/// trace JSON otherwise — and returns a one-line summary for the console.
fn write_trace(path: &str, trace: &Trace) -> Result<String, CliError> {
    let body = if path.ends_with(".csv") {
        trace.to_csv()
    } else {
        trace.to_chrome_json()
    };
    std::fs::write(path, body)
        .map_err(|e| CliError::new(format!("cannot write trace to {path}: {e}")))?;
    let s = trace.summary();
    Ok(format!(
        "trace: {} events over {:.1} us ({} clock) -> {path}; critical path {:.1} us\n",
        trace.len(),
        s.span_us,
        trace.domain().label(),
        s.critical_path_us
    ))
}

/// One-line summary of the always-on metric counters, printed identically
/// by `run` and `simulate` so their outputs share a stats schema: the
/// simulator reports virtual nanoseconds where the runtime reports wall
/// nanoseconds, and its pool counters are zero (it moves no data).
fn stats_line(snapshot: &MetricsSnapshot) -> String {
    let us = |name| snapshot.counter_total(name) as f64 / 1000.0;
    format!(
        "stats: instructions={} sends={} recvs={} bytes_sent={} bytes_received={} \
         sem_wait_us={:.1} fifo_block_us={:.1} pool_allocated={} pool_reused={}\n",
        snapshot.counter_total(names::INSTRUCTIONS),
        snapshot.counter_total(names::SENDS),
        snapshot.counter_total(names::RECVS),
        snapshot.counter_total(names::BYTES_SENT),
        snapshot.counter_total(names::BYTES_RECEIVED),
        us(names::SEM_WAIT_NS),
        us(names::FIFO_SEND_BLOCK_NS) + us(names::FIFO_RECV_BLOCK_NS),
        snapshot.counter_total(names::POOL_ALLOCATED),
        snapshot.counter_total(names::POOL_REUSED),
    )
}

/// The `profile` command: attribution of where time went, per thread
/// block, channel and instruction kind, with a measured-vs-modeled column
/// from replaying the same IR through the simulator's cost model.
fn cmd_profile(args: &Args) -> Result<String, CliError> {
    let ir = load_ir(args)?;
    let chunk_elems: usize = args.opt_or("elems", 256)?;
    if chunk_elems == 0 {
        return Err(CliError::new("--elems must be positive"));
    }
    let threshold: f64 = args.opt_or("threshold", 0.5)?;
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err(CliError::new("--threshold must be positive"));
    }
    let machine = parse_machine(args.options.get("machine").map_or("ndv4:1", String::as_str))?;
    // The runtime is pinned to one tile per chunk below, so the modeled
    // run sees the same per-chunk payload when the buffer holds exactly
    // in_chunks × chunk_elems f32 values.
    let buffer_bytes = (ir.collective.in_chunks() * chunk_elems * 4) as u64;
    let epochs = epoch_mode_opt(args)?;
    let cfg = SimConfig::new(machine).with_trace(true).with_epochs(epochs);
    let modeled = simulate(&ir, &cfg, buffer_bytes)?;
    let modeled_trace = modeled.trace.as_ref().expect("requested via with_trace");

    let mode = args.options.get("mode").map_or("run", String::as_str);
    let from_trace = args.options.get("from-trace");
    let (report, snapshot) = match (from_trace, mode) {
        (Some(path), _) => {
            // Offline: the same report from a recorded CSV trace.
            let measured = Trace::from_csv(&std::fs::read_to_string(path)?, ClockDomain::Wall)
                .map_err(|e| CliError::new(format!("{path}: {e}")))?;
            let snapshot = snapshot_from_trace(&measured);
            (
                ProfileReport::from_traces(&measured, Some(modeled_trace), threshold),
                snapshot,
            )
        }
        (None, "run") => {
            let inputs = reference::random_inputs(&ir, chunk_elems, 0xFEED);
            let opts = RunOptions {
                // One tile per chunk, so runtime and simulator execute
                // structurally identical schedules and the per-step
                // comparison is meaningful.
                tile_elems: Some(chunk_elems),
                epochs,
                ..RunOptions::default()
            };
            let (outputs, measured, snapshot) = execute_profiled(&ir, &inputs, chunk_elems, &opts)?;
            reference::check_outputs(
                &ir.collective,
                &inputs,
                &outputs,
                chunk_elems,
                mscclang::ReduceOp::Sum,
            )
            .map_err(CliError::new)?;
            (
                ProfileReport::from_traces(&measured, Some(modeled_trace), threshold),
                snapshot,
            )
        }
        (None, "sim") => (
            ProfileReport::from_traces(modeled_trace, None, threshold),
            modeled.metrics.clone(),
        ),
        (None, other) => {
            return Err(CliError::new(format!(
                "unknown --mode '{other}' (expected run or sim)"
            )))
        }
    };

    let format = args.options.get("format").map_or("text", String::as_str);
    let body = match format {
        "text" => report.render_text(),
        "json" => report.to_json(),
        "prom" => snapshot.to_prometheus(),
        other => {
            return Err(CliError::new(format!(
                "unknown --format '{other}' (expected text, json or prom)"
            )))
        }
    };
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &body)?;
            Ok(format!(
                "profile: {} thread blocks, {} channels, {} flagged step(s) -> {path}\n",
                report.thread_blocks.len(),
                report.channels.len(),
                report.flagged_steps
            ))
        }
        None => Ok(body),
    }
}

/// Parses `--epochs off|auto|N` into an [`EpochMode`]; `Off` when the
/// flag is absent.
fn epoch_mode_opt(args: &Args) -> Result<EpochMode, CliError> {
    match args.options.get("epochs") {
        None => Ok(EpochMode::Off),
        Some(v) => EpochMode::parse(v).ok_or_else(|| {
            CliError::new(format!(
                "invalid value '{v}' for --epochs (expected off, auto or a boundary count)"
            ))
        }),
    }
}

/// Parses `--resume-policy epoch|retry`; the default policy when absent.
fn resume_policy_opt(args: &Args) -> Result<ResumePolicy, CliError> {
    match args.options.get("resume-policy") {
        None => Ok(ResumePolicy::default()),
        Some(v) => ResumePolicy::parse(v).ok_or_else(|| {
            CliError::new(format!(
                "invalid value '{v}' for --resume-policy (expected epoch or retry)"
            ))
        }),
    }
}

/// Resolves `--fault-seed N` or `--fault-plan FILE` into a validated
/// [`FaultPlan`] for `ir`; `None` when neither flag was given.
fn load_fault_plan(args: &Args, ir: &IrProgram) -> Result<Option<FaultPlan>, CliError> {
    let seed: Option<u64> = args.opt("fault-seed")?;
    let file = args.options.get("fault-plan");
    let plan = match (seed, file) {
        (Some(_), Some(_)) => {
            return Err(CliError::new(
                "--fault-seed and --fault-plan are mutually exclusive",
            ))
        }
        (Some(seed), None) => FaultPlan::generate(seed, &FaultUniverse::from_ir(ir)),
        (None, Some(path)) => FaultPlan::parse(&read_input(path, "fault plan")?)
            .map_err(|e| CliError::new(format!("{path}: {e}")))?,
        (None, None) => return Ok(None),
    };
    plan.validate(ir)?;
    Ok(Some(plan))
}

fn cmd_faults(args: &Args) -> Result<String, CliError> {
    let ir = load_ir(args)?;
    let seed: u64 = args
        .opt("seed")?
        .ok_or_else(|| CliError::new("--seed is required"))?;
    let plan = FaultPlan::generate(seed, &FaultUniverse::from_ir(&ir));
    match args.options.get("format").map_or("text", String::as_str) {
        "text" => {
            let mut out = plan.to_text();
            if let Some(class) = plan.worst_class() {
                let _ = writeln!(out, "# worst class: {class:?}");
            }
            Ok(out)
        }
        "json" => Ok(plan.to_json()),
        other => Err(CliError::new(format!(
            "unknown --format '{other}' (expected text or json)"
        ))),
    }
}

/// The `scenario` command family: `run`, `check` and `list` over the
/// declarative robustness-scenario format (`msccl-scenario` crate).
fn cmd_scenario(args: &Args) -> Result<String, CliError> {
    let action = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::new("expected 'scenario run|check|list'"))?;
    match action {
        "run" | "check" => {
            let path = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::new(format!("scenario {action} needs a file")))?;
            let text = read_input(path, "scenario file")?;
            let scenario =
                Scenario::parse(&text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
            let mut cfg = ScenarioRunConfig {
                base_dir: std::path::Path::new(path).parent().map(Into::into),
                ..ScenarioRunConfig::default()
            };
            if args.options.contains_key("parallel") {
                let threads: usize = args.opt_or("parallel", 0)?;
                if threads == 0 {
                    return Err(CliError::new("--parallel must be a positive thread count"));
                }
                cfg.threads = Some(threads);
            }
            cfg.blackbox_dir = blackbox_dir(args)?;
            if action == "check" {
                check_scenario(&scenario, &cfg)
                    .map_err(|e| CliError::new(format!("{path}: {e}")))?;
                return Ok(format!(
                    "{path}: ok — {} over {} rep(s) of {} op(s) on {}, {} SLO assertion(s)\n",
                    scenario.name,
                    scenario.repetitions,
                    scenario.traffic.ops,
                    scenario.machine,
                    scenario.slo.len()
                ));
            }
            let report =
                run_scenario(&scenario, &cfg).map_err(|e| CliError::new(format!("{path}: {e}")))?;
            let body = match args.options.get("format").map_or("text", String::as_str) {
                "text" => report.to_text(),
                "json" => report.to_json(),
                other => {
                    return Err(CliError::new(format!(
                        "unknown --format '{other}' (expected text or json)"
                    )))
                }
            };
            let out = match args.options.get("out") {
                Some(file) => {
                    std::fs::write(file, &body)?;
                    format!(
                        "scenario {}: {} ({} op(s), p99 {:.1} us) -> {file}\n",
                        report.name,
                        if report.passed { "PASS" } else { "FAIL" },
                        report.ops,
                        report.p99_us
                    )
                }
                None => body,
            };
            if report.passed {
                Ok(out)
            } else {
                // SLO failures exit non-zero with the full report, so CI
                // gates directly on `msccl scenario run`.
                Err(CliError::new(out))
            }
        }
        "drive" => {
            let path = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::new("scenario drive needs a file"))?;
            let text = read_input(path, "scenario file")?;
            let scenario =
                Scenario::parse(&text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
            let addr = args
                .options
                .get("addr")
                .cloned()
                .ok_or_else(|| CliError::new("scenario drive needs --addr HOST:PORT"))?;
            let cfg = DriveConfig {
                addr,
                connections: args.opt_or("connections", DriveConfig::default().connections)?,
                deadline_ms: args.opt("deadline-ms")?,
            };
            let report = drive_scenario(&scenario, &cfg)
                .map_err(|e| CliError::new(format!("{path}: {e}")))?;
            let body = match args.options.get("format").map_or("text", String::as_str) {
                "text" => report.to_text(),
                "json" => report.to_json(),
                other => {
                    return Err(CliError::new(format!(
                        "unknown --format '{other}' (expected text or json)"
                    )))
                }
            };
            match args.options.get("out") {
                Some(file) => {
                    std::fs::write(file, &body)
                        .map_err(|e| CliError::new(format!("cannot write {file}: {e}")))?;
                    Ok(format!(
                        "drive {}: {} sent, {} ok, {} shed, {} failed -> {file}\n",
                        report.name, report.sent, report.ok, report.shed, report.failed
                    ))
                }
                None => Ok(body),
            }
        }
        "list" => {
            let dir = args.positional.get(1).map_or("scenarios", String::as_str);
            let mut entries: Vec<_> = std::fs::read_dir(dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "toml"))
                .collect();
            entries.sort();
            let mut out = String::new();
            for path in &entries {
                let text = std::fs::read_to_string(path)?;
                let line = match Scenario::parse(&text) {
                    Ok(sc) => format!(
                        "{:<28} {:<8} {} rep(s) x {} op(s) on {:<10} {}",
                        sc.name,
                        if matches!(sc.engine, ScenarioEngine::Sim) {
                            "sim"
                        } else {
                            "runtime"
                        },
                        sc.repetitions,
                        sc.traffic.ops,
                        sc.machine,
                        sc.description
                    ),
                    Err(e) => format!("{} INVALID: {e}", path.display()),
                };
                let _ = writeln!(out, "  {line}");
            }
            if out.is_empty() {
                out = format!("no scenarios found in {dir}/\n");
            }
            Ok(out)
        }
        other => Err(CliError::new(format!(
            "unknown scenario action '{other}' (expected run, check, list or drive)"
        ))),
    }
}

/// The `serve` command: runs the collective-as-a-service daemon until a
/// drain is requested (SIGTERM, SIGINT or `POST /shutdown`), then
/// finishes every in-flight request and returns the drain summary.
/// The readiness line goes to stdout immediately — scripts (and the CI
/// smoke job) wait for it before sending traffic.
fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let defaults = ServiceConfig::default();
    let mut tenants = Vec::new();
    if let Some(spec) = args.options.get("tenants") {
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            tenants.push(TenantSpec::parse(part).map_err(CliError::new)?);
        }
    }
    let cfg = ServiceConfig {
        addr: args
            .options
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_owned()),
        http_workers: args.opt_or("http-workers", defaults.http_workers)?,
        exec_workers: args.opt_or("exec-workers", defaults.exec_workers)?,
        queue_depth: args.opt_or("queue-depth", defaults.queue_depth)?,
        cache_capacity: args.opt_or("cache-capacity", defaults.cache_capacity)?,
        tenants,
        default_rate: args.opt_or("default-rate", defaults.default_rate)?,
        default_burst: args.opt_or("default-burst", defaults.default_burst)?,
        // `--deadline-ms 0` disables the default deadline entirely.
        default_deadline: match args.opt::<u64>("deadline-ms")? {
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => defaults.default_deadline,
        },
        max_retries: args.opt_or("retries", defaults.max_retries)?,
        verify: !args.flag("no-verify"),
        blackbox_dir: blackbox_dir(args)?,
        topology: args
            .options
            .get("topology")
            .cloned()
            .unwrap_or(defaults.topology),
        max_ranks: args.opt_or("max-ranks", defaults.max_ranks)?,
    };
    let handle =
        service_start(cfg).map_err(|e| CliError::new(format!("cannot start service: {e}")))?;
    let addr = handle.addr();
    println!(
        "msccl serve: listening on http://{addr} \
         (endpoints: /collective /healthz /metrics /stats /shutdown)"
    );
    let _ = std::io::Write::flush(&mut std::io::stdout());
    if service_signal::install_term_handler() {
        // Turn the signal flag into a drain request; exits once a
        // shutdown is requested from any source.
        let core = std::sync::Arc::clone(handle.core());
        std::thread::spawn(move || loop {
            if service_signal::term_requested() {
                core.request_shutdown();
                break;
            }
            if core.shutdown_requested() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    handle.core().wait_shutdown_requested();
    let stats = handle.shutdown();
    Ok(format!(
        "msccl serve: drained — {} admitted, {} served, {} shed, {} failed; \
         cache {} hit(s) / {} miss(es) ({:.1}% hit rate), {} eviction(s)\n",
        stats.admitted,
        stats.served,
        stats.shed,
        stats.failed,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.cache.evictions
    ))
}

/// The `doctor` command: post-mortem analysis of a black-box dump
/// written by a failed run (`--blackbox-dir`). The default output is the
/// human-readable diagnosis — failure origin, stall classification, wait
/// chain, root cause; `--format json` re-emits the (already parsed and
/// validated) dump; `--format chrome` renders the flight recorder's
/// per-worker event stream through the standard trace writer, so the
/// last moments before the failure open in any Chrome-trace viewer.
fn cmd_doctor(args: &Args) -> Result<String, CliError> {
    let path = args.positional1("black-box dump (blackbox-*.json)")?;
    let text = read_input(path, "black-box dump")?;
    let bb = Blackbox::from_json(&text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    let body = match args.options.get("format").map_or("human", String::as_str) {
        "human" => bb.render_human(),
        "json" => bb.to_json(),
        "chrome" => {
            // The trace writer produces the file itself; `--out` names it.
            let out = args.options.get("out").ok_or_else(|| {
                CliError::new("--format chrome requires --out FILE (Chrome trace JSON)")
            })?;
            return write_trace(out, &bb.to_trace());
        }
        other => {
            return Err(CliError::new(format!(
                "unknown --format '{other}' (expected human, json or chrome)"
            )))
        }
    };
    match args.options.get("out") {
        Some(file) => {
            std::fs::write(file, &body)?;
            Ok(format!(
                "doctor: {} — {} at rank {} tb {} step {} -> {file}\n",
                bb.program, bb.failure.cause, bb.failure.rank, bb.failure.tb, bb.failure.step
            ))
        }
        None => Ok(body),
    }
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let ir = load_ir(args)?;
    let machine = parse_machine(
        args.options
            .get("machine")
            .ok_or_else(|| CliError::new("--machine is required (e.g. ndv4:2)"))?,
    )?;
    let bytes = parse_size(
        args.options
            .get("size")
            .ok_or_else(|| CliError::new("--size is required"))?,
    )?;
    let mut cfg = SimConfig::new(machine).with_epochs(epoch_mode_opt(args)?);
    if let Some(p) = args.options.get("protocol") {
        cfg = cfg.with_protocol(
            Protocol::parse(p).ok_or_else(|| CliError::new(format!("unknown protocol '{p}'")))?,
        );
    }
    if args.options.contains_key("timeline") {
        cfg = cfg.with_timeline(true);
    }
    let trace_out = trace_path(args)?;
    if trace_out.is_some() {
        cfg = cfg.with_trace(true);
    }
    if let Some(plan) = load_fault_plan(args, &ir)? {
        cfg = cfg.with_faults(plan);
    }
    if args.options.contains_key("parallel") {
        let threads: usize = args.opt_or("parallel", 0)?;
        if threads == 0 {
            return Err(CliError::new("--parallel must be a positive thread count"));
        }
        cfg = cfg.with_parallel(threads);
    }
    let r = simulate(&ir, &cfg, bytes)?;
    let mut extra = String::new();
    if let Some(path) = trace_out {
        let trace = r.trace.as_ref().expect("requested via with_trace");
        extra = write_trace(path, trace)?;
    }
    if let Some(path) = args.options.get("timeline") {
        let mut csv = String::from("rank,tb,start_us,end_us,activity\n");
        for e in &r.timeline {
            let _ = writeln!(
                csv,
                "{},{},{:.3},{:.3},{:?}",
                e.rank, e.tb, e.start_us, e.end_us, e.activity
            );
        }
        std::fs::write(path, csv)?;
    }
    let ntbs = ir.num_threadblocks().max(1) as f64;
    let epochs = if r.epoch_boundaries > 0 {
        format!(
            ", {} epoch snapshot(s) +{:.1} us",
            r.epoch_boundaries, r.epoch_us
        )
    } else {
        String::new()
    };
    Ok(format!(
        "{}: {:.1} us at {} bytes ({} protocol, {} tiles, {} transfers, utilization {:.0}%{epochs})\n{}{extra}",
        ir.name,
        r.total_us,
        bytes,
        r.protocol,
        r.tiles,
        r.flows,
        100.0 * r.busy_us / (r.total_us * ntbs),
        stats_line(&r.metrics)
    ))
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let ir = load_ir(args)?;
    let chunk_elems: usize = args.opt_or("elems", 256)?;
    if chunk_elems == 0 {
        return Err(CliError::new("--elems must be positive"));
    }
    let inputs = reference::random_inputs(&ir, chunk_elems, 0xFEED);
    let mut opts = RunOptions::default();
    if let Some(ms) = args.opt::<u64>("deadline-ms")? {
        opts.deadline = Some(Duration::from_millis(ms));
    }
    // 0 = auto: min(available cores, thread blocks). Any value is safe —
    // results are bit-exact at every pool size — so no validation beyond
    // the parse.
    opts.worker_threads = args.opt_or("threads", 0)?;
    opts.epochs = epoch_mode_opt(args)?;
    opts.blackbox_dir = blackbox_dir(args)?;
    let plan = load_fault_plan(args, &ir)?;
    let retries: Option<usize> = args.opt("retries")?;
    let fallback = args
        .options
        .get("fallback")
        .map(|path| -> Result<IrProgram, CliError> {
            Ok(ir_xml::from_xml(&std::fs::read_to_string(path)?)?)
        })
        .transpose()?;
    if plan.is_some() || retries.is_some() || fallback.is_some() {
        return run_with_recovery(
            args,
            &ir,
            &inputs,
            chunk_elems,
            &opts,
            plan,
            retries,
            fallback,
        );
    }
    let mut extra = String::new();
    let (outputs, snapshot) = match trace_path(args)? {
        Some(path) => {
            let (outputs, trace, snapshot) = execute_profiled(&ir, &inputs, chunk_elems, &opts)?;
            extra = write_trace(path, &trace)?;
            (outputs, snapshot)
        }
        None => execute_with_metrics(&ir, &inputs, chunk_elems, &opts)?,
    };
    reference::check_outputs(
        &ir.collective,
        &inputs,
        &outputs,
        chunk_elems,
        mscclang::ReduceOp::Sum,
    )
    .map_err(CliError::new)?;
    // Mirror the executor's pool sizing so the report states what ran.
    let workers = if opts.worker_threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        opts.worker_threads
    }
    .clamp(1, ir.num_threadblocks().max(1));
    Ok(format!(
        "{}: executed {} thread blocks on {} worker threads, {} elements/rank — results match the golden collective\n{}{extra}",
        ir.name,
        ir.num_threadblocks(),
        workers,
        ir.collective.in_chunks() * chunk_elems,
        stats_line(&snapshot)
    ))
}

/// The `run` path with faults, retries or a fallback algorithm: executes
/// through the runtime's collective-level recovery loop and reports every
/// decision it made. `--trace` here writes the recovery decision trace.
#[allow(clippy::too_many_arguments)]
fn run_with_recovery(
    args: &Args,
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    plan: Option<FaultPlan>,
    retries: Option<usize>,
    fallback: Option<IrProgram>,
) -> Result<String, CliError> {
    let policy = RecoveryPolicy {
        max_retries: retries.unwrap_or(RecoveryPolicy::default().max_retries),
        resume: resume_policy_opt(args)?,
        ..RecoveryPolicy::default()
    };
    let injector = plan.as_ref().map(FaultInjector::new);
    let report = execute_with_recovery(
        ir,
        fallback.as_ref(),
        inputs,
        chunk_elems,
        opts,
        &policy,
        injector.as_ref(),
    )?;
    let mut out = String::new();
    if let Some(plan) = &plan {
        let _ = writeln!(out, "fault plan (reproduce with --fault-plan):");
        for line in plan.to_text().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(
        out,
        "{}: verified after {} attempt(s){}",
        ir.name,
        report.attempts,
        if report.used_fallback {
            " (fell back)"
        } else {
            ""
        }
    );
    for step in &report.steps {
        let _ = writeln!(
            out,
            "  attempt {}: {} — {}",
            step.attempt,
            step.decision.label(),
            step.detail
        );
    }
    if report.epochs_completed > 0 || report.steps_resumed > 0 || report.steps_redone > 0 {
        let _ = writeln!(
            out,
            "  epochs: {} completed, {} step(s) resumed, {} step(s) redone",
            report.epochs_completed, report.steps_resumed, report.steps_redone
        );
    }
    if let Some(path) = trace_path(args)? {
        out.push_str(&write_trace(path, &report.decision_trace())?);
    }
    Ok(out)
}

fn cmd_tune(args: &Args) -> Result<String, CliError> {
    use msccl_sim::simulate as sim;
    let machine = parse_machine(
        args.options
            .get("machine")
            .ok_or_else(|| CliError::new("--machine is required (e.g. ndv4:1)"))?,
    )?;
    let program = build_program(args)?;
    program.validate()?;
    let sizes: Vec<u64> = match args.options.get("sizes") {
        Some(list) => list.split(',').map(parse_size).collect::<Result<_, _>>()?,
        None => vec![4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20],
    };
    // Grid: instance counts within the channel budget x protocols.
    let max_directive = program
        .ops()
        .iter()
        .filter_map(|o| o.channel)
        .max()
        .unwrap_or(0);
    let max_fragment = program
        .ops()
        .iter()
        .map(|o| o.fragment_factor)
        .max()
        .unwrap_or(1);
    let stride = max_directive + 1;
    let mut irs = Vec::new();
    for instances in [1usize, 2, 4, 8, 16, 24] {
        // Highest channel an instance can claim must stay under 32.
        if max_directive + (instances * max_fragment - 1) * stride >= 32 {
            continue;
        }
        let compiled = compile(
            &program,
            &CompileOptions::default()
                .with_verify(false)
                .with_instances(instances)
                .with_max_tbs_per_rank(machine.num_sms()),
        );
        if let Ok(ir) = compiled {
            irs.push((instances, ir));
        }
    }
    if irs.is_empty() {
        return Err(CliError::new("no instance count fits this machine"));
    }
    let mut out = format!(
        "tuning {} on {} over {} configurations
{:>10} | {:>22} | {:>12}
",
        program.name(),
        machine.name(),
        irs.len() * Protocol::ALL.len(),
        "size",
        "best configuration",
        "time"
    );
    for &bytes in &sizes {
        let mut best: Option<(String, f64)> = None;
        for (instances, ir) in &irs {
            for protocol in Protocol::ALL {
                let cfg = SimConfig::new(machine.clone()).with_protocol(protocol);
                let t = sim(ir, &cfg, bytes)?.total_us;
                if best.as_ref().is_none_or(|(_, b)| t < *b) {
                    best = Some((format!("r={instances} {protocol}"), t));
                }
            }
        }
        let (label, t) = best.expect("non-empty grid");
        let _ = writeln!(
            out,
            "{:>10} | {:>22} | {:>10.1}us",
            crate::machine_spec::format_size(bytes),
            label,
            t
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn run(line: &str) -> Result<String, CliError> {
        dispatch(&parse_args(line.split_whitespace().map(String::from)).unwrap())
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("msccl-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn list_names_all_algorithms() {
        let out = run("list").unwrap();
        for (name, _, _) in ALGORITHMS {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn help_is_returned() {
        assert!(run("help").unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run("frobnicate").is_err());
    }

    #[test]
    fn missing_ir_file_error_names_the_path() {
        let err = run("verify /no/such/dir/missing.xml")
            .unwrap_err()
            .to_string();
        assert!(err.contains("/no/such/dir/missing.xml"), "error: {err}");
        assert!(err.contains("MSCCL-IR XML file"), "error: {err}");
    }

    #[test]
    fn missing_scenario_file_error_names_the_path() {
        let err = run("scenario run /no/such/storm.toml")
            .unwrap_err()
            .to_string();
        assert!(err.contains("/no/such/storm.toml"), "error: {err}");
        assert!(err.contains("scenario file"), "error: {err}");
        // The drive action shares the hardened read path.
        let err = run("scenario drive /no/such/storm.toml --addr 127.0.0.1:1")
            .unwrap_err()
            .to_string();
        assert!(err.contains("/no/such/storm.toml"), "error: {err}");
    }

    #[test]
    fn missing_fault_plan_error_names_the_path() {
        let path = tmp("plan-target.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let err = run(&format!("run {path} --fault-plan /no/such/faults.plan"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("/no/such/faults.plan"), "error: {err}");
        assert!(err.contains("fault plan"), "error: {err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn serve_rejects_malformed_tenant_specs_before_binding() {
        let err = run("serve --tenants alpha:fast:10")
            .unwrap_err()
            .to_string();
        assert!(err.contains("alpha"), "error: {err}");
        assert!(err.contains("rate"), "error: {err}");
    }

    #[test]
    fn drive_requires_an_address() {
        let path = tmp("drive-needs-addr.toml");
        std::fs::write(
            &path,
            "[scenario]\nname = \"t\"\nmachine = \"custom:1x4\"\n\n\
             [traffic]\ncollectives = [\"ring-allreduce\"]\nsizes = [4096]\nops = 1\n",
        )
        .unwrap();
        let err = run(&format!("scenario drive {path}"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--addr"), "error: {err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn compile_emits_xml_on_stdout() {
        let out = run("compile ring-allreduce --ranks 4").unwrap();
        assert!(out.starts_with("<algo"));
        assert!(out.contains("coll=\"allreduce\""));
    }

    #[test]
    fn full_pipeline_through_a_file() {
        let path = tmp("ring.xml");
        let out = run(&format!(
            "compile ring-allreduce --ranks 4 --instances 2 -o {path}"
        ))
        .unwrap();
        assert!(out.contains("wrote"));

        let v = run(&format!("verify {path}")).unwrap();
        assert!(v.contains("OK"));

        let i = run(&format!("inspect {path}")).unwrap();
        assert!(i.contains("schedule:"));
        assert!(i.contains("critical path:"));

        let s = run(&format!(
            "simulate {path} --machine ndv4:1 --size 4MB --protocol LL128"
        ))
        .unwrap();
        assert!(s.contains("us at"));

        let r = run(&format!("run {path} --elems 32")).unwrap();
        assert!(r.contains("match the golden collective"));

        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn compile_requires_dimensions() {
        let err = run("compile ring-allreduce").unwrap_err();
        assert!(err.to_string().contains("--ranks"));
    }

    #[test]
    fn compile_rejects_unknown_algorithm() {
        let err = run("compile warp-drive --ranks 4").unwrap_err();
        assert!(err.to_string().contains("warp-drive"));
    }

    #[test]
    fn simulate_requires_machine_and_size() {
        let path = tmp("req.xml");
        let _ = run(&format!("compile allpairs-allreduce --ranks 4 -o {path}")).unwrap();
        assert!(run(&format!("simulate {path}"))
            .unwrap_err()
            .to_string()
            .contains("--machine"));
        assert!(run(&format!("simulate {path} --machine dgx1"))
            .unwrap_err()
            .to_string()
            .contains("--size"));
        let _ = std::fs::remove_file(path);
    }

    /// `--parallel N` selects the sharded engine, whose output is
    /// bit-identical to the serial default — the printed report included.
    #[test]
    fn simulate_parallel_matches_serial_output() {
        let path = tmp("par.xml");
        let _ = run(&format!(
            "compile hierarchical-allreduce --nodes 2 --gpus 2 -o {path}"
        ))
        .unwrap();
        let serial = run(&format!("simulate {path} --machine ndv4:2 --size 4MB")).unwrap();
        for threads in [1, 4] {
            let par = run(&format!(
                "simulate {path} --machine ndv4:2 --size 4MB --parallel {threads}"
            ))
            .unwrap();
            assert_eq!(serial, par, "--parallel {threads} changed the report");
        }
        let err = run(&format!(
            "simulate {path} --machine ndv4:2 --size 4MB --parallel 0"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--parallel"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tune_sweeps_configurations() {
        let out = run("tune ring-allreduce --ranks 8 --channels 2 --machine ndv4:1                        --sizes 8KB,4MB")
            .unwrap();
        assert!(out.contains("best configuration"));
        assert!(out.contains("8KB"));
        assert!(out.contains("4MB"));
        assert!(out.contains("r="));
    }

    #[test]
    fn simulate_writes_timeline_csv() {
        let path = tmp("tl.xml");
        let csv = tmp("tl.csv");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let _ = run(&format!(
            "simulate {path} --machine ndv4:1 --size 1MB --timeline {csv}"
        ))
        .unwrap();
        let data = std::fs::read_to_string(&csv).unwrap();
        assert!(data.starts_with("rank,tb,start_us,end_us,activity"));
        assert!(data.lines().count() > 4);
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(csv);
    }

    #[test]
    fn run_and_simulate_write_chrome_traces() {
        let path = tmp("trace.xml");
        let run_json = tmp("run-trace.json");
        let sim_json = tmp("sim-trace.json");
        let sim_csv = tmp("sim-trace.csv");
        let _ = run(&format!(
            "compile ring-allreduce --ranks 8 --channels 2 -o {path}"
        ))
        .unwrap();

        let out = run(&format!("run {path} --elems 32 --trace {run_json}")).unwrap();
        assert!(out.contains("trace:"), "missing trace summary in {out}");
        assert!(out.contains("wall clock"));
        let data = std::fs::read_to_string(&run_json).unwrap();
        assert!(data.contains("\"traceEvents\""));
        assert!(data.contains("\"instr_begin\"") || data.contains("\"ph\":\"X\""));

        let out = run(&format!(
            "simulate {path} --machine ndv4:1 --size 1MB --trace {sim_json}"
        ))
        .unwrap();
        assert!(
            out.contains("virtual clock"),
            "missing clock label in {out}"
        );
        let data = std::fs::read_to_string(&sim_json).unwrap();
        assert!(data.contains("\"traceEvents\""));

        // A .csv extension selects the CSV exporter.
        let _ = run(&format!(
            "simulate {path} --machine ndv4:1 --size 1MB --trace {sim_csv}"
        ))
        .unwrap();
        let data = std::fs::read_to_string(&sim_csv).unwrap();
        assert!(data.starts_with("ts_us,rank,tb,kind"));

        for f in [path, run_json, sim_json, sim_csv] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn profile_reports_attribution_and_divergence() {
        let path = tmp("profile.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let out = run(&format!("profile {path} --elems 32")).unwrap();
        assert!(out.contains("per thread block:"), "got: {out}");
        assert!(out.contains("per channel:"), "got: {out}");
        assert!(out.contains("per instruction kind:"), "got: {out}");
        assert!(out.contains("measured vs modeled"), "got: {out}");
        assert!(out.contains("domain=wall"), "got: {out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn profile_sim_mode_and_formats() {
        let path = tmp("profile-sim.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let json = run(&format!(
            "profile {path} --elems 32 --mode sim --format json"
        ))
        .unwrap();
        assert!(json.contains("\"schema\": \"msccl-profile-v1\""));
        assert!(json.contains("\"domain\": \"virtual\""));
        let prom = run(&format!(
            "profile {path} --elems 32 --mode sim --format prom"
        ))
        .unwrap();
        assert!(prom.contains("# TYPE msccl_bytes_sent_total counter"));
        assert!(run(&format!("profile {path} --format yaml"))
            .unwrap_err()
            .to_string()
            .contains("--format"));
        assert!(run(&format!("profile {path} --mode dream"))
            .unwrap_err()
            .to_string()
            .contains("--mode"));
        let _ = std::fs::remove_file(path);
    }

    /// The same report, offline, from a CSV trace `run --trace` recorded.
    #[test]
    fn profile_from_recorded_trace() {
        let path = tmp("profile-offline.xml");
        let csv = tmp("profile-offline.csv");
        let out_file = tmp("profile-offline.json");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let _ = run(&format!("run {path} --elems 32 --trace {csv}")).unwrap();
        let out = run(&format!(
            "profile {path} --elems 32 --from-trace {csv} --format json --out {out_file}"
        ))
        .unwrap();
        assert!(out.contains("profile:"), "got: {out}");
        let data = std::fs::read_to_string(&out_file).unwrap();
        assert!(data.contains("\"schema\": \"msccl-profile-v1\""));
        assert!(data.contains("\"domain\": \"wall\""));
        assert!(data.contains("\"modeled_domain\": \"virtual\""));
        for f in [path, csv, out_file] {
            let _ = std::fs::remove_file(f);
        }
    }

    /// `run` and `simulate` print the same always-on stats schema
    /// (the simulator's pool counters are zero — it moves no data).
    #[test]
    fn run_and_simulate_share_a_stats_schema() {
        let path = tmp("stats.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let r = run(&format!("run {path} --elems 16")).unwrap();
        let s = run(&format!("simulate {path} --machine ndv4:1 --size 1MB")).unwrap();
        let keys_of = |out: &str| -> Vec<String> {
            let line = out
                .lines()
                .find(|l| l.starts_with("stats:"))
                .unwrap_or_else(|| panic!("no stats line in: {out}"))
                .to_owned();
            line.split_whitespace()
                .skip(1)
                .map(|kv| kv.split('=').next().unwrap().to_owned())
                .collect()
        };
        assert_eq!(keys_of(&r), keys_of(&s), "stats schemas differ");
        assert!(r.contains("pool_allocated="), "got: {r}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn faults_command_is_deterministic_and_reproducible() {
        let path = tmp("faults.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let a = run(&format!("faults {path} --seed 7")).unwrap();
        let b = run(&format!("faults {path} --seed 7")).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("seed 7"), "plan should record its seed: {a}");
        assert!(run(&format!("faults {path}"))
            .unwrap_err()
            .to_string()
            .contains("--seed"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn conflicting_fault_flags_are_rejected() {
        let path = tmp("conflict.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let err = run(&format!(
            "run {path} --fault-seed 1 --fault-plan nowhere.txt"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_recovers_from_a_transient_kill_via_retry() {
        let path = tmp("recover.xml");
        let plan_file = tmp("recover.plan");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        std::fs::write(&plan_file, "kill block r0 tb0 step0\n").unwrap();
        let out = run(&format!(
            "run {path} --elems 16 --fault-plan {plan_file} --retries 2"
        ))
        .unwrap();
        assert!(out.contains("verified after 2 attempt(s)"), "got: {out}");
        assert!(out.contains("retry"), "got: {out}");
        assert!(out.contains("kill block r0 tb0 step0"), "got: {out}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(plan_file);
    }

    /// The whole forensics loop: a failed run with `--blackbox-dir`
    /// writes a dump, the error points at it, and `msccl doctor` names
    /// the injected fault site as the root cause in every format.
    #[test]
    fn doctor_diagnoses_a_blackbox_dump_end_to_end() {
        let path = tmp("doctor.xml");
        let plan_file = tmp("doctor.plan");
        let dir = tmp("doctor-dumps");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        std::fs::write(&plan_file, "kill block r1 tb0 step0\n").unwrap();
        // Zero retries make the one-shot kill terminal, so the run fails
        // and its error message carries the dump path.
        let err = run(&format!(
            "run {path} --elems 16 --fault-plan {plan_file} --retries 0 --blackbox-dir {dir}"
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("black box: "), "no dump pointer in: {err}");
        assert!(err.contains("msccl doctor"), "no doctor hint in: {err}");
        let dump = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("blackbox-"))
            })
            .expect("a blackbox-*.json dump in the dir");
        let dump = dump.display();

        let human = run(&format!("doctor {dump}")).unwrap();
        assert!(human.contains("injected_kill"), "got: {human}");
        assert!(human.contains("diagnosis: self_fault"), "got: {human}");
        assert!(human.contains("root cause: rank 1 tb 0"), "got: {human}");
        assert!(
            human.contains("kill block r1 tb0 step0"),
            "fault plan line missing: {human}"
        );

        let json = run(&format!("doctor {dump} --format json")).unwrap();
        assert!(
            json.contains("\"version\": \"msccl-blackbox-v1\""),
            "{json}"
        );

        let chrome = tmp("doctor-trace.json");
        assert!(run(&format!("doctor {dump} --format chrome"))
            .unwrap_err()
            .to_string()
            .contains("--out"));
        let out = run(&format!("doctor {dump} --format chrome --out {chrome}")).unwrap();
        assert!(out.contains("trace:"), "got: {out}");
        let data = std::fs::read_to_string(&chrome).unwrap();
        assert!(data.contains("\"traceEvents\""));

        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(plan_file);
        let _ = std::fs::remove_file(chrome);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn doctor_rejects_garbage_and_bare_blackbox_dir() {
        let garbage = tmp("doctor-garbage.json");
        std::fs::write(&garbage, "not a dump").unwrap();
        let err = run(&format!("doctor {garbage}")).unwrap_err();
        assert!(err.to_string().contains(&garbage), "got: {err}");
        let _ = std::fs::remove_file(&garbage);

        let path = tmp("doctor-bare.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let err = run(&format!("run {path} --elems 16 --blackbox-dir")).unwrap_err();
        assert!(err.to_string().contains("--blackbox-dir requires"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn seeded_run_prints_its_plan_and_recovery_trace() {
        let path = tmp("seeded.xml");
        let trace = tmp("seeded-trace.csv");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let out = run(&format!(
            "run {path} --elems 16 --fault-seed 3 --retries 3 --trace {trace}"
        ))
        .unwrap();
        assert!(out.contains("fault plan (reproduce with --fault-plan)"));
        assert!(out.contains("seed 3"));
        let data = std::fs::read_to_string(&trace).unwrap();
        assert!(data.contains("recovery"), "decision trace missing: {data}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(trace);
    }

    /// `--epochs` is accepted by run, simulate and profile; a forced
    /// count charges the simulator's snapshot model and leaves a clean
    /// runtime execution bit-exact (the numerics check still passes).
    #[test]
    fn epoch_flags_reach_run_simulate_and_profile() {
        let path = tmp("epochs.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let r = run(&format!("run {path} --elems 16 --epochs 2")).unwrap();
        assert!(r.contains("results match"), "got: {r}");
        // 1 MB fits in one tile so there is no interior frontier to cut
        // at; 16 MB tiles into 8 and the forced schedule places both.
        let s = run(&format!(
            "simulate {path} --machine ndv4:1 --size 16MB --epochs 2"
        ))
        .unwrap();
        assert!(s.contains("2 epoch snapshot(s)"), "got: {s}");
        let off = run(&format!("simulate {path} --machine ndv4:1 --size 16MB")).unwrap();
        assert!(!off.contains("epoch snapshot"), "got: {off}");
        let p = run(&format!("profile {path} --elems 32 --epochs auto")).unwrap();
        assert!(p.contains("thread block"), "got: {p}");
        for cmd in [
            format!("run {path} --elems 16 --epochs banana"),
            format!("simulate {path} --machine ndv4:1 --size 1MB --epochs banana"),
        ] {
            let err = run(&cmd).unwrap_err();
            assert!(err.to_string().contains("--epochs"), "got: {err}");
        }
        let _ = std::fs::remove_file(path);
    }

    /// `--resume-policy` reaches the recovery loop; invalid values are
    /// rejected with a pointer at the flag.
    #[test]
    fn resume_policy_flag_is_parsed_and_validated() {
        let path = tmp("resume-policy.xml");
        let plan_file = tmp("resume-policy.plan");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        std::fs::write(&plan_file, "kill block r0 tb0 step0\n").unwrap();
        let out = run(&format!(
            "run {path} --elems 16 --fault-plan {plan_file} --retries 2 --resume-policy retry"
        ))
        .unwrap();
        assert!(out.contains("verified after 2 attempt(s)"), "got: {out}");
        let err = run(&format!(
            "run {path} --elems 16 --retries 1 --resume-policy sometimes"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--resume-policy"), "got: {err}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(plan_file);
    }

    #[test]
    fn simulate_surfaces_injected_faults() {
        let path = tmp("simfault.xml");
        let plan_file = tmp("simfault.plan");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        std::fs::write(&plan_file, "kill block r0 tb0 step0\n").unwrap();
        let err = run(&format!(
            "simulate {path} --machine ndv4:1 --size 1MB --fault-plan {plan_file}"
        ))
        .unwrap_err();
        assert!(
            err.to_string().contains("injected fault killed"),
            "got: {err}"
        );
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(plan_file);
    }

    #[test]
    fn graph_emits_dot() {
        let path = tmp("dot.xml");
        let _ = run(&format!("compile tree-allreduce --ranks 4 -o {path}")).unwrap();
        let dot = run(&format!("graph {path}")).unwrap();
        assert!(dot.starts_with("digraph msccl_ir"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn protocol_hint_lands_in_xml() {
        let out = run("compile tree-allreduce --ranks 4 --protocol LL").unwrap();
        assert!(out.contains("proto=\"LL\""));
    }

    #[test]
    fn no_fuse_produces_more_instructions() {
        let fused = run("compile ring-allreduce --ranks 4").unwrap();
        let unfused = run("compile ring-allreduce --ranks 4 --no-fuse").unwrap();
        let count = |s: &str| s.matches("<step").count();
        assert!(count(&unfused) > count(&fused));
    }

    #[test]
    fn faults_format_json_emits_plan_json() {
        let path = tmp("faultsjson.xml");
        let _ = run(&format!("compile ring-allreduce --ranks 4 -o {path}")).unwrap();
        let out = run(&format!("faults {path} --seed 7 --format json")).unwrap();
        assert!(out.trim_start().starts_with('{'), "got: {out}");
        assert!(out.contains("\"seed\": 7"), "got: {out}");
        assert!(out.contains("\"specs\""), "got: {out}");
        let err = run(&format!("faults {path} --seed 7 --format yaml")).unwrap_err();
        assert!(err.to_string().contains("--format"), "got: {err}");
        let _ = std::fs::remove_file(path);
    }

    fn scenario_file(name: &str, body: &str) -> String {
        let path = tmp(name);
        std::fs::write(&path, body).unwrap();
        path
    }

    const SMOKE_SCENARIO: &str = "\
[scenario]
name = \"cli-smoke\"
seed = 3
repetitions = 2
machine = \"ndv4:1\"

[traffic]
collectives = [\"allpairs-allreduce\"]
sizes = [\"16KB\"]
ops = 3

[slo]
assert = [\"failures == 0\", \"verified == true\"]
";

    #[test]
    fn scenario_check_and_run_smoke() {
        let path = scenario_file("smoke.toml", SMOKE_SCENARIO);
        let checked = run(&format!("scenario check {path}")).unwrap();
        assert!(checked.contains("ok — cli-smoke"), "got: {checked}");
        let out = run(&format!("scenario run {path}")).unwrap();
        assert!(out.contains("verdict     PASS"), "got: {out}");
        // Same seed, twice: byte-identical JSON, serial and parallel.
        let a = run(&format!("scenario run {path} --format json")).unwrap();
        let b = run(&format!("scenario run {path} --format json --parallel 2")).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scenario_run_fails_on_blown_slo() {
        let body = SMOKE_SCENARIO.replace("\"failures == 0\"", "\"p99_us <= 0.001\"");
        let path = scenario_file("blown.toml", &body);
        let err = run(&format!("scenario run {path}")).unwrap_err();
        assert!(err.to_string().contains("verdict     FAIL"), "got: {err}");
        assert!(err.to_string().contains("slo FAIL"), "got: {err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scenario_check_rejects_invalid_files() {
        let body = SMOKE_SCENARIO.replace("allpairs-allreduce", "no-such-collective");
        let path = scenario_file("badalgo.toml", &body);
        let err = run(&format!("scenario check {path}")).unwrap_err();
        assert!(err.to_string().contains("no-such-collective"), "got: {err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scenario_list_summarises_a_directory() {
        let dir = tmp("scenario-dir");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            std::path::Path::new(&dir).join("smoke.toml"),
            SMOKE_SCENARIO,
        )
        .unwrap();
        std::fs::write(std::path::Path::new(&dir).join("broken.toml"), "[scenario").unwrap();
        let out = run(&format!("scenario list {dir}")).unwrap();
        assert!(out.contains("cli-smoke"), "got: {out}");
        assert!(out.contains("INVALID"), "got: {out}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
