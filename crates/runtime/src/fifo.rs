//! Bounded FIFO connections with blocking instrumentation.
//!
//! Each `(src, dst, channel)` connection is a queue with the protocol's
//! FIFO slot count (§6.1): a send blocks when every slot is full, a
//! receive blocks when the queue is empty. Unlike an off-the-shelf
//! channel, these report *whether* a call blocked and invoke a callback at
//! the moment blocking starts, which is what lets the tracer timestamp
//! `SendBlock`/`RecvBlock` at the start of the stall rather than after it.
//!
//! The scheduler's hot path uses the non-blocking half — [`try_send`]
//! deposits under the queue lock (so a `Send` trace timestamp taken in
//! its callback provably precedes the matching `Recv`), and
//! [`try_recv_into`] drains every available tile in one lock acquisition,
//! amortizing synchronization across a burst. A task that finds the queue
//! full/empty parks in the scheduler's wait table; the peer's next
//! `try_*` call wakes it. The blocking [`send`]/[`recv`] remain for
//! direct users and tests; their condvar waits run to the full deadline,
//! interrupted by cancellation through the token's [`Poke`] waker rather
//! than by slicing the sleep.
//!
//! [`try_send`]: Fifo::try_send
//! [`try_recv_into`]: Fifo::try_recv_into
//! [`send`]: Fifo::send
//! [`recv`]: Fifo::recv

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::cancel::{CancelToken, Poke};

/// Why a blocking FIFO call stopped without completing. The executor's
/// hot path uses the non-blocking `try_*` API; the blocking calls remain
/// as the reference semantics their unit tests pin down.
#[cfg_attr(not(test), allow(dead_code))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoStop {
    /// The deadline elapsed while blocked (deadlock or hang).
    Timeout,
    /// The run was cancelled by another worker's failure.
    Cancelled,
}

/// What a [`Fifo::send`] reports through its callback, in call order.
#[cfg_attr(not(test), allow(dead_code))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMoment {
    /// Every slot was full; the call is about to block (reported once).
    Blocked,
    /// The tile is being deposited. Reported while the queue lock is still
    /// held, so a timestamp taken here provably precedes the matching
    /// receive's timestamp on any other thread.
    Enqueued {
        /// Queue depth *including* the tile being deposited — the
        /// occupancy the receiver will observe, feeding the per-channel
        /// peak-occupancy gauge.
        depth: usize,
    },
}

/// A bounded queue of tiles for one connection.
///
/// Generic over the payload so the runtime can carry pooled tiles by
/// ownership (zero copies in transit) while tests use plain vectors. The
/// backing deque is allocated at the protocol's slot count up front and
/// never grows: the send path debug-asserts the bound before every push.
pub struct Fifo<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

fn relock<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    // A poisoning panic in some worker already fails the run via the scope
    // join; the queue itself is always left consistent.
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T: Send> Poke for Fifo<T> {
    /// Wakes blocked senders and receivers so they observe a
    /// cancellation. Takes the queue lock first: a waiter between its
    /// flag check and its park holds that lock, so the notification
    /// cannot slip past it.
    fn poke(&self) {
        let _guard = relock(self.queue.lock());
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

impl<T> Fifo<T> {
    /// A FIFO with `capacity` slots (at least one), preallocated.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The slot bound this connection was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth — the scheduler's readiness probe for parked
    /// send/receive waits.
    #[must_use]
    pub fn len(&self) -> usize {
        relock(self.queue.lock()).len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposits `value` if a slot is free, without blocking. `on_enqueued`
    /// runs under the queue lock with the post-push depth, preserving the
    /// happens-before contract of [`SendMoment::Enqueued`]. On a full
    /// queue the value is handed back unchanged.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when every slot is full.
    pub fn try_send(&self, value: T, on_enqueued: impl FnOnce(usize)) -> Result<(), T> {
        let mut guard = relock(self.queue.lock());
        if guard.len() >= self.capacity {
            return Err(value);
        }
        on_enqueued(guard.len() + 1);
        debug_assert!(
            guard.len() < self.capacity && guard.capacity() >= self.capacity,
            "FIFO bound violated: {} of {} slots used (capacity {})",
            guard.len(),
            self.capacity,
            guard.capacity()
        );
        guard.push_back(value);
        drop(guard);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Drains every queued tile into `out` under one lock acquisition,
    /// oldest first, and returns how many were moved. The receiver-side
    /// batching half of the scheduler's FIFO protocol: one wakeup can
    /// hand a task a whole burst of tiles, each consumed by a later
    /// instruction without touching the queue lock again. Draining frees
    /// slots exactly like [`recv`](Fifo::recv) does, so blocked senders
    /// are woken (and a parked sender's scheduler wakeup should follow
    /// any call that returns nonzero).
    pub fn try_recv_into(&self, out: &mut VecDeque<T>) -> usize {
        let mut guard = relock(self.queue.lock());
        let n = guard.len();
        out.extend(guard.drain(..));
        drop(guard);
        if n > 0 {
            self.not_full.notify_all();
        }
        n
    }

    #[cfg_attr(not(test), allow(dead_code))]
    fn wait_until<'a>(
        cv: &Condvar,
        guard: MutexGuard<'a, VecDeque<T>>,
        deadline: Instant,
        cancel: &CancelToken,
    ) -> Result<MutexGuard<'a, VecDeque<T>>, FifoStop> {
        if cancel.is_cancelled() {
            return Err(FifoStop::Cancelled);
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(FifoStop::Timeout);
        }
        let (guard, _) = relock(cv.wait_timeout(guard, remaining));
        Ok(guard)
    }

    /// Deposits `value`, blocking while all slots are full. `on_event`
    /// reports [`SendMoment::Blocked`] once at the moment the call starts
    /// blocking (only if it blocks) and [`SendMoment::Enqueued`] under the
    /// queue lock as the tile goes in. Returns whether the call blocked.
    /// For cancellation to interrupt the wait before the deadline, attach
    /// the FIFO to the token as a waker (see `CancelToken::attach`).
    ///
    /// # Errors
    ///
    /// Returns [`FifoStop::Timeout`] if the queue stays full past
    /// `deadline`, or [`FifoStop::Cancelled`] if the run is cancelled.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn send(
        &self,
        value: T,
        deadline: Instant,
        cancel: &CancelToken,
        mut on_event: impl FnMut(SendMoment),
    ) -> Result<bool, FifoStop> {
        let mut guard = relock(self.queue.lock());
        let mut blocked = false;
        while guard.len() >= self.capacity {
            if !blocked {
                blocked = true;
                on_event(SendMoment::Blocked);
            }
            guard = Self::wait_until(&self.not_full, guard, deadline, cancel)?;
        }
        on_event(SendMoment::Enqueued {
            depth: guard.len() + 1,
        });
        debug_assert!(
            guard.len() < self.capacity && guard.capacity() >= self.capacity,
            "FIFO bound violated: {} of {} slots used (capacity {})",
            guard.len(),
            self.capacity,
            guard.capacity()
        );
        guard.push_back(value);
        drop(guard);
        self.not_empty.notify_one();
        Ok(blocked)
    }

    /// Removes the oldest tile, blocking while the queue is empty.
    /// `on_block` runs once, at the moment the call starts blocking, only
    /// if it blocks. Returns the tile and whether the call blocked. As
    /// with [`send`](Fifo::send), prompt cancellation requires attaching
    /// the FIFO to the token.
    ///
    /// # Errors
    ///
    /// Returns [`FifoStop::Timeout`] if the queue stays empty past
    /// `deadline`, or [`FifoStop::Cancelled`] if the run is cancelled.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn recv(
        &self,
        deadline: Instant,
        cancel: &CancelToken,
        on_block: impl FnOnce(),
    ) -> Result<(T, bool), FifoStop> {
        let mut guard = relock(self.queue.lock());
        let mut blocked = false;
        let mut on_block = Some(on_block);
        loop {
            if let Some(value) = guard.pop_front() {
                drop(guard);
                self.not_full.notify_one();
                return Ok((value, blocked));
            }
            if let Some(f) = on_block.take() {
                blocked = true;
                f();
            }
            guard = Self::wait_until(&self.not_empty, guard, deadline, cancel)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Weak};
    use std::time::Duration;

    use crate::cancel::{FailureCause, FailureOrigin};

    fn after(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn passes_values_in_order() {
        let f = Fifo::new(2);
        let c = CancelToken::new();
        assert_eq!(f.send(vec![1.0], after(100), &c, |_| ()), Ok(false));
        assert_eq!(f.send(vec![2.0], after(100), &c, |_| ()), Ok(false));
        assert_eq!(f.recv(after(100), &c, || ()), Ok((vec![1.0], false)));
        assert_eq!(f.recv(after(100), &c, || ()), Ok((vec![2.0], false)));
    }

    #[test]
    fn try_send_fills_to_capacity_then_rejects() {
        let f = Fifo::new(2);
        assert_eq!(f.try_send(vec![1.0], |d| assert_eq!(d, 1)), Ok(()));
        assert_eq!(f.try_send(vec![2.0], |d| assert_eq!(d, 2)), Ok(()));
        assert_eq!(f.len(), 2);
        // Full: the payload comes back unchanged, no callback.
        assert_eq!(
            f.try_send(vec![3.0], |_| panic!("enqueued")),
            Err(vec![3.0])
        );
    }

    #[test]
    fn try_recv_into_drains_in_order() {
        let f = Fifo::new(4);
        for v in 1..=3 {
            f.try_send(vec![v as f32], |_| ()).unwrap();
        }
        let mut out = VecDeque::new();
        assert_eq!(f.try_recv_into(&mut out), 3);
        assert!(f.is_empty());
        assert_eq!(out, VecDeque::from(vec![vec![1.0], vec![2.0], vec![3.0]]));
        assert_eq!(f.try_recv_into(&mut out), 0);
    }

    /// Draining wakes a blocked (legacy-API) sender: the slots really do
    /// free up.
    #[test]
    fn try_recv_into_unblocks_sender() {
        let f = Arc::new(Fifo::new(1));
        let c = CancelToken::new();
        f.try_send(vec![0.0], |_| ()).unwrap();
        let f2 = Arc::clone(&f);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || f2.send(vec![1.0], after(5000), &c2, |_| ()));
        std::thread::sleep(Duration::from_millis(20));
        let mut out = VecDeque::new();
        assert_eq!(f.try_recv_into(&mut out), 1);
        assert_eq!(h.join().unwrap(), Ok(true));
    }

    #[test]
    fn send_blocks_when_full_and_reports_it() {
        let f = Arc::new(Fifo::new(1));
        let c = CancelToken::new();
        f.send(vec![0.0], after(5000), &c, |_| ()).unwrap();
        let f2 = Arc::clone(&f);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || f2.send(vec![1.0], after(5000), &c2, |_| ()));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(f.recv(after(5000), &c, || ()), Ok((vec![0.0], false)));
        assert_eq!(h.join().unwrap(), Ok(true));
        assert_eq!(f.recv(after(5000), &c, || ()), Ok((vec![1.0], false)));
    }

    #[test]
    fn recv_blocks_when_empty_and_reports_it() {
        let f = Arc::new(Fifo::new(1));
        let c = CancelToken::new();
        let f2 = Arc::clone(&f);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || f2.recv(after(5000), &c2, || ()));
        std::thread::sleep(Duration::from_millis(20));
        f.send(vec![3.0], after(5000), &c, |_| ()).unwrap();
        assert_eq!(h.join().unwrap(), Ok((vec![3.0], true)));
    }

    #[test]
    fn timeouts_are_reported() {
        let f = Fifo::new(1);
        let c = CancelToken::new();
        assert_eq!(f.recv(after(10), &c, || ()), Err(FifoStop::Timeout));
        f.send(vec![0.0], after(10), &c, |_| ()).unwrap();
        assert_eq!(
            f.send(vec![1.0], after(10), &c, |_| ()),
            Err(FifoStop::Timeout)
        );
    }

    #[test]
    fn send_moments_fire_in_order() {
        let f = Fifo::new(1);
        let c = CancelToken::new();
        let mut moments = Vec::new();
        f.send(vec![0.0], after(10), &c, |m| moments.push(m))
            .unwrap();
        assert_eq!(moments, vec![SendMoment::Enqueued { depth: 1 }]);
        let mut moments = Vec::new();
        let _ = f.send(vec![1.0], after(10), &c, |m| moments.push(m));
        assert_eq!(moments, vec![SendMoment::Blocked]);
    }

    /// A cancellation elsewhere unblocks an attached receiver long before
    /// its deadline — via the token's waker, with no polling in the wait.
    #[test]
    fn cancellation_unblocks_promptly() {
        let f = Arc::new(Fifo::<Vec<f32>>::new(1));
        let c = CancelToken::new();
        c.attach(Arc::downgrade(&f) as Weak<dyn Poke>);
        let f2 = Arc::clone(&f);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            let start = Instant::now();
            let r = f2.recv(after(30_000), &c2, || ());
            (r, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        c.cancel(FailureOrigin {
            rank: 0,
            tb: 0,
            step: 0,
            cause: FailureCause::StepTimeout,
        });
        let (r, took) = h.join().unwrap();
        assert_eq!(r, Err(FifoStop::Cancelled));
        assert!(took < Duration::from_secs(1), "took {took:?}");
    }
}
