//! Bounded FIFO connections with blocking instrumentation.
//!
//! Each `(src, dst, channel)` connection is a queue with the protocol's
//! FIFO slot count (§6.1): a send blocks when every slot is full, a
//! receive blocks when the queue is empty. Unlike an off-the-shelf
//! channel, these report *whether* a call blocked and invoke a callback at
//! the moment blocking starts, which is what lets the tracer timestamp
//! `SendBlock`/`RecvBlock` at the start of the stall rather than after it.
//!
//! Blocking calls are *cooperative*: they take an absolute deadline and a
//! [`CancelToken`], and their condvar waits are sliced by
//! [`CANCEL_POLL`](crate::cancel::CANCEL_POLL) so a failure anywhere in
//! the run unblocks them within milliseconds.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::cancel::{CancelToken, CANCEL_POLL};

/// Why a blocking FIFO call stopped without completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoStop {
    /// The deadline elapsed while blocked (deadlock or hang).
    Timeout,
    /// The run was cancelled by another worker's failure.
    Cancelled,
}

/// What a [`Fifo::send`] reports through its callback, in call order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMoment {
    /// Every slot was full; the call is about to block (reported once).
    Blocked,
    /// The tile is being deposited. Reported while the queue lock is still
    /// held, so a timestamp taken here provably precedes the matching
    /// receive's timestamp on any other thread.
    Enqueued {
        /// Queue depth *including* the tile being deposited — the
        /// occupancy the receiver will observe, feeding the per-channel
        /// peak-occupancy gauge.
        depth: usize,
    },
}

/// A bounded queue of tiles for one connection.
///
/// Generic over the payload so the runtime can carry pooled tiles by
/// ownership (zero copies in transit) while tests use plain vectors. The
/// backing deque is allocated at the protocol's slot count up front and
/// never grows: the send path debug-asserts the bound before every push.
pub struct Fifo<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

fn relock<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    // A poisoning panic in some worker already fails the run via the scope
    // join; the queue itself is always left consistent.
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> Fifo<T> {
    /// A FIFO with `capacity` slots (at least one), preallocated.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn wait_until<'a>(
        cv: &Condvar,
        guard: MutexGuard<'a, VecDeque<T>>,
        deadline: Instant,
        cancel: &CancelToken,
    ) -> Result<MutexGuard<'a, VecDeque<T>>, FifoStop> {
        if cancel.is_cancelled() {
            return Err(FifoStop::Cancelled);
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(FifoStop::Timeout);
        }
        let (guard, _) = relock(cv.wait_timeout(guard, remaining.min(CANCEL_POLL)));
        Ok(guard)
    }

    /// Deposits `value`, blocking while all slots are full. `on_event`
    /// reports [`SendMoment::Blocked`] once at the moment the call starts
    /// blocking (only if it blocks) and [`SendMoment::Enqueued`] under the
    /// queue lock as the tile goes in. Returns whether the call blocked.
    ///
    /// # Errors
    ///
    /// Returns [`FifoStop::Timeout`] if the queue stays full past
    /// `deadline`, or [`FifoStop::Cancelled`] if the run is cancelled.
    pub fn send(
        &self,
        value: T,
        deadline: Instant,
        cancel: &CancelToken,
        mut on_event: impl FnMut(SendMoment),
    ) -> Result<bool, FifoStop> {
        let mut guard = relock(self.queue.lock());
        let mut blocked = false;
        while guard.len() >= self.capacity {
            if !blocked {
                blocked = true;
                on_event(SendMoment::Blocked);
            }
            guard = Self::wait_until(&self.not_full, guard, deadline, cancel)?;
        }
        on_event(SendMoment::Enqueued {
            depth: guard.len() + 1,
        });
        debug_assert!(
            guard.len() < self.capacity && guard.capacity() >= self.capacity,
            "FIFO bound violated: {} of {} slots used (capacity {})",
            guard.len(),
            self.capacity,
            guard.capacity()
        );
        guard.push_back(value);
        drop(guard);
        self.not_empty.notify_one();
        Ok(blocked)
    }

    /// Removes the oldest tile, blocking while the queue is empty.
    /// `on_block` runs once, at the moment the call starts blocking, only
    /// if it blocks. Returns the tile and whether the call blocked.
    ///
    /// # Errors
    ///
    /// Returns [`FifoStop::Timeout`] if the queue stays empty past
    /// `deadline`, or [`FifoStop::Cancelled`] if the run is cancelled.
    pub fn recv(
        &self,
        deadline: Instant,
        cancel: &CancelToken,
        on_block: impl FnOnce(),
    ) -> Result<(T, bool), FifoStop> {
        let mut guard = relock(self.queue.lock());
        let mut blocked = false;
        let mut on_block = Some(on_block);
        loop {
            if let Some(value) = guard.pop_front() {
                drop(guard);
                self.not_full.notify_one();
                return Ok((value, blocked));
            }
            if let Some(f) = on_block.take() {
                blocked = true;
                f();
            }
            guard = Self::wait_until(&self.not_empty, guard, deadline, cancel)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use crate::cancel::{FailureCause, FailureOrigin};

    fn after(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn passes_values_in_order() {
        let f = Fifo::new(2);
        let c = CancelToken::new();
        assert_eq!(f.send(vec![1.0], after(100), &c, |_| ()), Ok(false));
        assert_eq!(f.send(vec![2.0], after(100), &c, |_| ()), Ok(false));
        assert_eq!(f.recv(after(100), &c, || ()), Ok((vec![1.0], false)));
        assert_eq!(f.recv(after(100), &c, || ()), Ok((vec![2.0], false)));
    }

    #[test]
    fn send_blocks_when_full_and_reports_it() {
        let f = Arc::new(Fifo::new(1));
        let c = CancelToken::new();
        f.send(vec![0.0], after(5000), &c, |_| ()).unwrap();
        let f2 = Arc::clone(&f);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || f2.send(vec![1.0], after(5000), &c2, |_| ()));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(f.recv(after(5000), &c, || ()), Ok((vec![0.0], false)));
        assert_eq!(h.join().unwrap(), Ok(true));
        assert_eq!(f.recv(after(5000), &c, || ()), Ok((vec![1.0], false)));
    }

    #[test]
    fn recv_blocks_when_empty_and_reports_it() {
        let f = Arc::new(Fifo::new(1));
        let c = CancelToken::new();
        let f2 = Arc::clone(&f);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || f2.recv(after(5000), &c2, || ()));
        std::thread::sleep(Duration::from_millis(20));
        f.send(vec![3.0], after(5000), &c, |_| ()).unwrap();
        assert_eq!(h.join().unwrap(), Ok((vec![3.0], true)));
    }

    #[test]
    fn timeouts_are_reported() {
        let f = Fifo::new(1);
        let c = CancelToken::new();
        assert_eq!(f.recv(after(10), &c, || ()), Err(FifoStop::Timeout));
        f.send(vec![0.0], after(10), &c, |_| ()).unwrap();
        assert_eq!(
            f.send(vec![1.0], after(10), &c, |_| ()),
            Err(FifoStop::Timeout)
        );
    }

    #[test]
    fn send_moments_fire_in_order() {
        let f = Fifo::new(1);
        let c = CancelToken::new();
        let mut moments = Vec::new();
        f.send(vec![0.0], after(10), &c, |m| moments.push(m))
            .unwrap();
        assert_eq!(moments, vec![SendMoment::Enqueued { depth: 1 }]);
        let mut moments = Vec::new();
        let _ = f.send(vec![1.0], after(10), &c, |m| moments.push(m));
        assert_eq!(moments, vec![SendMoment::Blocked]);
    }

    /// A cancellation elsewhere unblocks a receiver long before its
    /// deadline.
    #[test]
    fn cancellation_unblocks_promptly() {
        let f = Arc::new(Fifo::<Vec<f32>>::new(1));
        let c = CancelToken::new();
        let f2 = Arc::clone(&f);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            let start = Instant::now();
            let r = f2.recv(after(30_000), &c2, || ());
            (r, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        c.cancel(FailureOrigin {
            rank: 0,
            tb: 0,
            step: 0,
            cause: FailureCause::StepTimeout,
        });
        let (r, took) = h.join().unwrap();
        assert_eq!(r, Err(FifoStop::Cancelled));
        assert!(took < Duration::from_secs(1), "took {took:?}");
    }
}
