//! Monotonic semaphores for cross-thread-block synchronization.
//!
//! The CUDA interpreter (Figure 5) gives every thread block a semaphore in
//! global memory set to the completed step after each instruction with
//! `hasDep`; dependent instructions spin until the value is reached. Here
//! the value counts instructions monotonically *across tiles* so that
//! waits from tile `t` can never be satisfied by a completion from tile
//! `t - 1`.
//!
//! The scheduler's hot path never blocks on a semaphore: a task polls
//! [`current`](Semaphore::current) and, if the target is not yet reached,
//! parks in the scheduler's wait table until the setter wakes it. The
//! blocking [`wait_at_least`](Semaphore::wait_at_least) remains for the
//! epoch machinery's tests and direct users; its condvar wait runs to the
//! full deadline and is interrupted by cancellation through the token's
//! [`Poke`] waker (attach the semaphore to the token for that), not by
//! slicing the sleep.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

use crate::cancel::{CancelToken, Poke};

/// How a cooperative wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))]
pub enum WaitOutcome {
    /// The awaited condition became true.
    Reached,
    /// The deadline passed first.
    TimedOut,
    /// The run was cancelled by another worker's failure.
    Cancelled,
}

/// A monotonically increasing counter others can block on.
#[derive(Default)]
pub struct Semaphore {
    value: Mutex<u64>,
    cv: Condvar,
}

impl Poke for Semaphore {
    /// Wakes blocked waiters so they observe a cancellation. Takes the
    /// value lock first: a waiter between its flag check and its park
    /// holds that lock, so the notification cannot slip past it.
    fn poke(&self) {
        let _guard = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        self.cv.notify_all();
    }
}

impl Semaphore {
    /// Creates a semaphore at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current value, without blocking — the scheduler's readiness
    /// probe for parked dependency waits.
    #[must_use]
    pub fn current(&self) -> u64 {
        *self.value.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Advances the counter to `v` (monotonic; lower values are ignored)
    /// and wakes waiters.
    pub fn set(&self, v: u64) {
        let mut guard = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        if v > *guard {
            *guard = v;
            self.cv.notify_all();
        }
    }

    /// Adds one to the counter, wakes waiters, and returns the new value
    /// — the arrival primitive of the epoch barrier: each worker
    /// contributes one arrival and the last one (the designated
    /// snapshotter) sees the full count.
    pub fn increment(&self) -> u64 {
        let mut guard = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        *guard += 1;
        self.cv.notify_all();
        *guard
    }

    /// Blocks until the counter reaches `v`, the `deadline` passes, or
    /// `cancel` trips. For the cancellation to interrupt the wait before
    /// the deadline, the semaphore must be attached to the token as a
    /// waker (see [`CancelToken::attach`]); the wait itself never polls.
    #[must_use]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn wait_at_least(&self, v: u64, deadline: Instant, cancel: &CancelToken) -> WaitOutcome {
        let mut guard = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        while *guard < v {
            if cancel.is_cancelled() {
                return WaitOutcome::Cancelled;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return WaitOutcome::TimedOut;
            }
            guard = self
                .cv
                .wait_timeout(guard, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        WaitOutcome::Reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Weak};
    use std::time::Duration;

    use crate::cancel::{FailureCause, FailureOrigin};

    fn soon(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn set_and_wait() {
        let s = Semaphore::new();
        let c = CancelToken::new();
        s.set(3);
        assert_eq!(s.current(), 3);
        assert_eq!(s.wait_at_least(3, soon(10), &c), WaitOutcome::Reached);
        assert_eq!(s.wait_at_least(4, soon(10), &c), WaitOutcome::TimedOut);
    }

    #[test]
    fn set_is_monotonic() {
        let s = Semaphore::new();
        let c = CancelToken::new();
        s.set(5);
        s.set(2);
        assert_eq!(s.current(), 5);
        assert_eq!(s.wait_at_least(5, soon(10), &c), WaitOutcome::Reached);
    }

    #[test]
    fn cross_thread_wakeup() {
        let s = Arc::new(Semaphore::new());
        let c = CancelToken::new();
        let s2 = Arc::clone(&s);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || s2.wait_at_least(1, soon(5000), &c2));
        std::thread::sleep(Duration::from_millis(20));
        s.set(1);
        assert_eq!(h.join().unwrap(), WaitOutcome::Reached);
    }

    /// A cancellation elsewhere must wake an attached waiter long before
    /// its own deadline — without any polling inside the wait.
    #[test]
    fn cancellation_interrupts_wait_promptly() {
        let s = Arc::new(Semaphore::new());
        let c = CancelToken::new();
        c.attach(Arc::downgrade(&s) as Weak<dyn Poke>);
        let s2 = Arc::clone(&s);
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            let start = Instant::now();
            let outcome = s2.wait_at_least(1, soon(30_000), &c2);
            (outcome, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        c.cancel(FailureOrigin {
            rank: 0,
            tb: 0,
            step: 0,
            cause: FailureCause::StepTimeout,
        });
        let (outcome, took) = h.join().unwrap();
        assert_eq!(outcome, WaitOutcome::Cancelled);
        assert!(took < Duration::from_secs(1), "took {took:?}");
    }
}
