//! Monotonic semaphores for cross-thread-block synchronization.
//!
//! The CUDA interpreter (Figure 5) gives every thread block a semaphore in
//! global memory set to the completed step after each instruction with
//! `hasDep`; dependent instructions spin until the value is reached. Here
//! a mutex + condvar pair replaces the spin, and the value counts
//! instructions monotonically *across tiles* so that waits from tile `t`
//! can never be satisfied by a completion from tile `t - 1`.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A monotonically increasing counter others can block on.
#[derive(Default)]
pub struct Semaphore {
    value: Mutex<u64>,
    cv: Condvar,
}

impl Semaphore {
    /// Creates a semaphore at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the counter to `v` (monotonic; lower values are ignored)
    /// and wakes waiters.
    pub fn set(&self, v: u64) {
        let mut guard = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        if v > *guard {
            *guard = v;
            self.cv.notify_all();
        }
    }

    /// Blocks until the counter reaches `v` or `timeout` elapses; returns
    /// whether the target was reached.
    #[must_use]
    pub fn wait_at_least(&self, v: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        while *guard < v {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            guard = self
                .cv
                .wait_timeout(guard, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_and_wait() {
        let s = Semaphore::new();
        s.set(3);
        assert!(s.wait_at_least(3, Duration::from_millis(10)));
        assert!(!s.wait_at_least(4, Duration::from_millis(10)));
    }

    #[test]
    fn set_is_monotonic() {
        let s = Semaphore::new();
        s.set(5);
        s.set(2);
        assert!(s.wait_at_least(5, Duration::from_millis(10)));
    }

    #[test]
    fn cross_thread_wakeup() {
        let s = Arc::new(Semaphore::new());
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || s2.wait_at_least(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        s.set(1);
        assert!(h.join().unwrap());
    }
}
