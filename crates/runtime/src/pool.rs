//! A recycling pool of fixed-capacity tile buffers.
//!
//! The interpreter's hot path moves one tile per FIFO slot, and §6 of the
//! paper reaches near-hardware bandwidth precisely because those slots are
//! *reused*: no allocation happens per message. [`TilePool`] gives the
//! threaded runtime the same property. Buffers are handed out as
//! [`PooledTile`]s, carried through FIFOs by ownership, and returned to
//! the pool automatically on drop — in steady state a run performs zero
//! per-tile allocations, which [`PoolStats`] makes observable.
//!
//! Buffers are allocated at the pool's fixed capacity and zero-filled
//! once; a take only adjusts the tile's *logical* length, so the hot path
//! never re-zeroes memory. A pool outlives any single execution: passing
//! the same pool to repeated runs (see
//! [`execute_pooled`](crate::execute_pooled)) keeps the warm buffers
//! across calls, which is what the throughput bench measures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Counters describing how a pool behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh buffer allocations (pool misses). Zero in steady state.
    pub allocated: u64,
    /// Takes served from a recycled buffer (pool hits).
    pub reused: u64,
    /// Buffers currently resting in the free list.
    pub free: u64,
}

/// A thread-safe free list of equally sized `f32` buffers.
#[derive(Debug)]
pub struct TilePool {
    /// Elements per buffer. Takes longer than this still succeed (the
    /// buffer grows and stays grown), they just count as allocations.
    capacity: usize,
    free: Mutex<Vec<Vec<f32>>>,
    allocated: AtomicU64,
    reused: AtomicU64,
}

impl TilePool {
    /// A pool of `capacity`-element buffers (at least one element).
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            capacity: capacity.max(1),
            free: Mutex::new(Vec::new()),
            allocated: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        })
    }

    /// Elements per pooled buffer.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Takes a tile of logical length `len`, recycling a free buffer when
    /// one is available. The tile's contents are unspecified (typically
    /// whatever the previous user wrote); callers overwrite it in full.
    #[must_use]
    pub fn take(self: &Arc<Self>, len: usize) -> PooledTile {
        let recycled = {
            let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
            free.pop()
        };
        let buf = match recycled {
            Some(buf) if buf.len() >= len => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                buf
            }
            other => {
                // Miss, or a recycled buffer from before a capacity-raising
                // take: (re)allocate at the larger of the pool capacity and
                // the request, zero-filled once for its lifetime.
                self.allocated.fetch_add(1, Ordering::Relaxed);
                let want = self.capacity.max(len);
                match other {
                    Some(mut buf) => {
                        buf.resize(want, 0.0);
                        buf
                    }
                    None => vec![0.0; want],
                }
            }
        };
        debug_assert!(buf.len() >= len);
        PooledTile {
            len,
            buf,
            pool: Arc::clone(self),
        }
    }

    /// Pre-fills the free list with `n` buffers so even the first takes
    /// are hits. The buffers count toward [`PoolStats::allocated`].
    pub fn prewarm(self: &Arc<Self>, n: usize) {
        let mut fresh: Vec<Vec<f32>> = (0..n).map(|_| vec![0.0; self.capacity]).collect();
        self.allocated.fetch_add(n as u64, Ordering::Relaxed);
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        free.append(&mut fresh);
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        PoolStats {
            allocated: self.allocated.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            free: free.len() as u64,
        }
    }

    fn put_back(&self, buf: Vec<f32>) {
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        free.push(buf);
    }
}

/// An owned tile backed by a pooled buffer; returns to its pool on drop.
///
/// Dereferences to `[f32]` of the logical length requested at take time
/// (the backing buffer may be larger).
#[derive(Debug)]
pub struct PooledTile {
    len: usize,
    buf: Vec<f32>,
    pool: Arc<TilePool>,
}

impl PooledTile {
    /// The logical length in elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tile holds zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A second tile from the same pool holding a copy of this one's
    /// contents — the copy-on-write path for duplicate-delivery faults.
    #[must_use]
    pub fn duplicate(&self) -> PooledTile {
        let mut copy = self.pool.take(self.len);
        copy.copy_from_slice(self);
        copy
    }
}

impl std::ops::Deref for PooledTile {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf[..self.len]
    }
}

impl std::ops::DerefMut for PooledTile {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf[..self.len]
    }
}

impl Drop for PooledTile {
    fn drop(&mut self) {
        self.pool.put_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_buffers_in_steady_state() {
        let pool = TilePool::new(8);
        {
            let t = pool.take(8);
            assert_eq!(t.len(), 8);
        }
        for _ in 0..100 {
            let t = pool.take(4);
            assert_eq!(t.len(), 4);
        }
        let s = pool.stats();
        assert_eq!(s.allocated, 1, "only the first take allocates");
        assert_eq!(s.reused, 100);
        assert_eq!(s.free, 1);
    }

    #[test]
    fn concurrent_takes_allocate_at_most_high_watermark() {
        let pool = TilePool::new(16);
        let a = pool.take(16);
        let b = pool.take(16);
        drop(a);
        drop(b);
        let c = pool.take(16);
        let d = pool.take(16);
        drop(c);
        drop(d);
        assert_eq!(pool.stats().allocated, 2);
        assert_eq!(pool.stats().free, 2);
    }

    #[test]
    fn oversized_take_grows_and_stays_grown() {
        let pool = TilePool::new(4);
        {
            let t = pool.take(10);
            assert_eq!(t.len(), 10);
        }
        assert_eq!(pool.stats().allocated, 1);
        let t = pool.take(10);
        assert_eq!(pool.stats().reused, 1, "grown buffer is recycled");
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn prewarm_makes_first_takes_hits() {
        let pool = TilePool::new(8);
        pool.prewarm(3);
        assert_eq!(pool.stats().free, 3);
        let _a = pool.take(8);
        let _b = pool.take(8);
        let s = pool.stats();
        assert_eq!(s.reused, 2);
        assert_eq!(s.allocated, 3, "prewarm allocations are accounted");
    }

    #[test]
    fn duplicate_copies_contents_through_the_pool() {
        let pool = TilePool::new(4);
        let mut t = pool.take(3);
        t.copy_from_slice(&[1.0, 2.0, 3.0]);
        let d = t.duplicate();
        assert_eq!(&d[..], &[1.0, 2.0, 3.0]);
        drop(t);
        drop(d);
        assert_eq!(pool.stats().free, 2);
    }

    #[test]
    fn tiles_are_writable_through_deref() {
        let pool = TilePool::new(4);
        let mut t = pool.take(2);
        t[0] = 5.0;
        t[1] = 6.0;
        assert_eq!(&t[..], &[5.0, 6.0]);
    }
}
