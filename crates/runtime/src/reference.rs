//! Golden reference results for collectives.
//!
//! Rather than re-implementing every collective imperatively, the expected
//! output is evaluated straight from the collective's *postcondition*: an
//! `Input(r, i)` chunk value denotes rank `r`'s input chunk `i`, and a
//! reduction chunk denotes the fold of its contributions under the
//! reduction operator. This makes the reference automatically correct for
//! every collective the verifier can express, including custom ones.

use mscclang::{ChunkValue, Collective, IrProgram, ReduceOp};

/// Deterministic pseudo-random input buffers for every rank of `ir`
/// (`in_chunks * chunk_elems` elements each).
#[must_use]
pub fn random_inputs(ir: &IrProgram, chunk_elems: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Small integers keep float sums exact.
        ((v >> 40) % 64) as f32
    };
    (0..ir.num_ranks())
        .map(|_| {
            (0..ir.collective.in_chunks() * chunk_elems)
                .map(|_| next())
                .collect()
        })
        .collect()
}

/// Evaluates a symbolic chunk value over concrete inputs.
fn eval_chunk(
    value: &ChunkValue,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    op: ReduceOp,
) -> Option<Vec<f32>> {
    match value {
        ChunkValue::Uninit => None,
        ChunkValue::Input(id) => {
            let base = id.index * chunk_elems;
            Some(inputs[id.rank][base..base + chunk_elems].to_vec())
        }
        ChunkValue::Reduction(set) => {
            let mut it = set.inputs().iter();
            let first = it.next()?;
            let mut acc = {
                let base = first.index * chunk_elems;
                inputs[first.rank][base..base + chunk_elems].to_vec()
            };
            for id in it {
                let base = id.index * chunk_elems;
                for (a, &b) in acc
                    .iter_mut()
                    .zip(&inputs[id.rank][base..base + chunk_elems])
                {
                    *a = op.apply(*a, b);
                }
            }
            Some(acc)
        }
    }
}

/// Checks every constrained output chunk of every rank against the
/// postcondition-derived golden value.
///
/// # Errors
///
/// Returns a description of the first mismatching element.
pub fn check_outputs(
    collective: &Collective,
    inputs: &[Vec<f32>],
    outputs: &[Vec<f32>],
    chunk_elems: usize,
    op: ReduceOp,
) -> Result<(), String> {
    if outputs.len() != collective.num_ranks() {
        return Err(format!(
            "{} output buffers for {} ranks",
            outputs.len(),
            collective.num_ranks()
        ));
    }
    for (rank, out) in outputs.iter().enumerate() {
        let expect_len = collective.out_chunks() * chunk_elems;
        if out.len() != expect_len {
            return Err(format!(
                "rank {rank} output has {} elements, expected {expect_len}",
                out.len()
            ));
        }
        for index in 0..collective.out_chunks() {
            let Some(expected_value) = collective.postcondition(rank, index) else {
                continue;
            };
            let expected = eval_chunk(expected_value, inputs, chunk_elems, op)
                .ok_or_else(|| format!("postcondition of rank {rank} chunk {index} is uninit"))?;
            let base = index * chunk_elems;
            let actual = &out[base..base + chunk_elems];
            for (e, (&a, &x)) in actual.iter().zip(&expected).enumerate() {
                let tol = 1e-3 * x.abs().max(1.0);
                if (a - x).abs() > tol {
                    return Err(format!(
                        "rank {rank} output chunk {index} element {e}: got {a}, expected {x}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Replays a program's traced `copy`/`reduce` operations directly on
/// concrete buffers — an oracle independent of the compiler and runtime,
/// usable for *any* program including custom collectives with
/// unconstrained postconditions.
///
/// Returns each rank's output buffer (`out_chunks * chunk_elems`
/// elements); locations never written stay `0.0`.
///
/// # Panics
///
/// Panics if `inputs` does not have `num_ranks` buffers of
/// `in_chunks * chunk_elems` elements (the trace itself is valid by
/// construction).
#[must_use]
pub fn replay_program(
    program: &mscclang::Program,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    op: ReduceOp,
) -> Vec<Vec<f32>> {
    use mscclang::{BufferKind, Space, TraceOpKind};
    let collective = program.collective();
    let num_ranks = collective.num_ranks();
    assert_eq!(inputs.len(), num_ranks, "one input buffer per rank");

    // Storage per (rank, space), in elements.
    let mut spaces: std::collections::HashMap<(usize, Space), Vec<f32>> =
        std::collections::HashMap::new();
    for (rank, input) in inputs.iter().enumerate() {
        let data = collective.space_size(Space::Data).unwrap_or(0) * chunk_elems;
        spaces.insert((rank, Space::Data), vec![0.0; data]);
        let out = collective.space_size(Space::Output).unwrap_or(0) * chunk_elems;
        spaces.insert((rank, Space::Output), vec![0.0; out]);
        spaces.insert(
            (rank, Space::Scratch),
            vec![0.0; program.scratch_chunks(rank) * chunk_elems],
        );
        assert_eq!(input.len(), collective.in_chunks() * chunk_elems);
        for index in 0..collective.in_chunks() {
            let (space, off) = collective.space_of(rank, BufferKind::Input, index);
            let dst = spaces.get_mut(&(rank, space)).expect("inserted");
            dst[off * chunk_elems..(off + 1) * chunk_elems]
                .copy_from_slice(&input[index * chunk_elems..(index + 1) * chunk_elems]);
        }
    }

    for top in program.ops() {
        for i in 0..top.count {
            let (ss, so) = collective.space_of(top.src.rank, top.src.buffer, top.src.index + i);
            let src: Vec<f32> =
                spaces[&(top.src.rank, ss)][so * chunk_elems..(so + 1) * chunk_elems].to_vec();
            let (ds, doff) = collective.space_of(top.dst.rank, top.dst.buffer, top.dst.index + i);
            let dst = spaces.get_mut(&(top.dst.rank, ds)).expect("exists");
            let slice = &mut dst[doff * chunk_elems..(doff + 1) * chunk_elems];
            match top.kind {
                TraceOpKind::Copy => slice.copy_from_slice(&src),
                TraceOpKind::Reduce => {
                    for (d, s) in slice.iter_mut().zip(&src) {
                        *d = op.apply(*d, *s);
                    }
                }
            }
        }
    }

    (0..num_ranks)
        .map(|rank| {
            let mut out = Vec::with_capacity(collective.out_chunks() * chunk_elems);
            for index in 0..collective.out_chunks() {
                let (space, off) = collective.space_of(rank, BufferKind::Output, index);
                out.extend_from_slice(
                    &spaces[&(rank, space)][off * chunk_elems..(off + 1) * chunk_elems],
                );
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::InputId;

    #[test]
    fn eval_input_chunk_slices_correctly() {
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let v = ChunkValue::input(1, 1);
        assert_eq!(
            eval_chunk(&v, &inputs, 2, ReduceOp::Sum),
            Some(vec![7.0, 8.0])
        );
    }

    #[test]
    fn eval_reduction_folds() {
        let inputs = vec![vec![1.0, 2.0], vec![10.0, 20.0]];
        let v = ChunkValue::reduction_over(0..2, 0);
        assert_eq!(
            eval_chunk(&v, &inputs, 2, ReduceOp::Sum),
            Some(vec![11.0, 22.0])
        );
        assert_eq!(
            eval_chunk(&v, &inputs, 2, ReduceOp::Max),
            Some(vec![10.0, 20.0])
        );
    }

    #[test]
    fn eval_duplicate_contributions_double_count() {
        let inputs = vec![vec![3.0]];
        let v = ChunkValue::Reduction(mscclang::ReductionSet::from_inputs(vec![
            InputId::new(0, 0),
            InputId::new(0, 0),
        ]));
        assert_eq!(eval_chunk(&v, &inputs, 1, ReduceOp::Sum), Some(vec![6.0]));
    }

    #[test]
    fn check_outputs_flags_mismatch() {
        let coll = Collective::all_gather(2, 1, false);
        let inputs = vec![vec![1.0], vec![2.0]];
        let good = vec![vec![1.0, 2.0], vec![1.0, 2.0]];
        let bad = vec![vec![1.0, 2.0], vec![1.0, 9.0]];
        assert!(check_outputs(&coll, &inputs, &good, 1, ReduceOp::Sum).is_ok());
        let err = check_outputs(&coll, &inputs, &bad, 1, ReduceOp::Sum).unwrap_err();
        assert!(err.contains("rank 1"));
    }

    #[test]
    fn replay_matches_simple_copy_program() {
        use mscclang::{BufferKind, Collective, Program};
        let mut p = Program::new("t", Collective::all_gather(2, 1, false));
        for r in 0..2 {
            let c = p.chunk(r, BufferKind::Input, 0, 1).unwrap();
            let c = p.copy(&c, r, BufferKind::Output, r).unwrap();
            let _ = p.copy(&c, 1 - r, BufferKind::Output, r).unwrap();
        }
        let inputs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let outs = replay_program(&p, &inputs, 2, ReduceOp::Sum);
        assert_eq!(outs[0], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(outs[1], vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn replay_applies_reductions() {
        use mscclang::{BufferKind, Collective, Program};
        let mut p = Program::new("t", Collective::all_reduce(2, 1, true));
        let c0 = p.chunk(0, BufferKind::Input, 0, 1).unwrap();
        let c1 = p.chunk(1, BufferKind::Input, 0, 1).unwrap();
        let r = p.reduce(&c1, &c0).unwrap();
        let _ = p.copy(&r, 0, BufferKind::Input, 0).unwrap();
        let outs = replay_program(&p, &[vec![2.0], vec![5.0]], 1, ReduceOp::Sum);
        assert_eq!(outs, vec![vec![7.0], vec![7.0]]);
        let outs = replay_program(&p, &[vec![2.0], vec![5.0]], 1, ReduceOp::Max);
        assert_eq!(outs, vec![vec![5.0], vec![5.0]]);
    }

    #[test]
    fn unconstrained_chunks_are_ignored() {
        let coll = Collective::all_to_next(2, 1);
        let inputs = vec![vec![5.0], vec![6.0]];
        // Rank 0's output is unconstrained; anything passes there.
        let outs = vec![vec![123.0], vec![5.0]];
        assert!(check_outputs(&coll, &inputs, &outs, 1, ReduceOp::Sum).is_ok());
    }
}
