//! A multi-threaded functional interpreter for MSCCL-IR.
//!
//! This crate is the CPU analog of the paper's CUDA interpreter (Figure 5,
//! §6): each IR thread block becomes a resumable task scheduled onto a
//! work-stealing pool of `min(num_cpus, num_tbs)` worker threads (see
//! [`RunOptions::worker_threads`]), executing its
//! instruction list sequentially inside an outer *tiling* loop; chunks
//! larger than a FIFO slot are split into tiles and pipelined exactly as
//! the GPU interpreter does. Point-to-point connections are bounded
//! channels with the protocol's FIFO slot count — a send blocks when all
//! slots are full — and cross-thread-block dependencies use monotonic
//! semaphores, mirroring the `wait`/`set` pair in Figure 5.
//!
//! Data is real (`f32`), so executing a compiled program end-to-end
//! validates numerical correctness against the golden results in
//! [`mod@reference`].
//!
//! # Example
//!
//! ```
//! use msccl_runtime::{execute, reference, RunOptions};
//! use mscclang::{compile, CompileOptions};
//!
//! let program = msccl_algos::ring_all_reduce(4, 1)?;
//! let ir = compile(&program, &CompileOptions::default())?;
//! let inputs = reference::random_inputs(&ir, 64, 42);
//! let outputs = execute(&ir, &inputs, 64, &RunOptions::default()).unwrap();
//! reference::check_outputs(&ir.collective, &inputs, &outputs, 64, Default::default()).unwrap();
//! # Ok::<(), mscclang::Error>(())
//! ```

mod cancel;
mod epoch;
mod executor;
mod fifo;
mod flight;
pub mod kernels;
mod memory;
mod pool;
mod recovery;
pub mod reference;
mod sched;
mod semaphore;

pub use cancel::{FailureCause, FailureOrigin};
pub use epoch::{EpochCheckpoint, EpochStatus};
pub use executor::{
    execute, execute_in_arena, execute_pooled, execute_profiled, execute_resumable,
    execute_resumable_in_arena, execute_traced, execute_with_faults, execute_with_faults_traced,
    execute_with_metrics, execute_with_stats, tile_pool_for, ExecArena, ExecStats, RunOptions,
    RuntimeError,
};
pub use flight::{
    Blackbox, BlackboxConn, BlackboxFailure, BlackboxSched, BlockedOn, FlightRecord,
    StallDiagnosis, StallKind, TaskStall, WaitEdge, WaitForGraph, BLACKBOX_VERSION,
};
pub use memory::{RankMemory, SpaceBuffers};
pub use pool::{PoolStats, PooledTile, TilePool};
pub use recovery::{
    execute_with_recovery, execute_with_recovery_in_arena, RecoveryPolicy, RecoveryReport,
    RecoveryStep, ResumePolicy,
};
