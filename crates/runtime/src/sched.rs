//! Work-stealing scheduler for resumable thread-block tasks.
//!
//! The executor compiles each IR thread block into a resumable state
//! machine (`TbTask` in [`crate::executor`]) and runs all of them on a
//! fixed pool of `min(num_cpus, num_tbs)` worker threads instead of one
//! OS thread per block. This module is the machinery under that: per-
//! worker run queues with stealing, a wait table keyed by *what* a task
//! is blocked on, a timer heap for sleeps and hang deadlines, and a
//! [`Parker`] that lets idle workers sleep without polling.
//!
//! Ownership discipline: a task index lives in **exactly one** place at
//! any moment — some worker's deque, the global injector, the wait
//! table, or "running" on a worker. Every transfer is a removal from one
//! place followed by an insertion into another under the respective
//! lock, so a task can never be run by two workers at once.
//!
//! The blocked path uses *register-then-recheck*: the worker inserts the
//! blocked task into the wait table, then re-probes the condition. If
//! the condition turned true in between, whoever removed the entry first
//! (the worker itself, or a waker that got there between the insert and
//! the probe) owns the single ticket to make the task runnable again.
//! Combined with wakers that fire *after* publishing their state
//! (semaphore set, FIFO push, gate release), no wakeup can be lost.
//!
//! Parking uses a sequence lock: producers bump [`Parker::bump`] after
//! every enqueue, and a worker only sleeps if the sequence is unchanged
//! from before it last probed the queues. The parker implements
//! [`Poke`], so attaching it to the run's [`CancelToken`]
//! (`crate::cancel`) turns a cancellation anywhere into an immediate
//! wakeup of every parked worker — no sleep anywhere in the executor is
//! sliced by a poll interval.
//!
//! [`CancelToken`]: crate::cancel::CancelToken

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use msccl_metrics::{bucket_index, BUCKETS};

use crate::cancel::Poke;
use crate::flight::{
    encode_key, FlightRecorder, KEY_TAG_GATE, KEY_TAG_RECV, KEY_TAG_SEM, KEY_TAG_SEND,
    KEY_TAG_SLEEP,
};

fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// What a blocked task is waiting for. The task that makes the condition
/// true wakes the key; tasks whose condition involves a timeout also arm
/// a timer so hangs are detected without any waker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum WakeKey {
    /// Task `i`'s own semaphore advanced (dependency waits).
    Sem(usize),
    /// Connection `i`'s FIFO received a tile (receive waits).
    Recv(usize),
    /// Connection `i`'s FIFO freed a slot (send waits on a full FIFO).
    Send(usize),
    /// Epoch boundary `i`'s gate released.
    Gate(usize),
    /// Task `i`'s private timer (fault stalls, straggle pauses, delivery
    /// delays) — nothing wakes this key except the timer heap and
    /// cancellation.
    Sleep(usize),
}

impl WakeKey {
    /// Compact encoding for flight-recorder payloads.
    pub(crate) fn flight_code(self) -> u64 {
        match self {
            WakeKey::Sem(i) => encode_key(KEY_TAG_SEM, i),
            WakeKey::Recv(i) => encode_key(KEY_TAG_RECV, i),
            WakeKey::Send(i) => encode_key(KEY_TAG_SEND, i),
            WakeKey::Gate(i) => encode_key(KEY_TAG_GATE, i),
            WakeKey::Sleep(i) => encode_key(KEY_TAG_SLEEP, i),
        }
    }

    /// Human rendering for the black-box wait-table snapshot.
    pub(crate) fn render(self) -> String {
        match self {
            WakeKey::Sem(i) => format!("sem({i})"),
            WakeKey::Recv(i) => format!("recv({i})"),
            WakeKey::Send(i) => format!("send({i})"),
            WakeKey::Gate(i) => format!("gate({i})"),
            WakeKey::Sleep(i) => format!("sleep({i})"),
        }
    }
}

/// The pool's sleep/wake rendezvous: a sequence counter under a mutex
/// plus a condvar. Producers bump after enqueuing; a worker reads the
/// sequence, re-probes the queues, and only then sleeps — a bump between
/// the read and the sleep aborts the sleep, so wakeups cannot be lost.
pub(crate) struct Parker {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            seq: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    /// Current sequence; take this *before* the final queue probe.
    pub(crate) fn epoch(&self) -> u64 {
        *relock(self.seq.lock())
    }

    /// Advances the sequence and wakes every parked worker. Called after
    /// each enqueue, timer arm, and by cancellation (via [`Poke`]).
    pub(crate) fn bump(&self) {
        let mut guard = relock(self.seq.lock());
        *guard = guard.wrapping_add(1);
        self.cv.notify_all();
    }

    /// Sleeps until a bump past `seen`, `until` (when set), or a
    /// spurious wakeup. Returns immediately if the sequence already
    /// moved.
    fn park(&self, seen: u64, until: Option<Instant>) {
        let guard = relock(self.seq.lock());
        if *guard != seen {
            return;
        }
        match until {
            Some(at) => {
                let remaining = at.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return;
                }
                drop(relock(self.cv.wait_timeout(guard, remaining)));
            }
            None => drop(relock(self.cv.wait(guard))),
        }
    }
}

impl Poke for Parker {
    fn poke(&self) {
        self.bump();
    }
}

/// Counters the scheduler keeps about itself, read after the run for the
/// `msccl_sched_*` metrics.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SchedStats {
    /// Tasks a worker took from another worker's deque.
    pub(crate) steals: u64,
    /// Times a worker went to sleep with nothing runnable.
    pub(crate) parks: u64,
    /// Total nanoseconds workers spent parked.
    pub(crate) park_ns: u64,
    /// Peak number of runnable tasks queued at once.
    pub(crate) peak_runnable: u64,
}

/// The work-stealing scheduler: run queues, wait table, timers, parker.
/// Wait-table snapshot frozen at cancellation: each blocked key with the
/// task indices parked on it.
type CapturedWaits = Vec<(WakeKey, Vec<usize>)>;

pub(crate) struct Scheduler {
    /// One deque per worker. Owners pop the back (LIFO, cache-warm);
    /// thieves and wakers touch the front/back under the same mutex.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Overflow/fairness queue: timer-fired and drained tasks land here
    /// so any worker can pick them up.
    injector: Mutex<VecDeque<usize>>,
    waits: Mutex<HashMap<WakeKey, Vec<usize>>>,
    /// Min-heap of (fire time, key, task). Entries are lazily discarded:
    /// a fired entry whose (key, task) is no longer in the wait table is
    /// a stale leftover from a wait that already ended.
    timers: Mutex<BinaryHeap<Reverse<(Instant, WakeKey, usize)>>>,
    pub(crate) parker: Arc<Parker>,
    /// Tasks not yet finished; workers exit when this hits zero.
    remaining: AtomicUsize,
    /// Tasks currently sitting in some queue (not running, not waiting).
    runnable: AtomicUsize,
    peak_runnable: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    /// Per-log2-bucket park-episode counts and nanosecond sums, folded
    /// into the `msccl_sched_park_ns` histogram after the run. Kept here
    /// (not in the registry) so parking stays registry-free on the idle
    /// path and the runtime's lazy metric policy is preserved.
    park_bucket_counts: Box<[AtomicU64]>,
    park_bucket_ns: Box<[AtomicU64]>,
    /// First-wins snapshot of the wait table, captured by whichever
    /// worker first observes cancellation — *before* `drain_waiting`
    /// scatters the evidence into the injector.
    captured_waits: Mutex<Option<CapturedWaits>>,
    /// The always-on flight recorder, shared with the executor.
    flight: Option<Arc<FlightRecorder>>,
}

impl Scheduler {
    /// A scheduler for `num_tasks` tasks on `workers` worker threads,
    /// with the initial tasks dealt round-robin across the deques.
    /// `flight`, when given, receives steal/park/wake records.
    pub(crate) fn new(
        workers: usize,
        num_tasks: usize,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for t in 0..num_tasks {
            deques[t % workers].push_back(t);
        }
        Self {
            deques: deques.into_iter().map(Mutex::new).collect(),
            injector: Mutex::new(VecDeque::new()),
            waits: Mutex::new(HashMap::new()),
            timers: Mutex::new(BinaryHeap::new()),
            parker: Parker::new(),
            remaining: AtomicUsize::new(num_tasks),
            runnable: AtomicUsize::new(num_tasks),
            peak_runnable: AtomicU64::new(num_tasks as u64),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            park_bucket_counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            park_bucket_ns: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            captured_waits: Mutex::new(None),
            flight,
        }
    }

    /// Counts `n` tasks as runnable. Must be called *before* the tasks
    /// are published to a queue: a peer can pop a published task
    /// immediately, and its decrement landing before this increment
    /// would wrap the counter. A transient over-count is harmless.
    fn note_enqueued(&self, n: usize) {
        let now = self.runnable.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_runnable.fetch_max(now as u64, Ordering::Relaxed);
    }

    /// Next task for worker `w`: own deque first (LIFO), then the
    /// injector, then stealing from the other deques (FIFO — the
    /// coldest work).
    pub(crate) fn pop(&self, w: usize) -> Option<usize> {
        if let Some(t) = relock(self.deques[w].lock()).pop_back() {
            self.runnable.fetch_sub(1, Ordering::Relaxed);
            return Some(t);
        }
        if let Some(t) = relock(self.injector.lock()).pop_front() {
            self.runnable.fetch_sub(1, Ordering::Relaxed);
            return Some(t);
        }
        let n = self.deques.len();
        for i in 1..n {
            let victim = (w + i) % n;
            if let Some(t) = relock(self.deques[victim].lock()).pop_front() {
                self.runnable.fetch_sub(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                if let Some(fl) = &self.flight {
                    fl.steal(w, victim, t);
                }
                return Some(t);
            }
        }
        None
    }

    /// Registers `task` as blocked on `key`, arms `timer` (a hang
    /// deadline or a sleep expiry) when given, then re-probes the
    /// condition via `probe`. Returns `true` when the condition is
    /// already satisfied *and* this call won the race to reclaim the
    /// task — the caller keeps running it. On `false` the task is
    /// parked (or a concurrent waker owns its re-enqueue).
    pub(crate) fn block(
        &self,
        task: usize,
        key: WakeKey,
        timer: Option<Instant>,
        probe: impl FnOnce() -> bool,
    ) -> bool {
        relock(self.waits.lock()).entry(key).or_default().push(task);
        if let Some(at) = timer {
            relock(self.timers.lock()).push(Reverse((at, key, task)));
            // Parked workers compute their sleep bound from the timer
            // heap; an earlier deadline must re-bound those sleeps.
            self.parker.bump();
        }
        if probe() {
            let mut waits = relock(self.waits.lock());
            if let Some(v) = waits.get_mut(&key) {
                if let Some(pos) = v.iter().position(|&t| t == task) {
                    v.swap_remove(pos);
                    if v.is_empty() {
                        waits.remove(&key);
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Makes every task blocked on `key` runnable on worker `w`'s deque.
    /// Call *after* publishing the state the key stands for. Returns how
    /// many tasks were woken.
    pub(crate) fn wake(&self, key: WakeKey, w: usize) -> usize {
        let woken = relock(self.waits.lock()).remove(&key).unwrap_or_default();
        let n = woken.len();
        if n > 0 {
            self.note_enqueued(n);
            relock(self.deques[w].lock()).extend(woken);
            self.parker.bump();
            if let Some(fl) = &self.flight {
                fl.wake(w, key.flight_code(), n);
            }
        }
        n
    }

    /// Fires every timer at or before `now`: each (key, task) still in
    /// the wait table moves to the injector (the task re-probes its
    /// condition itself — a fired hang deadline makes it fail, a fired
    /// sleep makes it continue). Returns whether anything was woken and
    /// the next pending fire time.
    pub(crate) fn fire_timers(&self, now: Instant) -> (bool, Option<Instant>) {
        let mut due: Vec<(WakeKey, usize)> = Vec::new();
        let next = {
            let mut timers = relock(self.timers.lock());
            loop {
                match timers.peek() {
                    Some(Reverse((at, _, _))) if *at <= now => {
                        let Reverse((_, key, task)) = timers.pop().expect("peeked");
                        due.push((key, task));
                    }
                    Some(Reverse((at, _, _))) => break Some(*at),
                    None => break None,
                }
            }
        };
        let mut woke = false;
        if !due.is_empty() {
            let mut waits = relock(self.waits.lock());
            let mut fired: Vec<usize> = Vec::new();
            for (key, task) in due {
                if let Some(v) = waits.get_mut(&key) {
                    if let Some(pos) = v.iter().position(|&t| t == task) {
                        v.swap_remove(pos);
                        if v.is_empty() {
                            waits.remove(&key);
                        }
                        fired.push(task);
                    }
                }
            }
            drop(waits);
            if !fired.is_empty() {
                self.note_enqueued(fired.len());
                relock(self.injector.lock()).extend(fired);
                woke = true;
            }
        }
        (woke, next)
    }

    /// Moves every waiting task to the injector — the cancellation path:
    /// each woken task observes the tripped token and unwinds, so the
    /// run drains within wakeup latency instead of timeout bounds.
    pub(crate) fn drain_waiting(&self) {
        let drained: Vec<usize> = relock(self.waits.lock())
            .drain()
            .flat_map(|(_, v)| v)
            .collect();
        if !drained.is_empty() {
            self.note_enqueued(drained.len());
            relock(self.injector.lock()).extend(drained);
            self.parker.bump();
        }
    }

    /// Marks one task finished. The last finish wakes every parked
    /// worker so the pool can exit.
    pub(crate) fn task_done(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.parker.bump();
        }
    }

    /// Whether every task has finished (the workers' exit condition).
    pub(crate) fn is_finished(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Parks worker `w` until the parker sequence moves past `seen` or
    /// `until` arrives, and buckets how long the nap actually lasted.
    /// The two clock reads live on the *idle* path — a worker only gets
    /// here with nothing runnable — so measuring costs nothing where
    /// throughput is made.
    pub(crate) fn park(&self, w: usize, seen: u64, until: Option<Instant>) {
        self.parks.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        self.parker.park(seen, until);
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let b = bucket_index(ns);
        self.park_bucket_counts[b].fetch_add(1, Ordering::Relaxed);
        self.park_bucket_ns[b].fetch_add(ns, Ordering::Relaxed);
        if let Some(fl) = &self.flight {
            fl.park(w, ns / 1_000);
        }
    }

    /// Non-empty park-time buckets as `(bucket, episodes, total_ns)`,
    /// for folding into the `msccl_sched_park_ns` histogram.
    pub(crate) fn park_histogram(&self) -> Vec<(usize, u64, u64)> {
        (0..BUCKETS)
            .filter_map(|b| {
                let count = self.park_bucket_counts[b].load(Ordering::Relaxed);
                (count > 0).then(|| (b, count, self.park_bucket_ns[b].load(Ordering::Relaxed)))
            })
            .collect()
    }

    /// Captures the wait table for the post-mortem wait-for graph. First
    /// capture wins; callers invoke this *before* [`drain_waiting`]
    /// (which empties the table to tear the run down) so the evidence of
    /// who-waited-on-what survives cancellation.
    ///
    /// [`drain_waiting`]: Self::drain_waiting
    pub(crate) fn capture_waits(&self) {
        let mut slot = relock(self.captured_waits.lock());
        if slot.is_none() {
            let mut snap: Vec<(WakeKey, Vec<usize>)> = relock(self.waits.lock())
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect();
            snap.sort();
            *slot = Some(snap);
        }
    }

    /// The captured wait table (empty when the run never cancelled),
    /// rendered for the black box.
    pub(crate) fn captured_waits(&self) -> Vec<(String, Vec<usize>)> {
        relock(self.captured_waits.lock())
            .as_ref()
            .map(|snap| snap.iter().map(|(k, v)| (k.render(), v.clone())).collect())
            .unwrap_or_default()
    }

    /// The run's scheduler counters, read after the workers join.
    pub(crate) fn stats(&self) -> SchedStats {
        SchedStats {
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            park_ns: self
                .park_bucket_ns
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum(),
            peak_runnable: self.peak_runnable.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn seeds_tasks_round_robin_and_pops_own_first() {
        let s = Scheduler::new(2, 5, None);
        // Worker 0 got 0, 2, 4; owner pops LIFO.
        assert_eq!(s.pop(0), Some(4));
        assert_eq!(s.pop(0), Some(2));
        assert_eq!(s.pop(0), Some(0));
        // Own deque empty: steal from worker 1's front (FIFO), counted.
        assert_eq!(s.pop(0), Some(1));
        assert_eq!(s.stats().steals, 1);
        assert_eq!(s.pop(1), Some(3));
        assert_eq!(s.pop(0), None);
        assert_eq!(s.stats().peak_runnable, 5);
    }

    #[test]
    fn block_reclaims_when_probe_turns_true() {
        let s = Scheduler::new(1, 1, None);
        assert_eq!(s.pop(0), Some(0));
        // Condition already true at re-probe: the worker keeps the task.
        assert!(s.block(0, WakeKey::Sem(0), None, || true));
        // And the wait table is clean: a later wake finds nothing.
        assert_eq!(s.wake(WakeKey::Sem(0), 0), 0);
    }

    #[test]
    fn wake_moves_blocked_tasks_to_deque() {
        let s = Scheduler::new(1, 2, None);
        assert_eq!(s.pop(0), Some(1));
        assert_eq!(s.pop(0), Some(0));
        assert!(!s.block(0, WakeKey::Recv(7), None, || false));
        assert_eq!(s.pop(0), None);
        assert_eq!(s.wake(WakeKey::Recv(7), 0), 1);
        assert_eq!(s.pop(0), Some(0));
    }

    #[test]
    fn timers_fire_into_injector() {
        let s = Scheduler::new(1, 1, None);
        assert_eq!(s.pop(0), Some(0));
        let past = Instant::now() - Duration::from_millis(1);
        assert!(!s.block(0, WakeKey::Sleep(0), Some(past), || false));
        let (woke, next) = s.fire_timers(Instant::now());
        assert!(woke);
        assert_eq!(next, None);
        assert_eq!(s.pop(0), Some(0));
        // A stale timer for an ended wait is discarded silently.
        let (woke, _) = s.fire_timers(Instant::now());
        assert!(!woke);
    }

    #[test]
    fn drain_wakes_everything() {
        let s = Scheduler::new(2, 3, None);
        for _ in 0..2 {
            s.pop(0);
        }
        s.pop(1);
        assert!(!s.block(0, WakeKey::Sem(1), None, || false));
        assert!(!s.block(1, WakeKey::Gate(0), None, || false));
        assert!(!s.block(2, WakeKey::Send(3), None, || false));
        s.drain_waiting();
        let mut got = [s.pop(0), s.pop(0), s.pop(0)]
            .into_iter()
            .flatten()
            .collect::<Vec<_>>();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn finish_accounting_reaches_zero() {
        let s = Scheduler::new(1, 2, None);
        assert!(!s.is_finished());
        s.task_done();
        assert!(!s.is_finished());
        s.task_done();
        assert!(s.is_finished());
    }

    /// The parker's sequence protocol: a bump between epoch-read and
    /// park aborts the park, so an enqueue cannot be slept through.
    #[test]
    fn parker_bump_between_probe_and_park_aborts_sleep() {
        let s = Scheduler::new(1, 1, None);
        let seen = s.parker.epoch();
        s.parker.bump();
        let t0 = Instant::now();
        s.park(0, seen, Some(Instant::now() + Duration::from_secs(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(s.stats().parks, 1);
    }
}
