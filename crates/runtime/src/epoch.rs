//! Epoch barriers and checkpoints: the runtime half of the compiler's
//! [`epochs`](mscclang::passes::epochs) pass.
//!
//! The pass proves per-block watermark vectors at which no message is in
//! flight and no semaphore wait spans the frontier; [`schedule`]
//! (`mscclang::passes::epochs::schedule`) turns them into monotonic
//! per-block completed-instruction *targets*. Tasks count completed
//! instruction instances anyway (it is the semaphore encoding), so hitting
//! a boundary costs one comparison per instruction.
//!
//! The barrier is **non-blocking** so it composes with the work-stealing
//! scheduler: a task whose position reaches a boundary target calls
//! [`EpochState::arrive`] and, unless it was the last arriver, suspends on
//! the boundary's gate key in the scheduler's wait table — the worker
//! thread moves on to other runnable tasks instead of parking. The **last
//! arriver** is the designated snapshotter: with every task suspended at a
//! verifier-checked consistent cut, rank memory alone is the complete
//! distributed state, and one [`RankMemory::snapshot_into`] pass per rank
//! captures it into recycled staging buffers. Publication is guarded
//! against tearing by *invalidate-then-write*: the previous checkpoint is
//! unpublished before the first byte of the new one is copied, so a fault
//! mid-snapshot degrades recovery to a full retry but can never surface a
//! half-written snapshot as resumable. Cancellation observed at the gate
//! skips the snapshot entirely (the gate still releases, so suspended
//! tasks wake, observe the cancellation, and unwind).
//!
//! On failure the latest published checkpoint travels out in
//! [`EpochStatus`]; the recovery ladder feeds it back as a *resume*: rank
//! memory is restored, each task starts at its watermark, FIFO sequence
//! numbers and semaphore values are re-derived from the watermarks, and
//! FIFOs restart empty because nothing crossed the cut.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::cancel::CancelToken;
use crate::memory::{RankMemory, SpaceBuffers};
use crate::semaphore::Semaphore;

/// A published epoch checkpoint: everything needed to resume a failed run
/// from its last consistent cut instead of from scratch. Produced by
/// [`execute_resumable`](crate::executor::execute_resumable) on transient
/// failure and consumed by the same entry point (via the recovery
/// ladder's *resume* decision) on the next attempt.
pub struct EpochCheckpoint {
    /// Index of the boundary this checkpoint was taken at, within the
    /// run's boundary schedule.
    pub(crate) boundary: usize,
    /// The boundary's per-block completed-instruction targets
    /// `[rank][tb]` — the watermarks workers restart at.
    pub(crate) targets: Vec<Vec<u64>>,
    /// Each rank's snapshotted spaces, in rank order.
    pub(crate) memories: Vec<SpaceBuffers>,
    /// Total instruction instances the checkpoint covers (the sum of
    /// `targets`) — what a resume skips.
    pub(crate) instructions: u64,
}

impl EpochCheckpoint {
    /// Index of the boundary the checkpoint was taken at.
    #[must_use]
    pub fn boundary(&self) -> usize {
        self.boundary
    }

    /// Instruction instances the checkpoint covers — the work a resume
    /// does not redo.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

impl std::fmt::Debug for EpochCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCheckpoint")
            .field("boundary", &self.boundary)
            .field("instructions", &self.instructions)
            .field("ranks", &self.memories.len())
            .finish()
    }
}

/// What the epoch subsystem observed during one execution attempt.
#[derive(Debug, Default)]
pub struct EpochStatus {
    /// Boundaries the run's schedule placed (0 when epochs are off or the
    /// Auto cost model declined to checkpoint).
    pub boundaries: usize,
    /// Checkpoints published during this attempt (excluding a re-seeded
    /// resume checkpoint).
    pub epochs_completed: u64,
    /// Instruction instances skipped by resuming (0 on a fresh start).
    pub steps_resumed: u64,
    /// Instruction instances actually executed by this attempt, partial
    /// progress of a failed attempt included.
    pub executed: u64,
    /// The latest published checkpoint, present only when the attempt
    /// failed transiently with a checkpoint to resume from.
    pub checkpoint: Option<EpochCheckpoint>,
}

/// One boundary's barrier: an arrival counter and a release latch, both
/// built on the runtime's monotonic [`Semaphore`]. Neither side blocks:
/// the scheduler suspends non-last arrivers on the gate's wait key and
/// probes [`released`](Gate::released) on wakeup.
struct Gate {
    arrived: Semaphore,
    released: Semaphore,
}

/// The staging slot checkpoints are written into. One set of buffers
/// serves the whole run: a newer checkpoint overwrites the older one
/// (invalidate-then-write, see the module docs).
struct CheckpointSlot {
    buffers: Vec<SpaceBuffers>,
    /// Boundary index of the checkpoint currently held, if any.
    published: Option<usize>,
    /// Instruction instances that checkpoint covers.
    instructions: u64,
    /// Checkpoints published during this run (resume re-seeding excluded).
    fresh: u64,
}

/// Shared state of one epoch-enabled execution: the schedule, the gates,
/// the staging slot, and per-task progress counters that survive a
/// task's death (the error path reads them for `steps_redone`
/// accounting).
pub(crate) struct EpochState {
    /// Per-boundary targets `[boundary][rank][tb]`.
    boundaries: Vec<Vec<Vec<u64>>>,
    num_workers: u64,
    gates: Vec<Gate>,
    /// Every rank's memory, for the designated snapshotter.
    memories: Vec<Arc<RankMemory>>,
    slot: Mutex<CheckpointSlot>,
    /// Absolute completed-instruction position per task, updated with a
    /// relaxed store each instruction. Seeded with the resume watermarks
    /// so `sum - start_total` is executed work even for tasks that die
    /// before their first store.
    progress: Vec<AtomicU64>,
}

impl EpochState {
    /// Builds the state for a run with `boundaries` scheduled over
    /// `memories.len()` ranks and `num_workers` thread blocks. `staging`
    /// provides one [`SpaceBuffers`] per rank (recycled from an arena or
    /// a consumed resume checkpoint; grown on first use otherwise).
    pub(crate) fn new(
        boundaries: Vec<Vec<Vec<u64>>>,
        num_workers: usize,
        memories: Vec<Arc<RankMemory>>,
        staging: Vec<SpaceBuffers>,
        starts: &[Vec<u64>],
    ) -> Self {
        let gates = (0..boundaries.len())
            .map(|_| Gate {
                arrived: Semaphore::new(),
                released: Semaphore::new(),
            })
            .collect();
        let progress = starts
            .iter()
            .flat_map(|g| g.iter().map(|&s| AtomicU64::new(s)))
            .collect();
        Self {
            boundaries,
            num_workers: num_workers as u64,
            gates,
            memories,
            slot: Mutex::new(CheckpointSlot {
                buffers: staging,
                published: None,
                instructions: 0,
                fresh: 0,
            }),
            progress,
        }
    }

    /// Re-seeds the slot with a consumed resume checkpoint so that an
    /// attempt failing before any *new* boundary still hands the same
    /// checkpoint back out. Call before the workers start.
    pub(crate) fn seed_resume(&self, boundary: usize, instructions: u64) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        slot.published = Some(boundary);
        slot.instructions = instructions;
    }

    /// This task's per-boundary targets, cloned out for the hot loop.
    pub(crate) fn targets_for(&self, rank: usize, tb: usize) -> Vec<u64> {
        self.boundaries.iter().map(|b| b[rank][tb]).collect()
    }

    /// Records `completed` as task `worker`'s absolute position.
    pub(crate) fn note_progress(&self, worker: usize, completed: u64) {
        self.progress[worker].store(completed, Ordering::Relaxed);
    }

    /// Registers the calling task's arrival at boundary `b` without
    /// blocking. Returns `true` iff this was the **last** arrival: the
    /// snapshot has been taken (unless cancellation already tripped) and
    /// the gate released — the caller must then wake every task suspended
    /// on the boundary's gate key. On `false` the caller suspends until
    /// [`is_released`](Self::is_released) holds.
    pub(crate) fn arrive(&self, b: usize, cancel: &CancelToken) -> bool {
        let gate = &self.gates[b];
        if gate.arrived.increment() < self.num_workers {
            return false;
        }
        // Every task is suspended at a verifier-checked consistent cut:
        // FIFOs drained, inboxes empty, semaphores quiesced — rank memory
        // is the complete state. Snapshot it — unless a failure tripped
        // cancellation, in which case the memories may be mid-epoch
        // somewhere and must not be published.
        if !cancel.is_cancelled() {
            let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
            // Invalidate-then-write: no torn snapshot can ever be
            // published, at worst the previous checkpoint is lost.
            slot.published = None;
            for (mem, snap) in self.memories.iter().zip(slot.buffers.iter_mut()) {
                mem.snapshot_into(snap);
            }
            slot.published = Some(b);
            slot.instructions = self.boundaries[b].iter().flatten().sum();
            slot.fresh += 1;
        }
        gate.released.set(1);
        true
    }

    /// Whether boundary `b`'s gate has been released — the readiness
    /// probe for tasks suspended at the gate.
    pub(crate) fn is_released(&self, b: usize) -> bool {
        self.gates[b].released.current() >= 1
    }

    /// Tears the state down after the workers have joined, producing the
    /// attempt's [`EpochStatus`] plus any staging buffers to recycle.
    ///
    /// `start_total` is the resume watermark sum (0 fresh); `failed`
    /// selects whether the held checkpoint should travel out (failure)
    /// or its buffers be recycled (success — there is nothing to resume).
    pub(crate) fn finish(self, start_total: u64, failed: bool) -> (EpochStatus, Vec<SpaceBuffers>) {
        let executed: u64 = self
            .progress
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .sum::<u64>()
            .saturating_sub(start_total);
        let slot = self
            .slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let mut status = EpochStatus {
            boundaries: self.boundaries.len(),
            epochs_completed: slot.fresh,
            steps_resumed: start_total,
            executed,
            checkpoint: None,
        };
        if failed {
            if let Some(b) = slot.published {
                status.checkpoint = Some(EpochCheckpoint {
                    boundary: b,
                    targets: self.boundaries[b].clone(),
                    memories: slot.buffers,
                    instructions: slot.instructions,
                });
                return (status, Vec::new());
            }
        }
        (status, slot.buffers)
    }
}

/// A task's epoch context: the shared state plus this task's slice of
/// the schedule, carried through the interpreter loop. Boundary targets
/// are indexed by the task's *flat spawn order*, which is stable however
/// the scheduler migrates the task between worker threads — watermark
/// accounting is scheduler-invariant.
pub(crate) struct WorkerEpoch {
    pub(crate) state: Arc<EpochState>,
    /// This task's target per boundary (monotonic).
    pub(crate) targets: Vec<u64>,
    /// Next boundary to arrive at.
    pub(crate) next: usize,
    /// Flat task index (spawn order) for progress notes.
    pub(crate) worker: usize,
}

impl WorkerEpoch {
    /// Called after every completed instruction (and once at start, for
    /// resumed tasks already sitting on a boundary): records progress and
    /// reports the boundary this position lands on, if any. The caller
    /// then runs the arrive/suspend protocol and acknowledges with
    /// [`passed`](Self::passed) once through the gate.
    pub(crate) fn boundary_due(&mut self, completed: u64) -> Option<usize> {
        self.state.note_progress(self.worker, completed);
        if self.next < self.targets.len() && self.targets[self.next] <= completed {
            debug_assert_eq!(
                self.targets[self.next], completed,
                "task overshot an epoch boundary"
            );
            return Some(self.next);
        }
        None
    }

    /// Marks the current boundary as passed. Call exactly once per
    /// boundary reported by [`boundary_due`](Self::boundary_due), after
    /// the gate released. The next `boundary_due` probe (at the same
    /// `completed` position) then reports the following boundary if its
    /// target coincides.
    pub(crate) fn passed(&mut self) {
        self.next += 1;
    }
}
