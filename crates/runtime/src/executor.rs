//! The interpreter proper: one thread per IR thread block, a tiling outer
//! loop, bounded-channel connections and semaphore dependencies
//! (Figure 5).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use msccl_topology::Protocol;

use mscclang::{IrProgram, OpCode, ReduceOp};

use crate::memory::RankMemory;
use crate::semaphore::Semaphore;

/// Options controlling an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Protocol whose slot size sets the default tile size and whose slot
    /// count bounds each connection's FIFO (§6.1).
    pub protocol: Protocol,
    /// Override for the tile size in elements; defaults to
    /// `slot_bytes / 4`.
    pub tile_elems: Option<usize>,
    /// The reduction operator.
    pub reduce_op: ReduceOp,
    /// How long any single blocking step may wait before the run is
    /// declared hung (a deadlock diagnostic for hand-written IR; compiled
    /// IR is deadlock-free by construction).
    pub timeout: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            protocol: Protocol::Simple,
            tile_elems: None,
            reduce_op: ReduceOp::Sum,
            timeout: Duration::from_secs(20),
        }
    }
}

/// Errors from the functional runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The provided inputs do not match the program's layout.
    InputShape {
        /// Description of the mismatch.
        message: String,
    },
    /// A thread block blocked longer than the timeout (deadlock or hang).
    Hang {
        /// Rank of the stuck thread block.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step it was executing.
        step: usize,
    },
    /// A worker thread panicked.
    WorkerPanic,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputShape { message } => write!(f, "bad input shape: {message}"),
            RuntimeError::Hang { rank, tb, step } => {
                write!(f, "execution hung at rank {rank} tb {tb} step {step}")
            }
            RuntimeError::WorkerPanic => write!(f, "a thread block worker panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {}

type ConnKey = (usize, usize, usize); // (src rank, dst rank, channel)

/// Executes a compiled program over real `f32` buffers.
///
/// `inputs[r]` must hold `in_chunks * chunk_elems` elements. Returns each
/// rank's output buffer (`out_chunks * chunk_elems` elements).
///
/// # Errors
///
/// Returns [`RuntimeError`] on shape mismatches, hangs and worker panics.
pub fn execute(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<Vec<Vec<f32>>, RuntimeError> {
    let collective = &ir.collective;
    let num_ranks = ir.num_ranks();
    if inputs.len() != num_ranks {
        return Err(RuntimeError::InputShape {
            message: format!("{} input buffers for {} ranks", inputs.len(), num_ranks),
        });
    }
    let in_elems = collective.in_chunks() * chunk_elems;
    for (r, buf) in inputs.iter().enumerate() {
        if buf.len() != in_elems {
            return Err(RuntimeError::InputShape {
                message: format!(
                    "rank {r} input has {} elements, expected {in_elems}",
                    buf.len()
                ),
            });
        }
    }
    if chunk_elems == 0 {
        return Err(RuntimeError::InputShape {
            message: "chunk_elems must be positive".into(),
        });
    }

    let params = opts.protocol.params();
    let tile_elems = opts
        .tile_elems
        .unwrap_or_else(|| ((params.slot_bytes as usize) / std::mem::size_of::<f32>()).max(1));
    let num_tiles = chunk_elems.div_ceil(tile_elems);
    let op = opts.reduce_op;

    // ---- Memory, loaded with the inputs.
    let memories: Vec<Arc<RankMemory>> = (0..num_ranks)
        .map(|r| {
            let mem = RankMemory::new(collective, r, ir.gpu(r).scratch_chunks, chunk_elems);
            for index in 0..collective.in_chunks() {
                let base = index * chunk_elems;
                mem.write(
                    collective,
                    mscclang::BufferKind::Input,
                    index,
                    0,
                    &inputs[r][base..base + chunk_elems],
                );
            }
            Arc::new(mem)
        })
        .collect();

    // ---- Connections: one bounded channel (FIFO slots) per (src, dst, ch).
    let mut senders: HashMap<ConnKey, Sender<Vec<f32>>> = HashMap::new();
    let mut receivers: HashMap<ConnKey, Receiver<Vec<f32>>> = HashMap::new();
    for gpu in &ir.gpus {
        for tb in &gpu.threadblocks {
            if let Some(peer) = tb.send_peer {
                let key = (gpu.rank, peer, tb.channel);
                let (s, r) = bounded(params.num_slots);
                senders.insert(key, s);
                receivers.insert(key, r);
            }
        }
    }

    // ---- Semaphores, per (rank, tb).
    let semaphores: HashMap<(usize, usize), Arc<Semaphore>> = ir
        .gpus
        .iter()
        .flat_map(|g| {
            g.threadblocks
                .iter()
                .map(|t| ((g.rank, t.id), Arc::new(Semaphore::new())))
        })
        .collect();

    // Instruction counts per tb, for monotonic semaphore encoding.
    let tb_len: HashMap<(usize, usize), u64> = ir
        .gpus
        .iter()
        .flat_map(|g| {
            g.threadblocks
                .iter()
                .map(|t| ((g.rank, t.id), t.instructions.len() as u64))
        })
        .collect();

    let result: Result<(), RuntimeError> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for gpu in &ir.gpus {
            for tb in &gpu.threadblocks {
                let mem = Arc::clone(&memories[gpu.rank]);
                let sem = Arc::clone(&semaphores[&(gpu.rank, tb.id)]);
                let send = tb
                    .send_peer
                    .map(|p| senders[&(gpu.rank, p, tb.channel)].clone());
                let recv = tb
                    .recv_peer
                    .map(|p| receivers[&(p, gpu.rank, tb.channel)].clone());
                let dep_sems: Vec<Vec<(Arc<Semaphore>, u64)>> = tb
                    .instructions
                    .iter()
                    .map(|i| {
                        i.deps
                            .iter()
                            .map(|d| {
                                (
                                    Arc::clone(&semaphores[&(gpu.rank, d.tb)]),
                                    tb_len[&(gpu.rank, d.tb)],
                                )
                            })
                            .collect()
                    })
                    .collect();
                let rank = gpu.rank;
                let tb_ref = tb;
                let collective = collective.clone();
                let timeout = opts.timeout;
                handles.push(scope.spawn(move || -> Result<(), RuntimeError> {
                    let my_len = tb_ref.instructions.len() as u64;
                    let mut completed = 0u64;
                    for tile in 0..num_tiles {
                        let elem_off = tile * tile_elems;
                        let len = (chunk_elems - elem_off).min(tile_elems);
                        for (s, instr) in tb_ref.instructions.iter().enumerate() {
                            // Wait on cross-thread-block dependencies.
                            for (d_idx, dep) in instr.deps.iter().enumerate() {
                                let (sem_d, dep_len) = &dep_sems[s][d_idx];
                                let target = tile as u64 * dep_len + dep.step as u64 + 1;
                                if !sem_d.wait_at_least(target, timeout) {
                                    return Err(RuntimeError::Hang {
                                        rank,
                                        tb: tb_ref.id,
                                        step: s,
                                    });
                                }
                            }
                            let read_src = |elem_off: usize, len: usize| -> Vec<f32> {
                                let loc = instr.src.expect("instruction requires src");
                                let mut out = Vec::with_capacity(instr.count * len);
                                for i in 0..instr.count {
                                    out.extend(mem.read(
                                        &collective,
                                        loc.buffer,
                                        loc.index + i,
                                        elem_off,
                                        len,
                                    ));
                                }
                                out
                            };
                            let write_dst = |values: &[f32]| {
                                let loc = instr.dst.expect("instruction requires dst");
                                for i in 0..instr.count {
                                    mem.write(
                                        &collective,
                                        loc.buffer,
                                        loc.index + i,
                                        elem_off,
                                        &values[i * len..(i + 1) * len],
                                    );
                                }
                            };
                            let combine_dst = |values: &[f32]| -> Vec<f32> {
                                let loc = instr.dst.expect("instruction requires dst");
                                let mut out = Vec::with_capacity(instr.count * len);
                                for i in 0..instr.count {
                                    out.extend(mem.combine(
                                        &collective,
                                        loc.buffer,
                                        loc.index + i,
                                        elem_off,
                                        &values[i * len..(i + 1) * len],
                                        |a, b| op.apply(a, b),
                                    ));
                                }
                                out
                            };
                            let receive = || -> Result<Vec<f32>, RuntimeError> {
                                recv.as_ref()
                                    .expect("recv op requires a receive connection")
                                    .recv_timeout(timeout)
                                    .map_err(|_| RuntimeError::Hang {
                                        rank,
                                        tb: tb_ref.id,
                                        step: s,
                                    })
                            };
                            let transmit = |values: Vec<f32>| -> Result<(), RuntimeError> {
                                send.as_ref()
                                    .expect("send op requires a send connection")
                                    .send_timeout(values, timeout)
                                    .map_err(|_| RuntimeError::Hang {
                                        rank,
                                        tb: tb_ref.id,
                                        step: s,
                                    })
                            };

                            match instr.op {
                                OpCode::Nop => {}
                                OpCode::Send => transmit(read_src(elem_off, len))?,
                                OpCode::Recv => {
                                    let data = receive()?;
                                    write_dst(&data);
                                }
                                OpCode::Copy => {
                                    let data = read_src(elem_off, len);
                                    write_dst(&data);
                                }
                                OpCode::Reduce => {
                                    let data = read_src(elem_off, len);
                                    let _ = combine_dst(&data);
                                }
                                OpCode::RecvReduceCopy => {
                                    let data = receive()?;
                                    let _ = combine_dst(&data);
                                }
                                OpCode::RecvCopySend => {
                                    let data = receive()?;
                                    write_dst(&data);
                                    transmit(data)?;
                                }
                                OpCode::RecvReduceSend => {
                                    let data = receive()?;
                                    let local = read_src(elem_off, len);
                                    let merged: Vec<f32> = local
                                        .iter()
                                        .zip(&data)
                                        .map(|(&a, &b)| op.apply(a, b))
                                        .collect();
                                    transmit(merged)?;
                                }
                                OpCode::RecvReduceCopySend => {
                                    let data = receive()?;
                                    let merged = combine_dst(&data);
                                    transmit(merged)?;
                                }
                            }
                            completed += 1;
                            debug_assert_eq!(completed, tile as u64 * my_len + s as u64 + 1);
                            if instr.has_dep {
                                sem.set(completed);
                            }
                        }
                    }
                    Ok(())
                }));
            }
        }
        let mut status = Ok(());
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if status.is_ok() {
                        status = Err(e);
                    }
                }
                Err(_) => {
                    if status.is_ok() {
                        status = Err(RuntimeError::WorkerPanic);
                    }
                }
            }
        }
        status
    });
    result?;

    // ---- Extract outputs.
    let outputs = (0..num_ranks)
        .map(|r| {
            let mut out = Vec::with_capacity(collective.out_chunks() * chunk_elems);
            for index in 0..collective.out_chunks() {
                out.extend(memories[r].read(
                    collective,
                    mscclang::BufferKind::Output,
                    index,
                    0,
                    chunk_elems,
                ));
            }
            out
        })
        .collect();
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions};

    fn run_and_check(program: &mscclang::Program, instances: usize, chunk_elems: usize) {
        let ir = compile(
            program,
            &CompileOptions::default().with_instances(instances),
        )
        .unwrap();
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 7);
        let outputs = execute(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();
    }

    #[test]
    fn ring_allreduce_computes_correct_sums() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        run_and_check(&p, 1, 16);
    }

    #[test]
    fn multi_channel_multi_instance_ring() {
        let p = msccl_algos::ring_all_reduce(4, 2).unwrap();
        run_and_check(&p, 2, 8);
    }

    #[test]
    fn tiling_pipelines_large_chunks() {
        // Force multiple tiles with a tiny tile size.
        let p = msccl_algos::ring_all_reduce(3, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 10;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 3);
        let opts = RunOptions {
            tile_elems: Some(3),
            ..RunOptions::default()
        };
        let outputs = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();
    }

    #[test]
    fn rejects_bad_input_shape() {
        let p = msccl_algos::ring_all_reduce(2, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let err = execute(&ir, &[vec![0.0; 3]], 4, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::InputShape { .. }));
    }

    /// A hand-built IR where both ranks only receive: the runtime's
    /// watchdog must report the hang instead of blocking forever.
    #[test]
    fn hang_is_detected() {
        use mscclang::{Collective, IrProgram};
        let collective = Collective::all_gather(2, 1, false);
        let gpu = |rank: usize, peer: usize| mscclang::ir::IrGpu {
            rank,
            input_chunks: 1,
            output_chunks: 2,
            scratch_chunks: 0,
            threadblocks: vec![mscclang::IrThreadBlock {
                id: 0,
                send_peer: Some(peer),
                recv_peer: Some(peer),
                channel: 0,
                instructions: vec![
                    mscclang::IrInstruction {
                        step: 0,
                        op: OpCode::Recv,
                        src: None,
                        dst: Some(mscclang::ir::IrLoc {
                            buffer: mscclang::BufferKind::Output,
                            index: 0,
                        }),
                        count: 1,
                        deps: vec![],
                        has_dep: false,
                    },
                    mscclang::IrInstruction {
                        step: 1,
                        op: OpCode::Send,
                        src: Some(mscclang::ir::IrLoc {
                            buffer: mscclang::BufferKind::Input,
                            index: 0,
                        }),
                        dst: None,
                        count: 1,
                        deps: vec![],
                        has_dep: false,
                    },
                ],
            }],
        };
        let ir = IrProgram {
            name: "deadlock".into(),
            collective,
            protocol: None,
            num_channels: 1,
            refinement: 1,
            gpus: vec![gpu(0, 1), gpu(1, 0)],
        };
        let opts = RunOptions {
            timeout: std::time::Duration::from_millis(200),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        assert!(matches!(err, RuntimeError::Hang { .. }), "got {err:?}");
    }

    use mscclang::OpCode;

    #[test]
    fn max_reduction_operator() {
        let p = msccl_algos::allpairs_all_reduce(3).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 4;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 11);
        let opts = RunOptions {
            reduce_op: ReduceOp::Max,
            ..RunOptions::default()
        };
        let outputs = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Max,
        )
        .unwrap();
    }
}
