//! The interpreter proper: one thread per IR thread block, a tiling outer
//! loop, bounded FIFO connections and semaphore dependencies (Figure 5).
//!
//! Execution can be traced: [`execute_traced`] returns a wall-clock
//! [`Trace`] built from lock-free per-worker event buffers merged after
//! the threads join. The untraced [`execute`] path skips every event
//! push. Independently of tracing, each worker keeps a small ring buffer
//! of its recent activity, and when the run fails the error carries every
//! thread block's last few entries — enough to see who stalled on what.
//!
//! Failure handling is *cooperative* (see [`crate::cancel`]): the first
//! worker to fail — step timeout, global deadline, panic, injected kill —
//! trips a shared [`CancelToken`] recording the originating failure, and
//! every other worker aborts its blocking waits within milliseconds. The
//! run therefore reports one precise origin instead of N cascading
//! timeouts, and a kill anywhere tears the whole execution down in well
//! under a second regardless of the configured timeouts.
//!
//! Deterministic faults ([`msccl_faults`]) are injected at two hook
//! points: block faults (stall/kill) as an instruction starts, delivery
//! faults (drop/delay/duplicate/corrupt) as a tile is handed to its FIFO.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use msccl_faults::{corrupt_payload, BlockAction, DeliveryAction, FaultInjector, FaultPlanError};
use msccl_metrics::{names, Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use msccl_topology::Protocol;
use msccl_trace::{ClockDomain, EventKind, Trace, TraceEvent};

use mscclang::{IrProgram, OpCode, ReduceOp};

use mscclang::EpochMode;

use crate::cancel::{CancelToken, FailureCause, FailureOrigin, CANCEL_POLL};
use crate::epoch::{EpochCheckpoint, EpochState, EpochStatus, PauseOutcome, WorkerEpoch};
use crate::fifo::{Fifo, FifoStop, SendMoment};
use crate::memory::{RankMemory, SpaceBuffers};
use crate::pool::{PoolStats, PooledTile, TilePool};
use crate::semaphore::{Semaphore, WaitOutcome};

/// Options controlling an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Protocol whose slot size sets the default tile size and whose slot
    /// count bounds each connection's FIFO (§6.1).
    pub protocol: Protocol,
    /// Override for the tile size in elements; defaults to
    /// `slot_bytes / 4`.
    pub tile_elems: Option<usize>,
    /// The reduction operator.
    pub reduce_op: ReduceOp,
    /// How long any single blocking step may wait before the run is
    /// declared hung (a deadlock diagnostic for hand-written IR; compiled
    /// IR is deadlock-free by construction). Progress resets the clock:
    /// a run may legitimately take far longer than this end to end, as
    /// long as no *individual* semaphore wait, FIFO send or FIFO receive
    /// stalls past it. Bound total wall-clock time with [`deadline`].
    ///
    /// [`deadline`]: RunOptions::deadline
    pub timeout: Duration,
    /// Optional global wall-clock budget for the whole execution,
    /// measured from entry. Unlike [`timeout`], this fires even when
    /// every step makes (slow) progress. `None` means unbounded.
    ///
    /// [`timeout`]: RunOptions::timeout
    pub deadline: Option<Duration>,
    /// Whether to keep the always-on metric counters (bytes/messages per
    /// connection, wait and block time, per-instruction-kind latency
    /// histograms — see [`msccl_metrics::names`]). On by default: the hot
    /// path per counter is one relaxed atomic add into a per-worker
    /// shard, and the throughput bench gates the total overhead below a
    /// few percent. Disable only to measure that overhead.
    pub metrics: bool,
    /// Epoch checkpoint placement (`--epochs`). `Off` (the default) runs
    /// without barriers or snapshots; `Auto` lets the traffic-budget
    /// cost model pick a count (possibly zero — short runs are cheaper
    /// to retry than to checkpoint); `Count(n)` forces `n` boundaries,
    /// clamped to the consistent cut positions available. See
    /// [`crate::epoch`] for the machinery and
    /// [`execute_resumable`] for resuming from a checkpoint.
    pub epochs: EpochMode,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            protocol: Protocol::Simple,
            tile_elems: None,
            reduce_op: ReduceOp::Sum,
            timeout: Duration::from_secs(20),
            deadline: None,
            metrics: true,
            epochs: EpochMode::Off,
        }
    }
}

/// Errors from the functional runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The provided inputs do not match the program's layout.
    InputShape {
        /// Description of the mismatch.
        message: String,
    },
    /// The [`RunOptions`] are self-contradictory or degenerate.
    InvalidOptions {
        /// Which option, and why.
        message: String,
    },
    /// A fault plan does not fit the program it was asked to disrupt.
    InvalidFaultPlan {
        /// The underlying [`FaultPlanError`], rendered.
        message: String,
    },
    /// A thread block blocked longer than the timeout (deadlock or hang).
    Hang {
        /// Rank of the stuck thread block.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step it was executing.
        step: usize,
        /// Every thread block's most recent activity (one line per ring
        /// entry, oldest first), plus any injected faults that struck.
        context: Vec<String>,
        /// Observed cancellation latency: time from the failing worker
        /// tripping the cancel token to the last worker joining. This is
        /// what "prompt teardown" means, independent of how loaded the
        /// host is before or after the run.
        drain: Duration,
    },
    /// The global wall-clock [`deadline`](RunOptions::deadline) passed.
    DeadlineExceeded {
        /// Rank of the thread block that observed the deadline first.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step it was executing.
        step: usize,
        /// Every thread block's most recent activity, plus any injected
        /// faults that struck.
        context: Vec<String>,
        /// Observed cancellation latency (see [`RuntimeError::Hang`]).
        drain: Duration,
    },
    /// A worker thread panicked.
    WorkerPanic {
        /// Rank of the panicking thread block.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step it was executing when it panicked.
        step: usize,
        /// The panic payload, stringified.
        payload: String,
        /// Every thread block's most recent activity.
        context: Vec<String>,
        /// Observed cancellation latency (see [`RuntimeError::Hang`]).
        drain: Duration,
    },
    /// An injected fault killed a thread block.
    InjectedFault {
        /// Rank of the killed thread block.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step at which the fault struck.
        step: usize,
        /// The fault, rendered in fault-plan syntax.
        fault: String,
        /// Every thread block's most recent activity, plus any injected
        /// faults that struck.
        context: Vec<String>,
        /// Observed cancellation latency (see [`RuntimeError::Hang`]).
        drain: Duration,
    },
    /// Outputs did not match the collective's reference semantics (raised
    /// by the recovery layer's verification, never by plain execution).
    VerificationFailed {
        /// First mismatch found.
        message: String,
    },
    /// The whole-recovery deadline budget ([`RunOptions::deadline`] under
    /// [`execute_with_recovery`](crate::execute_with_recovery)) ran out
    /// between attempts: the remaining budget was smaller than the next
    /// backoff, so the loop failed fast instead of sleeping past it.
    RecoveryBudgetExhausted {
        /// Attempts completed before the budget ran out.
        attempts: usize,
        /// The backoff that would have overrun the budget, in
        /// milliseconds.
        next_backoff_ms: u64,
        /// Budget remaining when the decision was taken, in milliseconds.
        remaining_ms: u64,
        /// The transient failure that would have been retried, rendered.
        last_error: String,
    },
}

fn write_context(f: &mut fmt::Formatter<'_>, context: &[String]) -> fmt::Result {
    if !context.is_empty() {
        write!(f, "; recent activity per thread block:")?;
        for line in context {
            write!(f, "\n  {line}")?;
        }
    }
    Ok(())
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputShape { message } => write!(f, "bad input shape: {message}"),
            RuntimeError::InvalidOptions { message } => write!(f, "invalid run options: {message}"),
            RuntimeError::InvalidFaultPlan { message } => {
                write!(f, "invalid fault plan: {message}")
            }
            RuntimeError::Hang {
                rank,
                tb,
                step,
                context,
                ..
            } => {
                write!(f, "execution hung at rank {rank} tb {tb} step {step}")?;
                write_context(f, context)
            }
            RuntimeError::DeadlineExceeded {
                rank,
                tb,
                step,
                context,
                ..
            } => {
                write!(
                    f,
                    "global deadline exceeded at rank {rank} tb {tb} step {step}"
                )?;
                write_context(f, context)
            }
            RuntimeError::WorkerPanic {
                rank,
                tb,
                step,
                payload,
                context,
                ..
            } => {
                write!(
                    f,
                    "worker panicked at rank {rank} tb {tb} step {step}: {payload}"
                )?;
                write_context(f, context)
            }
            RuntimeError::InjectedFault {
                rank,
                tb,
                step,
                fault,
                context,
                ..
            } => {
                write!(
                    f,
                    "injected fault killed rank {rank} tb {tb} step {step}: {fault}"
                )?;
                write_context(f, context)
            }
            RuntimeError::VerificationFailed { message } => {
                write!(f, "output verification failed: {message}")
            }
            RuntimeError::RecoveryBudgetExhausted {
                attempts,
                next_backoff_ms,
                remaining_ms,
                last_error,
            } => {
                write!(
                    f,
                    "recovery deadline budget exhausted after {attempts} attempt(s): \
                     {remaining_ms}ms remaining < {next_backoff_ms}ms next backoff \
                     (last failure: {last_error})"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<FaultPlanError> for RuntimeError {
    fn from(e: FaultPlanError) -> Self {
        RuntimeError::InvalidFaultPlan {
            message: e.to_string(),
        }
    }
}

impl RuntimeError {
    /// Whether a retry of the same execution could plausibly succeed.
    /// Structural rejections (bad inputs, bad options, bad plans) are
    /// permanent; everything rooted in timing, scheduling or injected
    /// faults is transient under one-shot injection semantics.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            RuntimeError::InputShape { .. }
                | RuntimeError::InvalidOptions { .. }
                | RuntimeError::InvalidFaultPlan { .. }
                | RuntimeError::RecoveryBudgetExhausted { .. }
        )
    }

    /// Whether this failure interrupted an otherwise-sound execution, so
    /// resuming from an epoch checkpoint is safe. Verification failures
    /// are excluded deliberately: a corrupting fault may have poisoned
    /// memory *before* the checkpoint was taken, so only a from-scratch
    /// retry clears it.
    #[must_use]
    pub fn is_resumable(&self) -> bool {
        matches!(
            self,
            RuntimeError::Hang { .. }
                | RuntimeError::WorkerPanic { .. }
                | RuntimeError::InjectedFault { .. }
        )
    }

    /// The observed cancellation latency — time from the failing worker
    /// tripping the cancel token to the last worker joining — for the
    /// failure variants that tear a run down. This, not wall clock around
    /// the whole call, is the right thing to assert "prompt abort" on:
    /// it excludes setup and scheduling noise on loaded hosts.
    #[must_use]
    pub fn drain(&self) -> Option<Duration> {
        match self {
            RuntimeError::Hang { drain, .. }
            | RuntimeError::DeadlineExceeded { drain, .. }
            | RuntimeError::WorkerPanic { drain, .. }
            | RuntimeError::InjectedFault { drain, .. } => Some(*drain),
            _ => None,
        }
    }
}

/// Observability counters for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Tile-pool behaviour *during this run* (allocation/reuse deltas;
    /// `free` is the pool's absolute level afterwards). With a warm
    /// shared pool (see [`execute_pooled`]), `pool.allocated` is zero.
    pub pool: PoolStats,
    /// Instruction instances completed across all thread blocks and
    /// tiles — the denominator for allocations-per-step.
    pub instructions: u64,
}

/// The tile pool [`execute`] would create internally for `ir` under
/// `opts`: buffers sized to one maximal tile (`tile_elems` × the largest
/// instruction `count`). Create one of these and pass it to
/// [`execute_pooled`] repeatedly to keep buffers warm across runs.
#[must_use]
pub fn tile_pool_for(ir: &IrProgram, opts: &RunOptions) -> Arc<TilePool> {
    let params = opts.protocol.params();
    let tile_elems = opts
        .tile_elems
        .unwrap_or_else(|| ((params.slot_bytes as usize) / std::mem::size_of::<f32>()).max(1));
    let max_count = ir
        .gpus
        .iter()
        .flat_map(|g| &g.threadblocks)
        .flat_map(|t| &t.instructions)
        .map(|i| i.count.max(1))
        .max()
        .unwrap_or(1);
    TilePool::new(tile_elems * max_count)
}

/// Warm, reusable execution state: the tile pool plus recycled rank
/// memory spaces and (optionally) result vectors. [`execute_in_arena`]
/// draws every buffer of the data path from here and stashes the space
/// buffers back after the run, so repeated executions of the same
/// program allocate nothing in steady state — not tiles, not rank
/// memory, and, when finished outputs are handed back with
/// [`recycle_outputs`](ExecArena::recycle_outputs), not result buffers
/// either. Beyond skipping `malloc`, reuse keeps the pages faulted in:
/// for large buffers that is worth more than the allocation itself.
pub struct ExecArena {
    pool: Arc<TilePool>,
    spares: Vec<SpaceBuffers>,
    outputs: Vec<Vec<f32>>,
    /// Recycled epoch-checkpoint staging buffers: drawn when a run's
    /// [`RunOptions::epochs`] schedule places boundaries, returned after
    /// the run. Like `spares`, reuse keeps the snapshot path free of
    /// steady-state allocation *and* of fresh page faults.
    snaps: Vec<SpaceBuffers>,
    /// Metric handles resolved once for the arena's program and reused
    /// by every metered run whose thread-block layout still matches.
    /// Counters accumulate across runs; a snapshotting run zeroes them
    /// first.
    metrics: Option<Arc<ArenaMetrics>>,
}

impl ExecArena {
    /// An arena whose tile pool is sized for `ir` under `opts` (see
    /// [`tile_pool_for`]). Memory-space and output buffers are adopted
    /// from whatever program runs in it, so one arena can serve
    /// different programs of similar size.
    #[must_use]
    pub fn new(ir: &IrProgram, opts: &RunOptions) -> Self {
        Self {
            pool: tile_pool_for(ir, opts),
            spares: Vec::new(),
            outputs: Vec::new(),
            snaps: Vec::new(),
            metrics: opts.metrics.then(|| Arc::new(ArenaMetrics::new(ir))),
        }
    }

    /// The arena's tile pool, e.g. for inspecting cumulative
    /// [`stats`](TilePool::stats).
    #[must_use]
    pub fn pool(&self) -> &Arc<TilePool> {
        &self.pool
    }

    /// Hands finished output buffers back for reuse as the next run's
    /// result vectors.
    pub fn recycle_outputs(&mut self, outputs: Vec<Vec<f32>>) {
        self.outputs.extend(outputs);
    }
}

type ConnKey = (usize, usize, usize); // (src rank, dst rank, channel)

/// How many recent ring entries each worker keeps for failure diagnostics.
const RING_CAPACITY: usize = 8;

/// One in this many instructions (per worker) gets a latency-histogram
/// observation. Counting every instruction is cheap; *timing* every
/// instruction is not — two clock reads dwarf the relaxed adds the rest
/// of the instrumentation costs. Sampling keeps the per-op latency
/// distribution honest while staying inside the <3% always-on budget.
/// The first instruction of every worker is always sampled, so even a
/// one-instruction run produces an observation per active opcode.
const LATENCY_SAMPLE_PERIOD: u64 = 8;

/// A phase of an instruction's life, recorded in the diagnostic ring.
#[derive(Clone, Copy)]
enum Moment {
    Started,
    WaitingDep { dep_tb: usize, target: u64 },
    BlockedRecv { src: usize, channel: usize },
    BlockedSend { dst: usize, channel: usize },
    Completed,
}

#[derive(Clone, Copy)]
struct RingEntry {
    tile: usize,
    step: usize,
    op: OpCode,
    moment: Moment,
}

/// Fixed-size ring of a worker's recent activity. Always on: pushing is a
/// couple of word stores, and it is the only evidence left when a
/// hand-written IR deadlocks or a worker panics.
struct EventRing {
    rank: usize,
    tb: usize,
    entries: [Option<RingEntry>; RING_CAPACITY],
    next: usize,
}

impl EventRing {
    fn new(rank: usize, tb: usize) -> Self {
        Self {
            rank,
            tb,
            entries: [None; RING_CAPACITY],
            next: 0,
        }
    }

    fn push(&mut self, tile: usize, step: usize, op: OpCode, moment: Moment) {
        self.entries[self.next % RING_CAPACITY] = Some(RingEntry {
            tile,
            step,
            op,
            moment,
        });
        self.next += 1;
    }

    /// The step of the most recent entry — the best available guess at
    /// where a worker was when it panicked.
    fn last_step(&self) -> usize {
        if self.next == 0 {
            return 0;
        }
        self.entries[(self.next - 1) % RING_CAPACITY].map_or(0, |e| e.step)
    }

    fn dump(&self) -> Vec<String> {
        let mut out = Vec::new();
        for i in self.next.saturating_sub(RING_CAPACITY)..self.next {
            let Some(e) = self.entries[i % RING_CAPACITY] else {
                continue;
            };
            let what = match e.moment {
                Moment::Started => "started".to_string(),
                Moment::WaitingDep { dep_tb, target } => {
                    format!("waiting on tb {dep_tb} (semaphore target {target})")
                }
                Moment::BlockedRecv { src, channel } => {
                    format!("blocked receiving from rank {src} on channel {channel}")
                }
                Moment::BlockedSend { dst, channel } => {
                    format!("blocked sending to rank {dst} on channel {channel} (FIFO full)")
                }
                Moment::Completed => "completed".to_string(),
            };
            out.push(format!(
                "rank {} tb {} tile {} step {} ({}): {what}",
                self.rank,
                self.tb,
                e.tile,
                e.step,
                e.op.mnemonic()
            ));
        }
        out
    }
}

/// Per-worker trace recorder: a plain `Vec` owned by the worker thread
/// (lock-free by construction), merged into one [`Trace`] after join.
struct Recorder {
    enabled: bool,
    epoch: Instant,
    rank: usize,
    tb: usize,
    events: Vec<TraceEvent>,
}

impl Recorder {
    fn emit(&mut self, kind: EventKind) {
        if self.enabled {
            self.events.push(TraceEvent {
                ts_us: self.epoch.elapsed().as_secs_f64() * 1e6,
                rank: self.rank,
                tb: self.tb,
                kind,
            });
        }
    }
}

/// Every opcode, in [`op_index`] order, for metric-handle construction.
const ALL_OPS: [OpCode; 9] = [
    OpCode::Nop,
    OpCode::Send,
    OpCode::Recv,
    OpCode::Copy,
    OpCode::Reduce,
    OpCode::RecvReduceCopy,
    OpCode::RecvCopySend,
    OpCode::RecvReduceSend,
    OpCode::RecvReduceCopySend,
];

/// Dense index of an opcode into [`WorkerMetrics::ops`].
fn op_index(op: OpCode) -> usize {
    match op {
        OpCode::Nop => 0,
        OpCode::Send => 1,
        OpCode::Recv => 2,
        OpCode::Copy => 3,
        OpCode::Reduce => 4,
        OpCode::RecvReduceCopy => 5,
        OpCode::RecvCopySend => 6,
        OpCode::RecvReduceSend => 7,
        OpCode::RecvReduceCopySend => 8,
    }
}

/// One worker's metric handles, resolved from the [`Registry`] at spawn
/// time so the hot path never touches the registry lock: each update is
/// an array index plus a relaxed atomic add into this worker's shard.
struct WorkerMetrics {
    /// This worker's shard in every sharded metric.
    shard: usize,
    sem_wait_ns: Arc<Counter>,
    fifo_send_block_ns: Arc<Counter>,
    fifo_recv_block_ns: Arc<Counter>,
    /// `(bytes_sent, sends, peak_occupancy)` for this thread block's send
    /// connection, when it has one.
    send_conn: Option<(Arc<Counter>, Arc<Counter>, Arc<Gauge>)>,
    /// `(bytes_received, recvs)` for this thread block's receive
    /// connection, when it has one.
    recv_conn: Option<(Arc<Counter>, Arc<Counter>)>,
    /// Per-opcode `(instruction counter, latency histogram)`, indexed by
    /// [`op_index`].
    ops: Vec<(Arc<Counter>, Arc<Histogram>)>,
}

impl WorkerMetrics {
    fn new(reg: &Registry, shard: usize, rank: usize, tb: &mscclang::IrThreadBlock) -> Self {
        let conn = |src: usize, dst: usize| -> [(String, String); 3] {
            [
                ("src".to_string(), src.to_string()),
                ("dst".to_string(), dst.to_string()),
                ("channel".to_string(), tb.channel.to_string()),
            ]
        };
        fn as_refs(pairs: &[(String, String); 3]) -> Vec<(&str, &str)> {
            pairs
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect()
        }
        let send_conn = tb.send_peer.map(|peer| {
            let labels = conn(rank, peer);
            let labels = as_refs(&labels);
            (
                reg.counter(names::BYTES_SENT, &labels),
                reg.counter(names::SENDS, &labels),
                reg.gauge(names::FIFO_PEAK_OCCUPANCY, &labels),
            )
        });
        let recv_conn = tb.recv_peer.map(|peer| {
            let labels = conn(peer, rank);
            let labels = as_refs(&labels);
            (
                reg.counter(names::BYTES_RECEIVED, &labels),
                reg.counter(names::RECVS, &labels),
            )
        });
        Self {
            shard,
            sem_wait_ns: reg.counter(names::SEM_WAIT_NS, &[]),
            fifo_send_block_ns: reg.counter(names::FIFO_SEND_BLOCK_NS, &[]),
            fifo_recv_block_ns: reg.counter(names::FIFO_RECV_BLOCK_NS, &[]),
            send_conn,
            recv_conn,
            ops: ALL_OPS
                .iter()
                .map(|op| {
                    (
                        reg.counter(names::INSTRUCTIONS, &[("op", op.mnemonic())]),
                        reg.histogram(names::INSTR_LATENCY_NS, &[("op", op.mnemonic())]),
                    )
                })
                .collect(),
        }
    }

    /// Zeroes this worker's slice of every metric it writes. Called by
    /// the worker itself at the start of a snapshotting run, so reused
    /// arena handles yield a per-run snapshot without the main thread
    /// walking ~50 metrics' worth of cache lines serially: shards are
    /// disjoint per worker, and the peak-occupancy gauge has the sending
    /// thread block as its only writer.
    fn reset_own_shard(&self) {
        self.sem_wait_ns.reset_shard(self.shard);
        self.fifo_send_block_ns.reset_shard(self.shard);
        self.fifo_recv_block_ns.reset_shard(self.shard);
        if let Some((bytes_sent, sends, peak)) = &self.send_conn {
            bytes_sent.reset_shard(self.shard);
            sends.reset_shard(self.shard);
            peak.reset();
        }
        if let Some((bytes_recv, recvs)) = &self.recv_conn {
            bytes_recv.reset_shard(self.shard);
            recvs.reset_shard(self.shard);
        }
        for (count, latency) in &self.ops {
            count.reset_shard(self.shard);
            latency.reset_shard(self.shard);
        }
    }
}

/// A run's metric infrastructure, resolved once and reused: the registry
/// plus one [`WorkerMetrics`] per thread block in spawn order. Handle
/// resolution goes through the registry mutex with owned label strings
/// and allocates every metric's shard array, so doing it per run costs
/// tens of microseconds — real money against the <3% always-on overhead
/// budget at small message sizes. An [`ExecArena`] caches one of these;
/// [`Registry::reset`] between runs keeps snapshots per-run.
struct ArenaMetrics {
    registry: Registry,
    workers: Vec<WorkerMetrics>,
    /// Tile-pool counters, written on shard 0 by the main thread after
    /// the workers join.
    pool_allocated: Arc<Counter>,
    pool_reused: Arc<Counter>,
    /// One [`TbIdentity`] per worker, to detect when a different program
    /// runs in the same arena and the cached handles would mislabel its
    /// traffic.
    layout: Vec<TbIdentity>,
}

/// `(rank, tb id, channel, send peer, recv peer)` — everything the metric
/// labels are derived from.
type TbIdentity = (usize, usize, usize, Option<usize>, Option<usize>);

impl ArenaMetrics {
    fn new(ir: &IrProgram) -> Self {
        let num_workers: usize = ir.gpus.iter().map(|g| g.threadblocks.len()).sum();
        let registry = Registry::new(num_workers.max(1));
        let mut workers = Vec::with_capacity(num_workers);
        let mut layout = Vec::with_capacity(num_workers);
        for gpu in &ir.gpus {
            for tb in &gpu.threadblocks {
                workers.push(WorkerMetrics::new(&registry, workers.len(), gpu.rank, tb));
                layout.push((gpu.rank, tb.id, tb.channel, tb.send_peer, tb.recv_peer));
            }
        }
        let pool_allocated = registry.counter(names::POOL_ALLOCATED, &[]);
        let pool_reused = registry.counter(names::POOL_REUSED, &[]);
        Self {
            registry,
            workers,
            pool_allocated,
            pool_reused,
            layout,
        }
    }

    /// Whether `ir`'s thread-block layout is the one these handles were
    /// resolved for.
    fn matches(&self, ir: &IrProgram) -> bool {
        let mut expected = self.layout.iter();
        for gpu in &ir.gpus {
            for tb in &gpu.threadblocks {
                if expected.next()
                    != Some(&(gpu.rank, tb.id, tb.channel, tb.send_peer, tb.recv_peer))
                {
                    return false;
                }
            }
        }
        expected.next().is_none()
    }
}

/// Marker for a worker that stopped early. The reason lives in the
/// [`CancelToken`]: the failing worker records it there before returning
/// this, and cancelled bystanders return it without recording anything.
struct Stopped;

/// Sleeps for `duration` in [`CANCEL_POLL`] slices, aborting early on
/// cancellation. Returns whether the full duration elapsed.
fn cancellable_sleep(duration: Duration, cancel: &CancelToken) -> bool {
    let until = Instant::now() + duration;
    loop {
        if cancel.is_cancelled() {
            return false;
        }
        let remaining = until.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return true;
        }
        std::thread::sleep(remaining.min(CANCEL_POLL));
    }
}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn validate_options(opts: &RunOptions) -> Result<(), RuntimeError> {
    if opts.timeout.is_zero() {
        return Err(RuntimeError::InvalidOptions {
            message: "timeout must be positive".into(),
        });
    }
    if opts.tile_elems == Some(0) {
        return Err(RuntimeError::InvalidOptions {
            message: "tile_elems must be positive when set".into(),
        });
    }
    if opts.deadline.is_some_and(|d| d.is_zero()) {
        return Err(RuntimeError::InvalidOptions {
            message: "deadline must be positive when set".into(),
        });
    }
    Ok(())
}

/// Executes a compiled program over real `f32` buffers.
///
/// `inputs[r]` must hold `in_chunks * chunk_elems` elements. Returns each
/// rank's output buffer (`out_chunks * chunk_elems` elements).
///
/// # Errors
///
/// Returns [`RuntimeError`] on shape mismatches, invalid options, hangs,
/// deadline overruns and worker panics.
pub fn execute(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<Vec<Vec<f32>>, RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, _, _, _)| outputs)
}

/// Like [`execute`], additionally returning the run's [`ExecStats`]
/// (tile-pool allocation counters and instructions executed).
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_with_stats(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, ExecStats), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, _, stats, _)| (outputs, stats))
}

/// Like [`execute`], additionally returning the run's [`MetricsSnapshot`]
/// without recording a trace — the cheapest way to observe the always-on
/// counters. Empty when [`RunOptions::metrics`] is off.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with_metrics(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, MetricsSnapshot), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        true,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, _, _, m)| (outputs, m.unwrap_or_default()))
}

/// Like [`execute_with_stats`], reusing a caller-owned [`TilePool`]
/// (typically from [`tile_pool_for`]) so tile buffers stay warm across
/// runs: after one warmup execution, subsequent runs report zero pool
/// allocations. For the full steady state — rank memory and result
/// buffers too — use [`execute_in_arena`].
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_pooled(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    pool: &Arc<TilePool>,
) -> Result<(Vec<Vec<f32>>, ExecStats), RuntimeError> {
    let mut arena = ExecArena {
        pool: Arc::clone(pool),
        spares: Vec::new(),
        outputs: Vec::new(),
        snaps: Vec::new(),
        metrics: None,
    };
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        Some(&mut arena),
        None,
        None,
    )
    .map(|(outputs, _, stats, _)| (outputs, stats))
}

/// Like [`execute_with_stats`], drawing every buffer of the data path —
/// tiles, rank memory spaces, result vectors — from a caller-owned
/// [`ExecArena`] and returning the reusable ones to it afterwards. After
/// one warmup run (and with outputs handed back via
/// [`ExecArena::recycle_outputs`]), subsequent runs of the same program
/// perform zero steady-state allocations on the data path; this is the
/// configuration the throughput bench measures.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_in_arena(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    arena: &mut ExecArena,
) -> Result<(Vec<Vec<f32>>, ExecStats), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        Some(arena),
        None,
        None,
    )
    .map(|(outputs, _, stats, _)| (outputs, stats))
}

/// Like [`execute`], additionally recording a wall-clock [`Trace`] of
/// every instruction, semaphore wait, FIFO block and message.
///
/// Each worker thread appends to its own buffer (no synchronization on
/// the hot path beyond what execution itself needs); the buffers are
/// merged into one timestamp-sorted trace after the workers join.
///
/// # Errors
///
/// Returns [`RuntimeError`] on shape mismatches, invalid options, hangs,
/// deadline overruns and worker panics.
pub fn execute_traced(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, Trace), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        true,
        false,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, trace, _, _)| (outputs, trace.expect("tracing was enabled")))
}

/// Like [`execute_traced`], additionally returning the run's
/// [`MetricsSnapshot`]: the always-on counters — bytes and messages per
/// connection, semaphore wait and FIFO block time, per-instruction-kind
/// latency histograms, tile-pool behaviour — merged across the worker
/// shards at the end of the run. This is the entry point behind
/// `msccl profile`. The snapshot is empty when `opts.metrics` is off.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_profiled(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, Trace, MetricsSnapshot), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        true,
        true,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, trace, _, m)| {
        (
            outputs,
            trace.expect("tracing was enabled"),
            m.unwrap_or_default(),
        )
    })
}

/// Like [`execute`], with deterministic faults injected from `injector`.
///
/// Injection is one-shot per spec *across the injector's lifetime*:
/// calling this again with the same injector models a retry after a
/// transient fault. A disruptive fault surfaces as a structured error
/// whose context names the faults that struck; a corrupting fault
/// surfaces only through output verification (see
/// [`reference::check_outputs`](crate::reference::check_outputs) or the
/// recovery layer).
///
/// # Errors
///
/// Returns [`RuntimeError`] like [`execute`], plus
/// [`RuntimeError::InjectedFault`] when a planned kill strikes.
pub fn execute_with_faults(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: &FaultInjector,
) -> Result<Vec<Vec<f32>>, RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        Some(injector),
        None,
        None,
        None,
    )
    .map(|(outputs, _, _, _)| outputs)
}

/// [`execute_with_faults`] with tracing, as [`execute_traced`] is to
/// [`execute`].
///
/// # Errors
///
/// As for [`execute_with_faults`].
pub fn execute_with_faults_traced(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: &FaultInjector,
) -> Result<(Vec<Vec<f32>>, Trace), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        true,
        false,
        Some(injector),
        None,
        None,
        None,
    )
    .map(|(outputs, trace, _, _)| (outputs, trace.expect("tracing was enabled")))
}

/// The epoch-aware entry point behind the recovery ladder's *resume*
/// decision. Executes `ir` with optional fault injection, either from
/// scratch (`resume: None`) or from a previously captured
/// [`EpochCheckpoint`]: rank memory is restored from the snapshot and
/// every thread block starts at its checkpoint watermark, so only the
/// work after the last consistent cut is redone.
///
/// Alongside the result it always returns the attempt's [`EpochStatus`]:
/// boundary count, checkpoints published, instruction instances resumed
/// and executed, and — when the attempt failed transiently with a
/// checkpoint in hand — the checkpoint to feed back into the next call.
///
/// # Errors
///
/// The `Result` half fails like [`execute_with_faults`]; additionally
/// [`RuntimeError::InvalidOptions`] when `resume` does not fit `ir`
/// under `opts` (rank count or boundary schedule mismatch — e.g. a
/// checkpoint replayed against different options).
pub fn execute_resumable(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: Option<&FaultInjector>,
    resume: Option<EpochCheckpoint>,
) -> (Result<Vec<Vec<f32>>, RuntimeError>, EpochStatus) {
    let mut status = EpochStatus::default();
    let result = execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        injector,
        None,
        resume,
        Some(&mut status),
    )
    .map(|(outputs, _, _, _)| outputs);
    (result, status)
}

/// Everything one run produces: per-rank outputs, the trace when
/// tracing was on, the pool/instruction statistics, and the metrics
/// snapshot when metrics were on.
type RunProducts = (
    Vec<Vec<f32>>,
    Option<Trace>,
    ExecStats,
    Option<MetricsSnapshot>,
);

#[allow(clippy::too_many_arguments)]
fn execute_impl(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    tracing: bool,
    want_snapshot: bool,
    injector: Option<&FaultInjector>,
    arena: Option<&mut ExecArena>,
    resume: Option<EpochCheckpoint>,
    epoch_out: Option<&mut EpochStatus>,
) -> Result<RunProducts, RuntimeError> {
    let mut arena = arena;
    validate_options(opts)?;
    let collective = &ir.collective;
    let num_ranks = ir.num_ranks();
    if inputs.len() != num_ranks {
        return Err(RuntimeError::InputShape {
            message: format!("{} input buffers for {} ranks", inputs.len(), num_ranks),
        });
    }
    if chunk_elems == 0 {
        return Err(RuntimeError::InputShape {
            message: "chunk_elems must be positive".into(),
        });
    }
    let in_elems = collective.in_chunks() * chunk_elems;
    for (r, buf) in inputs.iter().enumerate() {
        if buf.len() != in_elems {
            return Err(RuntimeError::InputShape {
                message: format!(
                    "rank {r} input has {} elements, expected {in_elems}",
                    buf.len()
                ),
            });
        }
    }

    let params = opts.protocol.params();
    let tile_elems = opts
        .tile_elems
        .unwrap_or_else(|| ((params.slot_bytes as usize) / std::mem::size_of::<f32>()).max(1));
    let num_tiles = chunk_elems.div_ceil(tile_elems);
    let op = opts.reduce_op;

    // ---- Tile pool: every payload in flight lives in a recycled buffer.
    // Counters are read as before/after deltas so a shared pool's history
    // from earlier runs does not leak into this run's stats.
    let pool = match &arena {
        Some(a) => Arc::clone(&a.pool),
        None => tile_pool_for(ir, opts),
    };
    let pool_base = pool.stats();
    let mut spares = arena
        .as_mut()
        .map(|a| std::mem::take(&mut a.spares))
        .unwrap_or_default();
    let mut spare_outs = arena
        .as_mut()
        .map(|a| std::mem::take(&mut a.outputs))
        .unwrap_or_default();

    // ---- Memory, loaded with the inputs. Recycled space buffers keep
    // their warmed-up pages; the input load below completes the
    // fresh-construction semantics `RankMemory::recycled` documents.
    let memories: Vec<Arc<RankMemory>> = (0..num_ranks)
        .map(|r| {
            let spare = spares.pop().unwrap_or_default();
            let mem =
                RankMemory::recycled(collective, r, ir.gpu(r).scratch_chunks, chunk_elems, spare);
            for index in 0..collective.in_chunks() {
                let base = index * chunk_elems;
                mem.write(
                    collective,
                    mscclang::BufferKind::Input,
                    index,
                    0,
                    &inputs[r][base..base + chunk_elems],
                );
            }
            Arc::new(mem)
        })
        .collect();

    // ---- Epoch schedule. Resolve the mode first (Auto applies its
    // traffic budget and may decline to checkpoint), then turn the
    // program's verified cut chain into per-boundary completed-
    // instruction targets. Hand-built IR that never went through the
    // compiler gets its cuts computed on the fly.
    let epoch_mode = opts.epochs.resolve(ir, chunk_elems);
    let boundaries: Vec<Vec<Vec<u64>>> =
        if matches!(epoch_mode, EpochMode::Off | EpochMode::Count(0)) {
            Vec::new()
        } else {
            let computed;
            let cuts = if ir.epoch_cuts.is_empty() {
                computed = mscclang::passes::epoch_cuts(ir);
                &computed
            } else {
                &ir.epoch_cuts
            };
            mscclang::passes::schedule_epochs(ir, cuts, num_tiles, epoch_mode)
        };

    // ---- Resume validation: a checkpoint only makes sense against the
    // exact schedule it was captured under — same rank count, and its
    // boundary present with identical targets. Anything else means the
    // caller replayed it against different options, and the watermarks
    // would silently corrupt the run.
    if let Some(cp) = &resume {
        let fits = cp.memories.len() == num_ranks
            && boundaries
                .get(cp.boundary)
                .is_some_and(|b| *b == cp.targets);
        if !fits {
            return Err(RuntimeError::InvalidOptions {
                message: format!(
                    "resume checkpoint (boundary {}, {} ranks) does not match this \
                     run's epoch schedule ({} boundaries, {num_ranks} ranks)",
                    cp.boundary,
                    cp.memories.len(),
                    boundaries.len()
                ),
            });
        }
    }
    let resume_info = resume.as_ref().map(|cp| (cp.boundary, cp.instructions));
    let start_targets: Vec<Vec<u64>> = match &resume {
        Some(cp) => cp.targets.clone(),
        None => ir
            .gpus
            .iter()
            .map(|g| vec![0u64; g.threadblocks.len()])
            .collect(),
    };
    let start_total: u64 = start_targets.iter().flatten().sum();
    if let Some(cp) = &resume {
        // The snapshot was taken at a consistent cut: restoring every
        // rank's spaces over the freshly loaded inputs reproduces the
        // complete distributed state at that cut (FIFOs were drained,
        // so memory is all there was).
        for (mem, snap) in memories.iter().zip(cp.memories.iter()) {
            mem.restore_from(snap);
        }
    }
    let num_workers: usize = ir.gpus.iter().map(|g| g.threadblocks.len()).sum();
    let epoch_state: Option<Arc<EpochState>> = if boundaries.is_empty() {
        None
    } else {
        // Staging for the checkpoint slot: the consumed resume
        // checkpoint's own buffers are the natural recycling source;
        // otherwise the arena's stash from the previous run, grown with
        // empty buffers on first use.
        let mut staging: Vec<SpaceBuffers> = match resume {
            Some(cp) => cp.memories,
            None => arena
                .as_mut()
                .map(|a| std::mem::take(&mut a.snaps))
                .unwrap_or_default(),
        };
        staging.resize_with(num_ranks, SpaceBuffers::default);
        let state = EpochState::new(
            boundaries,
            num_workers,
            memories.clone(),
            staging,
            &start_targets,
        );
        if let Some((b, instructions)) = resume_info {
            // An attempt that fails again before publishing a new
            // boundary must still hand the same checkpoint back out.
            state.seed_resume(b, instructions);
        }
        Some(Arc::new(state))
    };

    // ---- Connections: one bounded FIFO per (src, dst, ch), carrying
    // pooled tiles by ownership (no copy in transit).
    let mut fifos: HashMap<ConnKey, Arc<Fifo<PooledTile>>> = HashMap::new();
    for gpu in &ir.gpus {
        for tb in &gpu.threadblocks {
            if let Some(peer) = tb.send_peer {
                fifos.insert(
                    (gpu.rank, peer, tb.channel),
                    Arc::new(Fifo::new(params.num_slots)),
                );
            }
        }
    }

    // ---- Semaphores, per (rank, tb).
    let semaphores: HashMap<(usize, usize), Arc<Semaphore>> = ir
        .gpus
        .iter()
        .flat_map(|g| {
            g.threadblocks
                .iter()
                .map(|t| ((g.rank, t.id), Arc::new(Semaphore::new())))
        })
        .collect();

    // On resume, every semaphore restarts at its block's watermark: the
    // monotonic encoding *is* the completed-instruction count, so the
    // checkpoint targets are exactly the values dependents will wait on.
    if resume_info.is_some() {
        for (r, g) in start_targets.iter().enumerate() {
            for (t, &start) in g.iter().enumerate() {
                semaphores[&(r, t)].set(start);
            }
        }
    }

    // Instruction counts per tb, for monotonic semaphore encoding.
    let tb_len: HashMap<(usize, usize), u64> = ir
        .gpus
        .iter()
        .flat_map(|g| {
            g.threadblocks
                .iter()
                .map(|t| ((g.rank, t.id), t.instructions.len() as u64))
        })
        .collect();

    // Shared wall-clock origin so all workers' timestamps are comparable;
    // the global deadline, when set, counts from here too.
    let epoch = Instant::now();
    let global_deadline = opts.deadline.map(|d| epoch + d);
    let cancel = CancelToken::new();

    // ---- Metrics: one shard per worker thread, so a hot-path update is
    // a relaxed atomic add with no sharing; merged on snapshot. An arena
    // that already carries handles for this program lends them;
    // otherwise they are resolved fresh and, when an arena is present,
    // cached for the next run. Arena counters are cumulative (the
    // Prometheus model): only a run that materializes a snapshot zeroes
    // the shards first — each worker its own, overlapping thread spawn —
    // so plain metered runs pay nothing but the hot-path adds. With no
    // arena and no snapshot requested, the counters would be dropped
    // unread, so they are not collected at all.
    let run_metrics: Option<Arc<ArenaMetrics>> = if !opts.metrics {
        None
    } else if let Some(cached) = arena
        .as_deref()
        .and_then(|a| a.metrics.clone())
        .filter(|m| m.matches(ir))
    {
        Some(cached)
    } else if want_snapshot || arena.is_some() {
        let m = Arc::new(ArenaMetrics::new(ir));
        if let Some(a) = arena.as_deref_mut() {
            a.metrics = Some(Arc::clone(&m));
        }
        Some(m)
    } else {
        None
    };
    if want_snapshot {
        if let Some(m) = &run_metrics {
            m.pool_allocated.reset_shard(0);
            m.pool_reused.reset_shard(0);
        }
    }

    type WorkerOutput = (Vec<TraceEvent>, EventRing, u64);
    let buffers_and_rings = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for gpu in &ir.gpus {
            for tb in &gpu.threadblocks {
                let mem = Arc::clone(&memories[gpu.rank]);
                let sem = Arc::clone(&semaphores[&(gpu.rank, tb.id)]);
                let pool = Arc::clone(&pool);
                let send: Option<(usize, usize, Arc<Fifo<PooledTile>>)> = tb.send_peer.map(|p| {
                    (
                        p,
                        tb.channel,
                        Arc::clone(&fifos[&(gpu.rank, p, tb.channel)]),
                    )
                });
                let recv: Option<(usize, usize, Arc<Fifo<PooledTile>>)> = tb.recv_peer.map(|p| {
                    (
                        p,
                        tb.channel,
                        Arc::clone(&fifos[&(p, gpu.rank, tb.channel)]),
                    )
                });
                let dep_sems: Vec<Vec<(Arc<Semaphore>, u64)>> = tb
                    .instructions
                    .iter()
                    .map(|i| {
                        i.deps
                            .iter()
                            .map(|d| {
                                (
                                    Arc::clone(&semaphores[&(gpu.rank, d.tb)]),
                                    tb_len[&(gpu.rank, d.tb)],
                                )
                            })
                            .collect()
                    })
                    .collect();
                let rank = gpu.rank;
                let tb_ref = tb;
                let collective = collective.clone();
                let timeout = opts.timeout;
                let cancel = Arc::clone(&cancel);
                let worker_index = handles.len();
                let worker_metrics: Option<&WorkerMetrics> =
                    run_metrics.as_deref().map(|m| &m.workers[worker_index]);
                let start = start_targets[gpu.rank][tb.id];
                let epoch_ctx: Option<WorkerEpoch> =
                    epoch_state.as_ref().map(|state| WorkerEpoch {
                        state: Arc::clone(state),
                        targets: state.targets_for(gpu.rank, tb.id),
                        // Gates at or before the resumed boundary are
                        // never revisited — by anyone, so they stay
                        // consistent.
                        next: resume_info.map_or(0, |(b, _)| b + 1),
                        worker: worker_index,
                    });
                handles.push(scope.spawn(move || -> WorkerOutput {
                    if want_snapshot {
                        if let Some(m) = worker_metrics {
                            m.reset_own_shard();
                        }
                    }
                    let tb_id = tb_ref.id;
                    let mut rec = Recorder {
                        enabled: tracing,
                        epoch,
                        rank,
                        tb: tb_id,
                        events: Vec::new(),
                    };
                    let mut ring = EventRing::new(rank, tb_id);
                    // Catch panics so a bug in one worker becomes a
                    // cancellation with a recorded origin rather than a
                    // bare thread death the others wait out. Every lock
                    // in the runtime is poison-tolerant, so unwinding
                    // with locks held cannot wedge the survivors.
                    let mut epoch_ctx = epoch_ctx;
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_thread_block(
                            tb_ref,
                            rank,
                            &collective,
                            &mem,
                            &sem,
                            &pool,
                            &send,
                            &recv,
                            &dep_sems,
                            num_tiles,
                            tile_elems,
                            chunk_elems,
                            op,
                            timeout,
                            global_deadline,
                            &cancel,
                            injector,
                            worker_metrics,
                            start,
                            &mut epoch_ctx,
                            &mut rec,
                            &mut ring,
                        )
                    }));
                    let completed = match result {
                        Ok(Ok(completed)) => completed,
                        Ok(Err(Stopped)) => 0,
                        Err(payload) => {
                            cancel.cancel(FailureOrigin {
                                rank,
                                tb: tb_id,
                                step: ring.last_step(),
                                cause: FailureCause::Panic(payload_string(payload.as_ref())),
                            });
                            0
                        }
                    };
                    (rec.events, ring, completed)
                }));
            }
        }
        let mut buffers: Vec<Vec<TraceEvent>> = Vec::new();
        let mut rings: Vec<EventRing> = Vec::new();
        let mut instructions = 0u64;
        for h in handles {
            // Workers never unwind past catch_unwind; a join error would
            // mean the runtime itself (recorder, ring) panicked.
            if let Ok((events, ring, completed)) = h.join() {
                buffers.push(events);
                rings.push(ring);
                instructions += completed;
            } else if !cancel.is_cancelled() {
                cancel.cancel(FailureOrigin {
                    rank: 0,
                    tb: 0,
                    step: 0,
                    cause: FailureCause::Panic("worker died outside the interpreter".into()),
                });
            }
        }
        (buffers, rings, instructions)
    });
    let (buffers, rings, instructions) = buffers_and_rings;
    // Observed cancellation latency: the failing worker stamped the token
    // when it recorded the origin, and at this point every worker has
    // joined. This — not wall clock around the whole call — is what
    // "prompt teardown" means on a loaded host.
    let drain = cancel
        .cancelled_at()
        .map_or(Duration::ZERO, |at| at.elapsed());

    // ---- Epoch teardown, before the memories are stashed: the state
    // holds `Arc` clones of them, and only after dropping it can
    // `Arc::try_unwrap` recycle the buffers. On failure the latest
    // published checkpoint travels out in the status; on success the
    // staging buffers go back to the arena.
    let epoch_status = match epoch_state {
        Some(state) => {
            let state = Arc::try_unwrap(state)
                .ok()
                .expect("workers joined; no other EpochState refs remain");
            let (status, staging) = state.finish(start_total, cancel.origin().is_some());
            if !staging.is_empty() {
                if let Some(a) = arena.as_deref_mut() {
                    a.snaps = staging;
                }
            }
            status
        }
        None => EpochStatus {
            executed: instructions,
            ..EpochStatus::default()
        },
    };

    let pool_now = pool.stats();
    let stats = ExecStats {
        pool: PoolStats {
            allocated: pool_now.allocated.saturating_sub(pool_base.allocated),
            reused: pool_now.reused.saturating_sub(pool_base.reused),
            free: pool_now.free,
        },
        instructions,
    };
    // Scrape model: counters are always recorded, but folding them into
    // a snapshot (key clones, shard sums) happens only for callers that
    // return one — entry points that discard it shouldn't pay for it.
    let metrics_snapshot = run_metrics.as_deref().filter(|_| want_snapshot).map(|m| {
        // The pool is shared by all workers; its per-run deltas land in
        // shard 0 once the workers have joined. Epoch counters likewise —
        // resolved lazily so runs without epochs carry no epoch series at
        // all (the runtime-vs-simulator metric parity depends on that).
        m.pool_allocated.add(0, stats.pool.allocated);
        m.pool_reused.add(0, stats.pool.reused);
        if epoch_status.epochs_completed > 0 {
            m.registry
                .counter(names::EPOCHS_COMPLETED, &[])
                .add(0, epoch_status.epochs_completed);
        }
        if epoch_status.steps_resumed > 0 {
            m.registry
                .counter(names::STEPS_RESUMED, &[])
                .add(0, epoch_status.steps_resumed);
        }
        m.registry.snapshot()
    });

    // Hand the attempt's epoch picture out before the paths below take
    // over; on failure the checkpoint inside is exactly what a resume
    // needs.
    if let Some(out) = epoch_out {
        *out = epoch_status;
    }

    // After the scope the workers' Arc clones are gone, so the memories
    // unwrap cleanly and their buffers can go back to the arena.
    let stash = |arena: Option<&mut ExecArena>, memories: Vec<Arc<RankMemory>>| {
        if let Some(a) = arena {
            a.spares = memories
                .into_iter()
                .filter_map(|m| Arc::try_unwrap(m).ok())
                .map(RankMemory::into_buffers)
                .collect();
        }
    };

    if let Some(origin) = cancel.origin() {
        stash(arena.take(), memories);
        // One origin, full context: every thread block's recent activity
        // plus the injected faults that actually struck.
        let mut context: Vec<String> = rings.iter().flat_map(EventRing::dump).collect();
        if let Some(inj) = injector {
            context.extend(
                inj.fired()
                    .into_iter()
                    .map(|f| format!("injected fault struck: {f}")),
            );
        }
        let FailureOrigin { rank, tb, step, .. } = origin;
        return Err(match origin.cause {
            FailureCause::StepTimeout => RuntimeError::Hang {
                rank,
                tb,
                step,
                context,
                drain,
            },
            FailureCause::Deadline => RuntimeError::DeadlineExceeded {
                rank,
                tb,
                step,
                context,
                drain,
            },
            FailureCause::Panic(payload) => RuntimeError::WorkerPanic {
                rank,
                tb,
                step,
                payload,
                context,
                drain,
            },
            FailureCause::InjectedKill(fault) => RuntimeError::InjectedFault {
                rank,
                tb,
                step,
                fault,
                context,
                drain,
            },
        });
    }

    let trace = tracing.then(|| {
        let mut buffers = buffers;
        buffers.push(vec![
            TraceEvent {
                ts_us: 0.0,
                rank: 0,
                tb: 0,
                kind: EventKind::KernelLaunch,
            },
            TraceEvent {
                ts_us: epoch.elapsed().as_secs_f64() * 1e6,
                rank: 0,
                tb: 0,
                kind: EventKind::PoolStats {
                    allocated: stats.pool.allocated,
                    reused: stats.pool.reused,
                },
            },
        ]);
        Trace::from_buffers(ClockDomain::Wall, buffers)
    });

    // ---- Extract outputs: one `read_into` pass per chunk, straight
    // into the result buffer (no intermediate per-chunk allocation).
    // Recycled result vectors are overwritten in full by the reads.
    let outputs = (0..num_ranks)
        .map(|r| {
            let elems = collective.out_chunks() * chunk_elems;
            let mut out = spare_outs.pop().unwrap_or_default();
            if out.is_empty() {
                out = vec![0.0; elems];
            } else {
                out.resize(elems, 0.0);
            }
            for index in 0..collective.out_chunks() {
                let base = index * chunk_elems;
                memories[r].read_into(
                    collective,
                    mscclang::BufferKind::Output,
                    index,
                    0,
                    &mut out[base..base + chunk_elems],
                );
            }
            out
        })
        .collect();
    stash(arena.take(), memories);
    Ok((outputs, trace, stats, metrics_snapshot))
}

/// Whether a just-expired wait was bounded by the global deadline rather
/// than the per-step timeout.
fn deadline_hit(global_deadline: Option<Instant>) -> bool {
    global_deadline.is_some_and(|g| Instant::now() >= g)
}

/// One worker: interprets a thread block's instruction list under the
/// tiling outer loop (Figure 5), emitting trace events and ring entries
/// along the way. Every payload travels in a [`PooledTile`] taken from
/// the shared pool and recycled on receipt, so the steady-state hot path
/// allocates nothing. Returns the number of instruction instances
/// completed. On failure it records the origin in `cancel` and returns
/// [`Stopped`]; when cancelled from elsewhere it returns [`Stopped`]
/// without recording.
#[allow(clippy::too_many_arguments)]
fn run_thread_block(
    tb_ref: &mscclang::IrThreadBlock,
    rank: usize,
    collective: &mscclang::Collective,
    mem: &RankMemory,
    sem: &Semaphore,
    pool: &Arc<TilePool>,
    send: &Option<(usize, usize, Arc<Fifo<PooledTile>>)>,
    recv: &Option<(usize, usize, Arc<Fifo<PooledTile>>)>,
    dep_sems: &[Vec<(Arc<Semaphore>, u64)>],
    num_tiles: usize,
    tile_elems: usize,
    chunk_elems: usize,
    op: ReduceOp,
    timeout: Duration,
    global_deadline: Option<Instant>,
    cancel: &CancelToken,
    injector: Option<&FaultInjector>,
    metrics: Option<&WorkerMetrics>,
    start: u64,
    epoch: &mut Option<WorkerEpoch>,
    rec: &mut Recorder,
    ring: &mut EventRing,
) -> Result<u64, Stopped> {
    let tb_id = tb_ref.id;
    let my_len = tb_ref.instructions.len() as u64;
    // `start` is 0 for a fresh run, or this block's checkpoint watermark
    // on resume — in the same monotonic encoding the semaphores use, so
    // `completed` simply picks up where the checkpointed run left off.
    let mut completed = start;
    let start_tile = start.checked_div(my_len).unwrap_or(0) as usize;
    let start_step = start.checked_rem(my_len).unwrap_or(0) as usize;
    // Resumed FIFO sequence numbers are re-derived from the watermark by
    // counting the send/recv instructions in the skipped prefix, so
    // one-shot delivery-fault specs keyed by sequence number keep
    // addressing the same logical messages across a resume.
    let count_prefix = |sends: bool, upto: usize| -> u64 {
        tb_ref.instructions[..upto]
            .iter()
            .filter(|i| {
                if sends {
                    i.op.has_send()
                } else {
                    i.op.has_recv()
                }
            })
            .count() as u64
    };
    let mut send_seq =
        start_tile as u64 * count_prefix(true, my_len as usize) + count_prefix(true, start_step);
    let mut recv_seq =
        start_tile as u64 * count_prefix(false, my_len as usize) + count_prefix(false, start_step);
    // Each blocking wait runs against min(step deadline, global deadline);
    // when one expires, `deadline_hit` disambiguates the cause.
    let wait_deadline = |now: Instant| -> Instant {
        let step = now + timeout;
        global_deadline.map_or(step, |g| step.min(g))
    };
    // Parks at every epoch gate `completed` has reached. Workers whose
    // first boundary target equals their start position (including every
    // fresh worker of a block the first cut leaves at watermark 0) pause
    // here before executing anything — the barrier needs all of them.
    let epoch_gate = |epoch: &mut Option<WorkerEpoch>,
                      completed: u64,
                      step: usize,
                      cancel: &CancelToken|
     -> Result<(), Stopped> {
        let Some(e) = epoch.as_mut() else {
            return Ok(());
        };
        match e.on_progress(completed, wait_deadline(Instant::now()), cancel) {
            PauseOutcome::Continue => Ok(()),
            PauseOutcome::Cancelled => Err(Stopped),
            PauseOutcome::TimedOut => {
                let cause = if deadline_hit(global_deadline) {
                    FailureCause::Deadline
                } else {
                    FailureCause::StepTimeout
                };
                cancel.cancel(FailureOrigin {
                    rank,
                    tb: tb_id,
                    step,
                    cause,
                });
                Err(Stopped)
            }
        }
    };
    // A persistent straggler chronically slows the whole rank: every
    // instruction pays a deterministic extra delay proportional to the
    // planned slowdown factor. Unlike block faults this is not one-shot —
    // the rank stays slow across tiles, steps and resumed attempts.
    const STRAGGLE_UNIT_NS: f64 = 20_000.0;
    let straggle = injector
        .and_then(|i| i.rank_slowdown(rank))
        .filter(|f| *f > 1.0)
        .map(|f| Duration::from_nanos((STRAGGLE_UNIT_NS * (f - 1.0)) as u64));
    epoch_gate(epoch, completed, start_step, cancel)?;
    for tile in start_tile..num_tiles {
        rec.emit(EventKind::TileBegin { tile });
        let elem_off = tile * tile_elems;
        let len = (chunk_elems - elem_off).min(tile_elems);
        let first = if tile == start_tile { start_step } else { 0 };
        for (s, instr) in tb_ref.instructions.iter().enumerate().skip(first) {
            // A failure elsewhere, or the global deadline, stops the
            // worker between instructions even when it never blocks.
            if cancel.is_cancelled() {
                return Err(Stopped);
            }
            if deadline_hit(global_deadline) {
                cancel.cancel(FailureOrigin {
                    rank,
                    tb: tb_id,
                    step: s,
                    cause: FailureCause::Deadline,
                });
                return Err(Stopped);
            }
            // Planned block faults strike as the instruction starts.
            if let Some(action) = injector.and_then(|i| i.on_block(rank, tb_id, s)) {
                match action {
                    BlockAction::Stall(d) => {
                        if !cancellable_sleep(d, cancel) {
                            return Err(Stopped);
                        }
                    }
                    BlockAction::Kill => {
                        cancel.cancel(FailureOrigin {
                            rank,
                            tb: tb_id,
                            step: s,
                            cause: FailureCause::InjectedKill(format!(
                                "kill block r{rank} tb{tb_id} step{s}"
                            )),
                        });
                        return Err(Stopped);
                    }
                }
            }
            if let Some(d) = straggle {
                if !cancellable_sleep(d, cancel) {
                    return Err(Stopped);
                }
            }
            // Wait on cross-thread-block dependencies. These gate the
            // instruction, so they trace *before* InstrBegin: a begin
            // event means the dependencies were already satisfied.
            for (d_idx, dep) in instr.deps.iter().enumerate() {
                let (sem_d, dep_len) = &dep_sems[s][d_idx];
                let target = tile as u64 * dep_len + dep.step as u64 + 1;
                ring.push(
                    tile,
                    s,
                    instr.op,
                    Moment::WaitingDep {
                        dep_tb: dep.tb,
                        target,
                    },
                );
                rec.emit(EventKind::SemWaitEnter {
                    dep_tb: dep.tb,
                    target,
                });
                let wait_start = Instant::now();
                match sem_d.wait_at_least(target, wait_deadline(wait_start), cancel) {
                    WaitOutcome::Reached => {
                        if let Some(m) = metrics {
                            m.sem_wait_ns
                                .add(m.shard, wait_start.elapsed().as_nanos() as u64);
                        }
                    }
                    WaitOutcome::Cancelled => return Err(Stopped),
                    WaitOutcome::TimedOut => {
                        let cause = if deadline_hit(global_deadline) {
                            FailureCause::Deadline
                        } else {
                            FailureCause::StepTimeout
                        };
                        cancel.cancel(FailureOrigin {
                            rank,
                            tb: tb_id,
                            step: s,
                            cause,
                        });
                        return Err(Stopped);
                    }
                }
                rec.emit(EventKind::SemWaitExit {
                    dep_tb: dep.tb,
                    target,
                });
            }
            ring.push(tile, s, instr.op, Moment::Started);
            rec.emit(EventKind::InstrBegin {
                step: s,
                tile,
                op: instr.op,
            });

            // Tile-shaped memory closures: each moves `count` chunk
            // segments directly between rank memory and a pooled tile —
            // no intermediate Vec on any path.
            let fill_src = |tile: &mut PooledTile| {
                let loc = instr.src.expect("instruction requires src");
                for i in 0..instr.count {
                    mem.read_into(
                        collective,
                        loc.buffer,
                        loc.index + i,
                        elem_off,
                        &mut tile[i * len..(i + 1) * len],
                    );
                }
            };
            let write_dst = |values: &[f32]| {
                let loc = instr.dst.expect("instruction requires dst");
                for i in 0..instr.count {
                    mem.write(
                        collective,
                        loc.buffer,
                        loc.index + i,
                        elem_off,
                        &values[i * len..(i + 1) * len],
                    );
                }
            };
            // dst-memory = op(dst-memory, tile), tile = dst-memory: the
            // in-place form of the old read-combine-write round trip,
            // preserving its operand order exactly.
            let reduce_merge_dst = |tile: &mut PooledTile| {
                let loc = instr.dst.expect("instruction requires dst");
                for i in 0..instr.count {
                    mem.reduce_merge(
                        collective,
                        loc.buffer,
                        loc.index + i,
                        elem_off,
                        &mut tile[i * len..(i + 1) * len],
                        op,
                    );
                }
            };
            // tile = op(src-memory, tile): the receive-side merge of
            // RecvReduceSend, local operand on the left as before.
            let combine_read_src = |tile: &mut PooledTile| {
                let loc = instr.src.expect("instruction requires src");
                for i in 0..instr.count {
                    mem.combine_read(
                        collective,
                        loc.buffer,
                        loc.index + i,
                        elem_off,
                        &mut tile[i * len..(i + 1) * len],
                        op,
                    );
                }
            };
            // On a FIFO stop: a timeout is this worker's own failure (it
            // records the origin); a cancellation is someone else's.
            let stop_to_err = |stop: FifoStop, step: usize| -> Stopped {
                if stop == FifoStop::Timeout {
                    let cause = if deadline_hit(global_deadline) {
                        FailureCause::Deadline
                    } else {
                        FailureCause::StepTimeout
                    };
                    cancel.cancel(FailureOrigin {
                        rank,
                        tb: tb_id,
                        step,
                        cause,
                    });
                }
                Stopped
            };
            let mut receive =
                |rec: &mut Recorder, ring: &mut EventRing| -> Result<PooledTile, Stopped> {
                    let (src, channel, fifo) = recv
                        .as_ref()
                        .expect("recv op requires a receive connection");
                    let mut blocked_at = None;
                    let (value, blocked) = fifo
                        .recv(wait_deadline(Instant::now()), cancel, || {
                            ring.push(
                                tile,
                                s,
                                instr.op,
                                Moment::BlockedRecv {
                                    src: *src,
                                    channel: *channel,
                                },
                            );
                            rec.emit(EventKind::RecvBlock {
                                src: *src,
                                channel: *channel,
                            });
                            blocked_at = Some(Instant::now());
                        })
                        .map_err(|stop| stop_to_err(stop, s))?;
                    if blocked {
                        rec.emit(EventKind::RecvResume {
                            src: *src,
                            channel: *channel,
                        });
                        if let (Some(m), Some(t0)) = (metrics, blocked_at) {
                            m.fifo_recv_block_ns
                                .add(m.shard, t0.elapsed().as_nanos() as u64);
                        }
                    }
                    let bytes = (value.len() * std::mem::size_of::<f32>()) as u64;
                    rec.emit(EventKind::Recv {
                        src: *src,
                        channel: *channel,
                        seq: recv_seq,
                        bytes,
                    });
                    if let Some(m) = metrics {
                        if let Some((bytes_recv, recvs)) = &m.recv_conn {
                            bytes_recv.add(m.shard, bytes);
                            recvs.inc(m.shard);
                        }
                    }
                    recv_seq += 1;
                    Ok(value)
                };
            let mut transmit = |rec: &mut Recorder,
                                ring: &mut EventRing,
                                outbound: PooledTile|
             -> Result<(), Stopped> {
                let (dst, channel, fifo) =
                    send.as_ref().expect("send op requires a send connection");
                // Planned delivery faults apply here, where the tile
                // leaves the sender: corruption rewrites the payload,
                // a delay holds it back, a drop discards it (the
                // sequence number still advances, as a real lost packet
                // leaves the sender none the wiser), a duplicate
                // enqueues it twice.
                let mut outbound = outbound;
                let mut dropped = false;
                let mut duplicated = false;
                if let Some(inj) = injector {
                    for action in inj.on_delivery(rank, *dst, *channel, send_seq) {
                        match action {
                            DeliveryAction::Corrupt { bit } => corrupt_payload(&mut outbound, bit),
                            DeliveryAction::Delay(d) => {
                                if !cancellable_sleep(d, cancel) {
                                    return Err(Stopped);
                                }
                            }
                            DeliveryAction::Drop => dropped = true,
                            DeliveryAction::Duplicate => duplicated = true,
                        }
                    }
                }
                if dropped {
                    send_seq += 1;
                    // The tile drops here and its buffer returns to the
                    // pool: a lost packet costs nothing.
                    return Ok(());
                }
                // Copy-on-write duplication: the second tile is taken
                // from the pool only when the fault actually fires, and
                // only after corruption, so both deliveries carry the
                // same (possibly corrupted) payload.
                let dup = duplicated.then(|| outbound.duplicate());
                let bytes = (outbound.len() * std::mem::size_of::<f32>()) as u64;
                // `SendResume` and `Send` are stamped from inside the
                // callback — `Send` while the queue lock is held — so the
                // receiver's `Recv` timestamp can never precede them.
                for (copy, payload) in std::iter::once(outbound).chain(dup).enumerate() {
                    let mut was_blocked = false;
                    let mut blocked_at = None;
                    fifo.send(
                        payload,
                        wait_deadline(Instant::now()),
                        cancel,
                        |moment| match moment {
                            SendMoment::Blocked => {
                                was_blocked = true;
                                ring.push(
                                    tile,
                                    s,
                                    instr.op,
                                    Moment::BlockedSend {
                                        dst: *dst,
                                        channel: *channel,
                                    },
                                );
                                rec.emit(EventKind::SendBlock {
                                    dst: *dst,
                                    channel: *channel,
                                });
                                blocked_at = Some(Instant::now());
                            }
                            SendMoment::Enqueued { depth } => {
                                if was_blocked {
                                    rec.emit(EventKind::SendResume {
                                        dst: *dst,
                                        channel: *channel,
                                    });
                                }
                                if copy == 0 {
                                    rec.emit(EventKind::Send {
                                        dst: *dst,
                                        channel: *channel,
                                        seq: send_seq,
                                        bytes,
                                    });
                                }
                                if let Some(m) = metrics {
                                    if let (Some(t0), true) = (blocked_at.take(), was_blocked) {
                                        m.fifo_send_block_ns
                                            .add(m.shard, t0.elapsed().as_nanos() as u64);
                                    }
                                    if let Some((bytes_sent, sends, peak)) = &m.send_conn {
                                        peak.set_max(depth as u64);
                                        if copy == 0 {
                                            bytes_sent.add(m.shard, bytes);
                                            sends.inc(m.shard);
                                        }
                                    }
                                }
                            }
                        },
                    )
                    .map_err(|stop| stop_to_err(stop, s))?;
                }
                send_seq += 1;
                Ok(())
            };

            // Latency observations are sampled: the two clock reads they
            // need cost more than every counter in this loop combined
            // (~85ns against a sub-10ns relaxed add), and taking them on
            // every instruction busts the always-on overhead budget at
            // small sizes. One instruction in [`LATENCY_SAMPLE_PERIOD`]
            // per worker keeps the histogram's shape; the `instructions`
            // counter below stays exact.
            let instr_start = metrics
                .filter(|_| completed.is_multiple_of(LATENCY_SAMPLE_PERIOD))
                .map(|_| Instant::now());
            match instr.op {
                OpCode::Nop => {}
                OpCode::Send => {
                    let mut tile = pool.take(instr.count * len);
                    fill_src(&mut tile);
                    transmit(rec, ring, tile)?;
                }
                OpCode::Recv => {
                    let tile = receive(rec, ring)?;
                    write_dst(&tile);
                }
                OpCode::Copy => {
                    // Local data movement never touches the pool: the
                    // chunks move memory-to-memory under the fixed lock
                    // order (see `memory::copy_between`).
                    let src = instr.src.expect("instruction requires src");
                    let dst = instr.dst.expect("instruction requires dst");
                    for i in 0..instr.count {
                        mem.copy_between(
                            collective,
                            (src.buffer, src.index + i),
                            (dst.buffer, dst.index + i),
                            elem_off,
                            len,
                        );
                    }
                }
                OpCode::Reduce => {
                    let src = instr.src.expect("instruction requires src");
                    let dst = instr.dst.expect("instruction requires dst");
                    for i in 0..instr.count {
                        mem.reduce_between(
                            collective,
                            (src.buffer, src.index + i),
                            (dst.buffer, dst.index + i),
                            elem_off,
                            len,
                            op,
                        );
                    }
                }
                OpCode::RecvReduceCopy => {
                    let mut tile = receive(rec, ring)?;
                    reduce_merge_dst(&mut tile);
                }
                OpCode::RecvCopySend => {
                    // Zero-copy forward: the received tile is written to
                    // memory and then handed onward as-is.
                    let tile = receive(rec, ring)?;
                    write_dst(&tile);
                    transmit(rec, ring, tile)?;
                }
                OpCode::RecvReduceSend => {
                    let mut tile = receive(rec, ring)?;
                    combine_read_src(&mut tile);
                    transmit(rec, ring, tile)?;
                }
                OpCode::RecvReduceCopySend => {
                    let mut tile = receive(rec, ring)?;
                    reduce_merge_dst(&mut tile);
                    transmit(rec, ring, tile)?;
                }
            }
            if let Some(m) = metrics {
                let (count, latency) = &m.ops[op_index(instr.op)];
                count.inc(m.shard);
                if let Some(t0) = instr_start {
                    latency.record(m.shard, t0.elapsed().as_nanos() as u64);
                }
            }
            completed += 1;
            debug_assert_eq!(completed, tile as u64 * my_len + s as u64 + 1);
            ring.push(tile, s, instr.op, Moment::Completed);
            // Stamp completion *before* advancing the semaphore: a waiter
            // the set releases stamps its own events after returning from
            // the wait, so this InstrEnd can never postdate a dependent's
            // InstrBegin.
            if instr.has_dep {
                rec.emit(EventKind::SemSet { value: completed });
            }
            rec.emit(EventKind::InstrEnd {
                step: s,
                tile,
                op: instr.op,
            });
            if instr.has_dep {
                sem.set(completed);
            }
            // The gate check comes *after* the semaphore advance:
            // dependents of this instruction must be able to proceed to
            // their own pre-cut work, or the barrier could never fill.
            epoch_gate(epoch, completed, s, cancel)?;
        }
        rec.emit(EventKind::TileEnd { tile });
    }
    Ok(completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions};

    fn run_and_check(program: &mscclang::Program, instances: usize, chunk_elems: usize) {
        let ir = compile(
            program,
            &CompileOptions::default().with_instances(instances),
        )
        .unwrap();
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 7);
        let outputs = execute(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();
    }

    #[test]
    fn ring_allreduce_computes_correct_sums() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        run_and_check(&p, 1, 16);
    }

    #[test]
    fn multi_channel_multi_instance_ring() {
        let p = msccl_algos::ring_all_reduce(4, 2).unwrap();
        run_and_check(&p, 2, 8);
    }

    #[test]
    fn tiling_pipelines_large_chunks() {
        // Force multiple tiles with a tiny tile size.
        let p = msccl_algos::ring_all_reduce(3, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 10;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 3);
        let opts = RunOptions {
            tile_elems: Some(3),
            ..RunOptions::default()
        };
        let outputs = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();
    }

    #[test]
    fn rejects_bad_input_shape() {
        let p = msccl_algos::ring_all_reduce(2, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let err = execute(&ir, &[vec![0.0; 3]], 4, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::InputShape { .. }));
    }

    #[test]
    fn rejects_degenerate_options_by_name() {
        let p = msccl_algos::ring_all_reduce(2, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let inputs = crate::reference::random_inputs(&ir, 4, 1);
        let cases: [(RunOptions, &str); 3] = [
            (
                RunOptions {
                    timeout: Duration::ZERO,
                    ..RunOptions::default()
                },
                "timeout",
            ),
            (
                RunOptions {
                    tile_elems: Some(0),
                    ..RunOptions::default()
                },
                "tile_elems",
            ),
            (
                RunOptions {
                    deadline: Some(Duration::ZERO),
                    ..RunOptions::default()
                },
                "deadline",
            ),
        ];
        for (opts, named) in cases {
            let err = execute(&ir, &inputs, 4, &opts).unwrap_err();
            let RuntimeError::InvalidOptions { message } = &err else {
                panic!("expected InvalidOptions for {named}, got {err:?}");
            };
            assert!(message.contains(named), "{message:?} names {named}");
            assert!(!err.is_transient());
        }
    }

    /// Tracing must not change results, and the trace must pass the
    /// consistency oracle against the IR.
    #[test]
    fn traced_execution_matches_untraced() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 5);
        let plain = execute(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        let (traced, trace) =
            execute_traced(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        assert_eq!(plain, traced);
        assert!(!trace.is_empty());
        trace.check_consistency(Some(&ir)).unwrap();
        // Every instruction appears exactly once (single tile).
        assert_eq!(trace.executed_instructions().len(), ir.num_instructions());
    }

    #[test]
    fn untraced_execution_records_nothing() {
        let p = msccl_algos::ring_all_reduce(2, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let inputs = crate::reference::random_inputs(&ir, 4, 9);
        // The public untraced API returns only outputs; internally the
        // recorder stays empty.
        let (_, trace, _, _) = execute_impl(
            &ir,
            &inputs,
            4,
            &RunOptions::default(),
            false,
            false,
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(trace.is_none());
    }

    fn deadlocked_ir() -> mscclang::IrProgram {
        use mscclang::Collective;
        let collective = Collective::all_gather(2, 1, false);
        let gpu = |rank: usize, peer: usize| mscclang::ir::IrGpu {
            rank,
            input_chunks: 1,
            output_chunks: 2,
            scratch_chunks: 0,
            threadblocks: vec![mscclang::IrThreadBlock {
                id: 0,
                send_peer: Some(peer),
                recv_peer: Some(peer),
                channel: 0,
                instructions: vec![
                    mscclang::IrInstruction {
                        step: 0,
                        op: OpCode::Recv,
                        src: None,
                        dst: Some(mscclang::ir::IrLoc {
                            buffer: mscclang::BufferKind::Output,
                            index: 0,
                        }),
                        count: 1,
                        deps: vec![],
                        has_dep: false,
                    },
                    mscclang::IrInstruction {
                        step: 1,
                        op: OpCode::Send,
                        src: Some(mscclang::ir::IrLoc {
                            buffer: mscclang::BufferKind::Input,
                            index: 0,
                        }),
                        dst: None,
                        count: 1,
                        deps: vec![],
                        has_dep: false,
                    },
                ],
            }],
        };
        mscclang::IrProgram {
            name: "deadlock".into(),
            collective,
            protocol: None,
            num_channels: 1,
            refinement: 1,
            gpus: vec![gpu(0, 1), gpu(1, 0)],
            epoch_cuts: vec![],
        }
    }

    /// A hand-built IR where both ranks only receive: the runtime's
    /// watchdog must report the hang instead of blocking forever.
    #[test]
    fn hang_is_detected() {
        let ir = deadlocked_ir();
        let opts = RunOptions {
            timeout: Duration::from_millis(200),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        assert!(matches!(err, RuntimeError::Hang { .. }), "got {err:?}");
        assert!(err.is_transient());
    }

    /// The hang error carries each thread block's last ring entries, and
    /// its display names the blocking receives.
    #[test]
    fn hang_dumps_recent_activity() {
        let ir = deadlocked_ir();
        let opts = RunOptions {
            timeout: Duration::from_millis(200),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        let RuntimeError::Hang { step, context, .. } = &err else {
            panic!("expected hang, got {err:?}");
        };
        assert_eq!(*step, 0);
        // Both thread blocks contribute their stuck receive.
        assert!(context
            .iter()
            .any(|l| l.starts_with("rank 0 tb 0") && l.contains("blocked receiving from rank 1")));
        assert!(context
            .iter()
            .any(|l| l.starts_with("rank 1 tb 0") && l.contains("blocked receiving from rank 0")));
        let shown = err.to_string();
        assert!(shown.contains("recent activity per thread block:"));
        assert!(shown.contains("blocked receiving"));
    }

    /// A global deadline fires even when every step makes progress, and
    /// the error is distinguishable from a per-step hang.
    #[test]
    fn global_deadline_is_enforced() {
        let ir = deadlocked_ir();
        // Generous per-step timeout, tight global deadline: only the
        // deadline can fire first.
        let opts = RunOptions {
            timeout: Duration::from_secs(20),
            deadline: Some(Duration::from_millis(100)),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let start = Instant::now();
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        assert!(
            matches!(err, RuntimeError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    /// A worker panic is caught, attributed to its rank/tb/step, carries
    /// the payload text, and cancels the other workers promptly.
    #[test]
    fn worker_panic_is_attributed() {
        // An IR whose rank-1 receive writes to an out-of-range output
        // chunk makes the worker panic inside memory access.
        let mut ir = deadlocked_ir();
        ir.gpus[0].threadblocks[0].instructions.truncate(1);
        ir.gpus[1].threadblocks[0].instructions = vec![mscclang::IrInstruction {
            step: 0,
            op: OpCode::Send,
            src: Some(mscclang::ir::IrLoc {
                buffer: mscclang::BufferKind::Input,
                index: 99, // out of range: reading it panics
            }),
            dst: None,
            count: 1,
            deps: vec![],
            has_dep: false,
        }];
        let inputs = vec![vec![1.0], vec![2.0]];
        let start = Instant::now();
        let err = execute(&ir, &inputs, 1, &RunOptions::default()).unwrap_err();
        let RuntimeError::WorkerPanic {
            rank,
            tb,
            step,
            payload,
            ..
        } = &err
        else {
            panic!("expected WorkerPanic, got {err:?}");
        };
        assert_eq!((*rank, *tb, *step), (1, 0, 0));
        assert!(!payload.is_empty());
        // Cancellation, not the 20 s default timeout, freed rank 0.
        assert!(start.elapsed() < Duration::from_secs(2));
        let shown = err.to_string();
        assert!(shown.contains("worker panicked at rank 1 tb 0 step 0"));
        assert!(err.is_transient());
    }

    use mscclang::OpCode;

    #[test]
    fn max_reduction_operator() {
        let p = msccl_algos::allpairs_all_reduce(3).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 4;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 11);
        let opts = RunOptions {
            reduce_op: ReduceOp::Max,
            ..RunOptions::default()
        };
        let outputs = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Max,
        )
        .unwrap();
    }

    #[test]
    fn arena_reuse_is_bit_identical_and_allocation_free() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 32;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 23);
        let opts = RunOptions {
            tile_elems: Some(9),
            ..RunOptions::default()
        };

        let fresh = execute(&ir, &inputs, chunk_elems, &opts).unwrap();

        let mut arena = ExecArena::new(&ir, &opts);
        let (first, _) = execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        assert_eq!(fresh, first, "arena-backed run diverged from fresh run");
        arena.recycle_outputs(first);

        // Second run through the warmed arena: identical bits, and the
        // entire data path (tiles, rank memory, output vectors) recycles.
        let (second, stats) =
            execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        for (a, b) in fresh.iter().zip(&second) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(
            stats.pool.allocated, 0,
            "warmed arena still allocated tiles: {:?}",
            stats.pool
        );
        assert!(stats.pool.reused > 0, "pool was bypassed entirely");
    }

    /// Epoch barriers are pure synchronization on the clean path: outputs
    /// with checkpointing on are bit-identical to epochs-off, and the
    /// status reports every scheduled boundary as published.
    #[test]
    fn epochs_on_clean_run_is_bit_exact() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 41);
        let opts_off = RunOptions {
            tile_elems: Some(2),
            ..RunOptions::default()
        };
        let plain = execute(&ir, &inputs, chunk_elems, &opts_off).unwrap();
        let opts_on = RunOptions {
            epochs: EpochMode::Count(2),
            ..opts_off
        };
        let (result, status) = execute_resumable(&ir, &inputs, chunk_elems, &opts_on, None, None);
        let outputs = result.unwrap();
        for (a, b) in plain.iter().zip(&outputs) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(status.boundaries, 2);
        assert_eq!(status.epochs_completed, 2);
        assert_eq!(status.steps_resumed, 0);
        assert_eq!(status.executed, (ir.num_instructions() * 4) as u64);
        assert!(
            status.checkpoint.is_none(),
            "successful runs must not hand out a checkpoint"
        );
    }

    /// Epoch snapshot staging buffers recycle through the arena: the
    /// first epochs-on run grows them, later runs reuse them, and the
    /// data path stays bit-exact.
    #[test]
    fn arena_recycles_epoch_snapshot_buffers() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 43);
        let opts = RunOptions {
            tile_elems: Some(2),
            epochs: EpochMode::Count(2),
            ..RunOptions::default()
        };
        let fresh = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        let mut arena = ExecArena::new(&ir, &opts);
        let (first, _) = execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        assert_eq!(fresh, first);
        assert_eq!(
            arena.snaps.len(),
            ir.num_ranks(),
            "snapshot staging buffers must return to the arena"
        );
        arena.recycle_outputs(first);
        let (second, _) = execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        assert_eq!(fresh, second);
        assert_eq!(arena.snaps.len(), ir.num_ranks());
    }

    /// A resume checkpoint is only honored against the exact schedule it
    /// was captured under; anything else is a structural error, not a
    /// silent corruption.
    #[test]
    fn mismatched_resume_checkpoint_is_rejected() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 44);
        let bogus = crate::epoch::EpochCheckpoint {
            boundary: 7,
            targets: vec![vec![1]; 4],
            memories: (0..4)
                .map(|_| crate::memory::SpaceBuffers::default())
                .collect(),
            instructions: 4,
        };
        let (result, _) = execute_resumable(
            &ir,
            &inputs,
            chunk_elems,
            &RunOptions {
                tile_elems: Some(2),
                epochs: EpochMode::Count(2),
                ..RunOptions::default()
            },
            None,
            Some(bogus),
        );
        let err = result.unwrap_err();
        assert!(
            matches!(&err, RuntimeError::InvalidOptions { message } if message.contains("resume checkpoint")),
            "got {err:?}"
        );
    }

    /// The metrics snapshot agrees with the trace recorded in the same
    /// run: same per-connection bytes/sends/receives, same instruction
    /// count, pool counters mirroring `ExecStats`.
    #[test]
    fn profiled_metrics_agree_with_trace() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 16;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 31);
        let (outputs, trace, snapshot) =
            execute_profiled(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();

        // The trace-derived snapshot carries the same logical counters:
        // bytes, sends, receives per connection, instructions per op.
        let derived = msccl_trace::snapshot_from_trace(&trace);
        for name in [
            msccl_metrics::names::BYTES_SENT,
            msccl_metrics::names::BYTES_RECEIVED,
            msccl_metrics::names::SENDS,
            msccl_metrics::names::RECVS,
            msccl_metrics::names::INSTRUCTIONS,
        ] {
            let live: Vec<_> = snapshot.with_name(name).collect();
            assert!(!live.is_empty(), "no live samples for {name}");
            for sample in live {
                let labels: Vec<(&str, &str)> = sample
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                assert_eq!(
                    derived.counter(name, &labels),
                    snapshot.counter(name, &labels),
                    "mismatch on {name} {labels:?}"
                );
            }
        }
        assert_eq!(
            snapshot.counter_total(msccl_metrics::names::INSTRUCTIONS),
            trace.executed_instructions().len() as u64,
        );

        // Metrics off: the run still works, and the snapshot is empty.
        let opts = RunOptions {
            metrics: false,
            ..RunOptions::default()
        };
        let (_, _, empty) = execute_profiled(&ir, &inputs, chunk_elems, &opts).unwrap();
        assert!(empty.samples.is_empty());
    }
}
