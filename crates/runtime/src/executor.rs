//! The interpreter proper: one resumable *task* per IR thread block on a
//! work-stealing worker pool, a tiling outer loop, bounded FIFO
//! connections and semaphore dependencies (Figure 5).
//!
//! Each thread block's interpreter loop is compiled into a [`TbTask`]
//! state machine that runs until it would block — on a dependency
//! semaphore, a FIFO, an epoch gate, or a fault-injected sleep — and
//! then suspends with a [`WakeKey`] naming what it waits for. A fixed
//! pool of `min(num_cpus, num_tbs)` workers (override:
//! [`RunOptions::worker_threads`]) runs the tasks from per-worker deques
//! with stealing; the peer that makes a blocked condition true (a
//! semaphore set, a FIFO push/drain, a gate release) wakes the key and
//! the task resumes, possibly on a different worker. The compiled
//! per-block instruction order is untouched — only *who* runs a block's
//! next step, and when, changed — so results stay bit-exact with the
//! dedicated-thread executor this replaced, at any pool size.
//!
//! Execution can be traced: [`execute_traced`] returns a wall-clock
//! [`Trace`] built from lock-free per-worker event buffers merged after
//! the threads join. The untraced [`execute`] path skips every event
//! push. Independently of tracing, each worker keeps a small ring buffer
//! of its recent activity, and when the run fails the error carries every
//! thread block's last few entries — enough to see who stalled on what.
//!
//! Failure handling is *cooperative* (see [`crate::cancel`]): the first
//! worker to fail — step timeout, global deadline, panic, injected kill —
//! trips a shared [`CancelToken`] recording the originating failure, and
//! every other worker aborts its blocking waits within milliseconds. The
//! run therefore reports one precise origin instead of N cascading
//! timeouts, and a kill anywhere tears the whole execution down in well
//! under a second regardless of the configured timeouts.
//!
//! Deterministic faults ([`msccl_faults`]) are injected at two hook
//! points: block faults (stall/kill) as an instruction starts, delivery
//! faults (drop/delay/duplicate/corrupt) as a tile is handed to its FIFO.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::{Duration, Instant};

use msccl_faults::{corrupt_payload, BlockAction, DeliveryAction, FaultInjector, FaultPlanError};
use msccl_metrics::{names, Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use msccl_topology::Protocol;
use msccl_trace::{ClockDomain, EventKind, Trace, TraceEvent};

use mscclang::{IrProgram, OpCode, ReduceOp, Space};

use mscclang::EpochMode;

use crate::cancel::{CancelToken, FailureCause, FailureOrigin, Poke};
use crate::epoch::{EpochCheckpoint, EpochState, EpochStatus, WorkerEpoch};
use crate::fifo::Fifo;
use crate::flight::{
    Blackbox, BlackboxConn, BlackboxFailure, BlackboxSched, BlockedOn, EventRing, FlightRecorder,
    Moment, StallDiagnosis, TaskStall, WaitForGraph,
};
use crate::memory::{RankMemory, SpaceBuffers};
use crate::pool::{PoolStats, PooledTile, TilePool};
use crate::sched::{Scheduler, WakeKey};
use crate::semaphore::Semaphore;

/// Options controlling an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Protocol whose slot size sets the default tile size and whose slot
    /// count bounds each connection's FIFO (§6.1).
    pub protocol: Protocol,
    /// Override for the tile size in elements; defaults to
    /// `slot_bytes / 4`.
    pub tile_elems: Option<usize>,
    /// The reduction operator.
    pub reduce_op: ReduceOp,
    /// How long any single blocking step may wait before the run is
    /// declared hung (a deadlock diagnostic for hand-written IR; compiled
    /// IR is deadlock-free by construction). Progress resets the clock:
    /// a run may legitimately take far longer than this end to end, as
    /// long as no *individual* semaphore wait, FIFO send or FIFO receive
    /// stalls past it. Bound total wall-clock time with [`deadline`].
    ///
    /// [`deadline`]: RunOptions::deadline
    pub timeout: Duration,
    /// Optional global wall-clock budget for the whole execution,
    /// measured from entry. Unlike [`timeout`], this fires even when
    /// every step makes (slow) progress. `None` means unbounded.
    ///
    /// [`timeout`]: RunOptions::timeout
    pub deadline: Option<Duration>,
    /// Whether to keep the always-on metric counters (bytes/messages per
    /// connection, wait and block time, per-instruction-kind latency
    /// histograms — see [`msccl_metrics::names`]). On by default: the hot
    /// path per counter is one relaxed atomic add into a per-worker
    /// shard, and the throughput bench gates the total overhead below a
    /// few percent. Disable only to measure that overhead.
    pub metrics: bool,
    /// Epoch checkpoint placement (`--epochs`). `Off` (the default) runs
    /// without barriers or snapshots; `Auto` lets the traffic-budget
    /// cost model pick a count (possibly zero — short runs are cheaper
    /// to retry than to checkpoint); `Count(n)` forces `n` boundaries,
    /// clamped to the consistent cut positions available. See
    /// [`crate::epoch`] for the machinery and
    /// [`execute_resumable`] for resuming from a checkpoint.
    pub epochs: EpochMode,
    /// Size of the work-stealing worker pool (`--threads`). `0` (the
    /// default) picks `min(available_parallelism, num_tbs)`; any other
    /// value is clamped to `[1, num_tbs]`. Results are bit-exact at
    /// every pool size — the setting trades scheduling parallelism
    /// against oversubscription, nothing else.
    pub worker_threads: usize,
    /// Whether to keep the always-on flight recorder: per-worker
    /// fixed-capacity ring buffers of compact binary records (task
    /// dispatches, blocks, wakes, steals, parks, semaphore sets, FIFO
    /// depths, gate arrivals). On by default — the hot path is two
    /// relaxed atomic stores into a preallocated ring with no clock
    /// reads, and the throughput bench gates the overhead below the
    /// same few-percent budget as metrics. The rings feed the
    /// post-mortem black box; disable only to measure the overhead.
    pub flight: bool,
    /// Directory for post-mortem black-box dumps. When set, every failed
    /// run (hang, deadline, panic, injected kill) serializes a versioned
    /// [`msccl-blackbox-v1`](crate::BLACKBOX_VERSION) JSON artifact —
    /// flight rings, wait-for graph, stall diagnosis, scheduler and
    /// connection state — readable by `msccl doctor`. `None` (the
    /// default) writes nothing; the library never touches the
    /// filesystem unless asked.
    pub blackbox_dir: Option<std::path::PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            protocol: Protocol::Simple,
            tile_elems: None,
            reduce_op: ReduceOp::Sum,
            timeout: Duration::from_secs(20),
            deadline: None,
            metrics: true,
            epochs: EpochMode::Off,
            worker_threads: 0,
            flight: true,
            blackbox_dir: None,
        }
    }
}

/// Errors from the functional runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The provided inputs do not match the program's layout.
    InputShape {
        /// Description of the mismatch.
        message: String,
    },
    /// The [`RunOptions`] are self-contradictory or degenerate.
    InvalidOptions {
        /// Which option, and why.
        message: String,
    },
    /// A fault plan does not fit the program it was asked to disrupt.
    InvalidFaultPlan {
        /// The underlying [`FaultPlanError`], rendered.
        message: String,
    },
    /// A thread block blocked longer than the timeout (deadlock or hang).
    Hang {
        /// Rank of the stuck thread block.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step it was executing.
        step: usize,
        /// Every thread block's most recent activity (one line per ring
        /// entry, oldest first), plus any injected faults that struck
        /// and the classified stall diagnosis.
        context: Vec<String>,
        /// Structured wait-for-graph diagnosis of the stall (boxed: the
        /// graph snapshot is large relative to the happy-path variants).
        diagnosis: Box<StallDiagnosis>,
        /// Observed cancellation latency: time from the failing worker
        /// tripping the cancel token to the last worker joining. This is
        /// what "prompt teardown" means, independent of how loaded the
        /// host is before or after the run.
        drain: Duration,
    },
    /// The global wall-clock [`deadline`](RunOptions::deadline) passed.
    DeadlineExceeded {
        /// Rank of the thread block that observed the deadline first.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step it was executing.
        step: usize,
        /// Every thread block's most recent activity, plus any injected
        /// faults that struck.
        context: Vec<String>,
        /// Structured stall diagnosis (see [`RuntimeError::Hang`]).
        diagnosis: Box<StallDiagnosis>,
        /// Observed cancellation latency (see [`RuntimeError::Hang`]).
        drain: Duration,
    },
    /// A worker thread panicked.
    WorkerPanic {
        /// Rank of the panicking thread block.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step it was executing when it panicked.
        step: usize,
        /// The panic payload, stringified.
        payload: String,
        /// Every thread block's most recent activity.
        context: Vec<String>,
        /// Structured stall diagnosis (see [`RuntimeError::Hang`]).
        diagnosis: Box<StallDiagnosis>,
        /// Observed cancellation latency (see [`RuntimeError::Hang`]).
        drain: Duration,
    },
    /// An injected fault killed a thread block.
    InjectedFault {
        /// Rank of the killed thread block.
        rank: usize,
        /// Thread block id.
        tb: usize,
        /// Step at which the fault struck.
        step: usize,
        /// The fault, rendered in fault-plan syntax.
        fault: String,
        /// Every thread block's most recent activity, plus any injected
        /// faults that struck.
        context: Vec<String>,
        /// Structured stall diagnosis (see [`RuntimeError::Hang`]).
        diagnosis: Box<StallDiagnosis>,
        /// Observed cancellation latency (see [`RuntimeError::Hang`]).
        drain: Duration,
    },
    /// Outputs did not match the collective's reference semantics (raised
    /// by the recovery layer's verification, never by plain execution).
    VerificationFailed {
        /// First mismatch found.
        message: String,
    },
    /// The whole-recovery deadline budget ([`RunOptions::deadline`] under
    /// [`execute_with_recovery`](crate::execute_with_recovery)) ran out
    /// between attempts: the remaining budget was smaller than the next
    /// backoff, so the loop failed fast instead of sleeping past it.
    RecoveryBudgetExhausted {
        /// Attempts completed before the budget ran out.
        attempts: usize,
        /// The backoff that would have overrun the budget, in
        /// milliseconds.
        next_backoff_ms: u64,
        /// Budget remaining when the decision was taken, in milliseconds.
        remaining_ms: u64,
        /// The transient failure that would have been retried, rendered.
        last_error: String,
    },
}

fn write_context(f: &mut fmt::Formatter<'_>, context: &[String]) -> fmt::Result {
    if !context.is_empty() {
        write!(f, "; recent activity per thread block:")?;
        for line in context {
            write!(f, "\n  {line}")?;
        }
    }
    Ok(())
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputShape { message } => write!(f, "bad input shape: {message}"),
            RuntimeError::InvalidOptions { message } => write!(f, "invalid run options: {message}"),
            RuntimeError::InvalidFaultPlan { message } => {
                write!(f, "invalid fault plan: {message}")
            }
            RuntimeError::Hang {
                rank,
                tb,
                step,
                context,
                ..
            } => {
                write!(f, "execution hung at rank {rank} tb {tb} step {step}")?;
                write_context(f, context)
            }
            RuntimeError::DeadlineExceeded {
                rank,
                tb,
                step,
                context,
                ..
            } => {
                write!(
                    f,
                    "global deadline exceeded at rank {rank} tb {tb} step {step}"
                )?;
                write_context(f, context)
            }
            RuntimeError::WorkerPanic {
                rank,
                tb,
                step,
                payload,
                context,
                ..
            } => {
                write!(
                    f,
                    "worker panicked at rank {rank} tb {tb} step {step}: {payload}"
                )?;
                write_context(f, context)
            }
            RuntimeError::InjectedFault {
                rank,
                tb,
                step,
                fault,
                context,
                ..
            } => {
                write!(
                    f,
                    "injected fault killed rank {rank} tb {tb} step {step}: {fault}"
                )?;
                write_context(f, context)
            }
            RuntimeError::VerificationFailed { message } => {
                write!(f, "output verification failed: {message}")
            }
            RuntimeError::RecoveryBudgetExhausted {
                attempts,
                next_backoff_ms,
                remaining_ms,
                last_error,
            } => {
                write!(
                    f,
                    "recovery deadline budget exhausted after {attempts} attempt(s): \
                     {remaining_ms}ms remaining < {next_backoff_ms}ms next backoff \
                     (last failure: {last_error})"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<FaultPlanError> for RuntimeError {
    fn from(e: FaultPlanError) -> Self {
        RuntimeError::InvalidFaultPlan {
            message: e.to_string(),
        }
    }
}

impl RuntimeError {
    /// Whether a retry of the same execution could plausibly succeed.
    /// Structural rejections (bad inputs, bad options, bad plans) are
    /// permanent; everything rooted in timing, scheduling or injected
    /// faults is transient under one-shot injection semantics.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            RuntimeError::InputShape { .. }
                | RuntimeError::InvalidOptions { .. }
                | RuntimeError::InvalidFaultPlan { .. }
                | RuntimeError::RecoveryBudgetExhausted { .. }
        )
    }

    /// Whether this failure interrupted an otherwise-sound execution, so
    /// resuming from an epoch checkpoint is safe. Verification failures
    /// are excluded deliberately: a corrupting fault may have poisoned
    /// memory *before* the checkpoint was taken, so only a from-scratch
    /// retry clears it.
    #[must_use]
    pub fn is_resumable(&self) -> bool {
        matches!(
            self,
            RuntimeError::Hang { .. }
                | RuntimeError::WorkerPanic { .. }
                | RuntimeError::InjectedFault { .. }
        )
    }

    /// The observed cancellation latency — time from the failing worker
    /// tripping the cancel token to the last worker joining — for the
    /// failure variants that tear a run down. This, not wall clock around
    /// the whole call, is the right thing to assert "prompt abort" on:
    /// it excludes setup and scheduling noise on loaded hosts.
    #[must_use]
    pub fn drain(&self) -> Option<Duration> {
        match self {
            RuntimeError::Hang { drain, .. }
            | RuntimeError::DeadlineExceeded { drain, .. }
            | RuntimeError::WorkerPanic { drain, .. }
            | RuntimeError::InjectedFault { drain, .. } => Some(*drain),
            _ => None,
        }
    }

    /// The structured wait-for-graph diagnosis for the failure variants
    /// that tear a run down, or `None` for structural rejections.
    #[must_use]
    pub fn diagnosis(&self) -> Option<&StallDiagnosis> {
        match self {
            RuntimeError::Hang { diagnosis, .. }
            | RuntimeError::DeadlineExceeded { diagnosis, .. }
            | RuntimeError::WorkerPanic { diagnosis, .. }
            | RuntimeError::InjectedFault { diagnosis, .. } => Some(diagnosis),
            _ => None,
        }
    }

    /// Path of the black-box dump written for this failure, when
    /// [`RunOptions::blackbox_dir`] was set.
    #[must_use]
    pub fn blackbox_path(&self) -> Option<&std::path::Path> {
        self.diagnosis().and_then(|d| d.dump.as_deref())
    }
}

/// Observability counters for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Tile-pool behaviour *during this run* (allocation/reuse deltas;
    /// `free` is the pool's absolute level afterwards). With a warm
    /// shared pool (see [`execute_pooled`]), `pool.allocated` is zero.
    pub pool: PoolStats,
    /// Instruction instances completed across all thread blocks and
    /// tiles — the denominator for allocations-per-step.
    pub instructions: u64,
}

/// The tile pool [`execute`] would create internally for `ir` under
/// `opts`: buffers sized to one maximal tile (`tile_elems` × the largest
/// instruction `count`). Create one of these and pass it to
/// [`execute_pooled`] repeatedly to keep buffers warm across runs.
#[must_use]
pub fn tile_pool_for(ir: &IrProgram, opts: &RunOptions) -> Arc<TilePool> {
    let params = opts.protocol.params();
    let tile_elems = opts
        .tile_elems
        .unwrap_or_else(|| ((params.slot_bytes as usize) / std::mem::size_of::<f32>()).max(1));
    let max_count = ir
        .gpus
        .iter()
        .flat_map(|g| &g.threadblocks)
        .flat_map(|t| &t.instructions)
        .map(|i| i.count.max(1))
        .max()
        .unwrap_or(1);
    TilePool::new(tile_elems * max_count)
}

/// Warm, reusable execution state: the tile pool plus recycled rank
/// memory spaces and (optionally) result vectors. [`execute_in_arena`]
/// draws every buffer of the data path from here and stashes the space
/// buffers back after the run, so repeated executions of the same
/// program allocate nothing in steady state — not tiles, not rank
/// memory, and, when finished outputs are handed back with
/// [`recycle_outputs`](ExecArena::recycle_outputs), not result buffers
/// either. Beyond skipping `malloc`, reuse keeps the pages faulted in:
/// for large buffers that is worth more than the allocation itself.
pub struct ExecArena {
    pool: Arc<TilePool>,
    spares: Vec<SpaceBuffers>,
    outputs: Vec<Vec<f32>>,
    /// Recycled epoch-checkpoint staging buffers: drawn when a run's
    /// [`RunOptions::epochs`] schedule places boundaries, returned after
    /// the run. Like `spares`, reuse keeps the snapshot path free of
    /// steady-state allocation *and* of fresh page faults.
    snaps: Vec<SpaceBuffers>,
    /// Metric handles resolved once for the arena's program and reused
    /// by every metered run whose thread-block layout still matches.
    /// Counters accumulate across runs; a snapshotting run zeroes them
    /// first.
    metrics: Option<Arc<ArenaMetrics>>,
    /// Flight-recorder rings reused across runs when the worker count
    /// matches; reset (not reallocated) at the start of each run.
    flight: Option<Arc<FlightRecorder>>,
}

impl ExecArena {
    /// An arena whose tile pool is sized for `ir` under `opts` (see
    /// [`tile_pool_for`]). Memory-space and output buffers are adopted
    /// from whatever program runs in it, so one arena can serve
    /// different programs of similar size.
    #[must_use]
    pub fn new(ir: &IrProgram, opts: &RunOptions) -> Self {
        Self {
            pool: tile_pool_for(ir, opts),
            spares: Vec::new(),
            outputs: Vec::new(),
            snaps: Vec::new(),
            metrics: opts.metrics.then(|| Arc::new(ArenaMetrics::new(ir))),
            flight: None,
        }
    }

    /// The arena's tile pool, e.g. for inspecting cumulative
    /// [`stats`](TilePool::stats).
    #[must_use]
    pub fn pool(&self) -> &Arc<TilePool> {
        &self.pool
    }

    /// Hands finished output buffers back for reuse as the next run's
    /// result vectors.
    pub fn recycle_outputs(&mut self, outputs: Vec<Vec<f32>>) {
        self.outputs.extend(outputs);
    }
}

type ConnKey = (usize, usize, usize); // (src rank, dst rank, channel)

/// One in this many instructions (per worker) gets a latency-histogram
/// observation. Counting every instruction is cheap; *timing* every
/// instruction is not — two clock reads dwarf the relaxed adds the rest
/// of the instrumentation costs. Sampling keeps the per-op latency
/// distribution honest while staying inside the <3% always-on budget.
/// The first instruction of every worker is always sampled, so even a
/// one-instruction run produces an observation per active opcode.
const LATENCY_SAMPLE_PERIOD: u64 = 8;

// The per-task diagnostic ring (`EventRing`, `Moment`) lives in
// `crate::flight` alongside the rest of the forensics layer.

/// Per-worker trace recorder: a plain `Vec` owned by the worker thread
/// (lock-free by construction), merged into one [`Trace`] after join.
struct Recorder {
    enabled: bool,
    epoch: Instant,
    rank: usize,
    tb: usize,
    events: Vec<TraceEvent>,
}

impl Recorder {
    fn emit(&mut self, kind: EventKind) {
        if self.enabled {
            self.events.push(TraceEvent {
                ts_us: self.epoch.elapsed().as_secs_f64() * 1e6,
                rank: self.rank,
                tb: self.tb,
                kind,
            });
        }
    }
}

/// Every opcode, in [`op_index`] order, for metric-handle construction.
const ALL_OPS: [OpCode; 9] = [
    OpCode::Nop,
    OpCode::Send,
    OpCode::Recv,
    OpCode::Copy,
    OpCode::Reduce,
    OpCode::RecvReduceCopy,
    OpCode::RecvCopySend,
    OpCode::RecvReduceSend,
    OpCode::RecvReduceCopySend,
];

/// Dense index of an opcode into [`WorkerMetrics::ops`].
fn op_index(op: OpCode) -> usize {
    match op {
        OpCode::Nop => 0,
        OpCode::Send => 1,
        OpCode::Recv => 2,
        OpCode::Copy => 3,
        OpCode::Reduce => 4,
        OpCode::RecvReduceCopy => 5,
        OpCode::RecvCopySend => 6,
        OpCode::RecvReduceSend => 7,
        OpCode::RecvReduceCopySend => 8,
    }
}

/// One worker's metric handles, resolved from the [`Registry`] at spawn
/// time so the hot path never touches the registry lock: each update is
/// an array index plus a relaxed atomic add into this worker's shard.
struct WorkerMetrics {
    /// This worker's shard in every sharded metric.
    shard: usize,
    sem_wait_ns: Arc<Counter>,
    fifo_send_block_ns: Arc<Counter>,
    fifo_recv_block_ns: Arc<Counter>,
    /// `(bytes_sent, sends, peak_occupancy)` for this thread block's send
    /// connection, when it has one.
    send_conn: Option<(Arc<Counter>, Arc<Counter>, Arc<Gauge>)>,
    /// `(bytes_received, recvs)` for this thread block's receive
    /// connection, when it has one.
    recv_conn: Option<(Arc<Counter>, Arc<Counter>)>,
    /// Per-opcode `(instruction counter, latency histogram)`, indexed by
    /// [`op_index`].
    ops: Vec<(Arc<Counter>, Arc<Histogram>)>,
}

impl WorkerMetrics {
    fn new(reg: &Registry, shard: usize, rank: usize, tb: &mscclang::IrThreadBlock) -> Self {
        let conn = |src: usize, dst: usize| -> [(String, String); 3] {
            [
                ("src".to_string(), src.to_string()),
                ("dst".to_string(), dst.to_string()),
                ("channel".to_string(), tb.channel.to_string()),
            ]
        };
        fn as_refs(pairs: &[(String, String); 3]) -> Vec<(&str, &str)> {
            pairs
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect()
        }
        let send_conn = tb.send_peer.map(|peer| {
            let labels = conn(rank, peer);
            let labels = as_refs(&labels);
            (
                reg.counter(names::BYTES_SENT, &labels),
                reg.counter(names::SENDS, &labels),
                reg.gauge(names::FIFO_PEAK_OCCUPANCY, &labels),
            )
        });
        let recv_conn = tb.recv_peer.map(|peer| {
            let labels = conn(peer, rank);
            let labels = as_refs(&labels);
            (
                reg.counter(names::BYTES_RECEIVED, &labels),
                reg.counter(names::RECVS, &labels),
            )
        });
        Self {
            shard,
            sem_wait_ns: reg.counter(names::SEM_WAIT_NS, &[]),
            fifo_send_block_ns: reg.counter(names::FIFO_SEND_BLOCK_NS, &[]),
            fifo_recv_block_ns: reg.counter(names::FIFO_RECV_BLOCK_NS, &[]),
            send_conn,
            recv_conn,
            ops: ALL_OPS
                .iter()
                .map(|op| {
                    (
                        reg.counter(names::INSTRUCTIONS, &[("op", op.mnemonic())]),
                        reg.histogram(names::INSTR_LATENCY_NS, &[("op", op.mnemonic())]),
                    )
                })
                .collect(),
        }
    }

    /// Zeroes this worker's slice of every metric it writes. Called by
    /// the worker itself at the start of a snapshotting run, so reused
    /// arena handles yield a per-run snapshot without the main thread
    /// walking ~50 metrics' worth of cache lines serially: shards are
    /// disjoint per worker, and the peak-occupancy gauge has the sending
    /// thread block as its only writer.
    fn reset_own_shard(&self) {
        self.sem_wait_ns.reset_shard(self.shard);
        self.fifo_send_block_ns.reset_shard(self.shard);
        self.fifo_recv_block_ns.reset_shard(self.shard);
        if let Some((bytes_sent, sends, peak)) = &self.send_conn {
            bytes_sent.reset_shard(self.shard);
            sends.reset_shard(self.shard);
            peak.reset();
        }
        if let Some((bytes_recv, recvs)) = &self.recv_conn {
            bytes_recv.reset_shard(self.shard);
            recvs.reset_shard(self.shard);
        }
        for (count, latency) in &self.ops {
            count.reset_shard(self.shard);
            latency.reset_shard(self.shard);
        }
    }
}

/// A run's metric infrastructure, resolved once and reused: the registry
/// plus one [`WorkerMetrics`] per thread block in spawn order. Handle
/// resolution goes through the registry mutex with owned label strings
/// and allocates every metric's shard array, so doing it per run costs
/// tens of microseconds — real money against the <3% always-on overhead
/// budget at small message sizes. An [`ExecArena`] caches one of these;
/// [`Registry::reset`] between runs keeps snapshots per-run.
struct ArenaMetrics {
    registry: Registry,
    workers: Vec<WorkerMetrics>,
    /// Tile-pool counters, written on shard 0 by the main thread after
    /// the workers join.
    pool_allocated: Arc<Counter>,
    pool_reused: Arc<Counter>,
    /// One [`TbIdentity`] per worker, to detect when a different program
    /// runs in the same arena and the cached handles would mislabel its
    /// traffic.
    layout: Vec<TbIdentity>,
}

/// `(rank, tb id, channel, send peer, recv peer)` — everything the metric
/// labels are derived from.
type TbIdentity = (usize, usize, usize, Option<usize>, Option<usize>);

impl ArenaMetrics {
    fn new(ir: &IrProgram) -> Self {
        let num_workers: usize = ir.gpus.iter().map(|g| g.threadblocks.len()).sum();
        let registry = Registry::new(num_workers.max(1));
        let mut workers = Vec::with_capacity(num_workers);
        let mut layout = Vec::with_capacity(num_workers);
        for gpu in &ir.gpus {
            for tb in &gpu.threadblocks {
                workers.push(WorkerMetrics::new(&registry, workers.len(), gpu.rank, tb));
                layout.push((gpu.rank, tb.id, tb.channel, tb.send_peer, tb.recv_peer));
            }
        }
        let pool_allocated = registry.counter(names::POOL_ALLOCATED, &[]);
        let pool_reused = registry.counter(names::POOL_REUSED, &[]);
        Self {
            registry,
            workers,
            pool_allocated,
            pool_reused,
            layout,
        }
    }

    /// Whether `ir`'s thread-block layout is the one these handles were
    /// resolved for.
    fn matches(&self, ir: &IrProgram) -> bool {
        let mut expected = self.layout.iter();
        for gpu in &ir.gpus {
            for tb in &gpu.threadblocks {
                if expected.next()
                    != Some(&(gpu.rank, tb.id, tb.channel, tb.send_peer, tb.recv_peer))
                {
                    return false;
                }
            }
        }
        expected.next().is_none()
    }
}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn validate_options(opts: &RunOptions) -> Result<(), RuntimeError> {
    if opts.timeout.is_zero() {
        return Err(RuntimeError::InvalidOptions {
            message: "timeout must be positive".into(),
        });
    }
    if opts.tile_elems == Some(0) {
        return Err(RuntimeError::InvalidOptions {
            message: "tile_elems must be positive when set".into(),
        });
    }
    if opts.deadline.is_some_and(|d| d.is_zero()) {
        return Err(RuntimeError::InvalidOptions {
            message: "deadline must be positive when set".into(),
        });
    }
    Ok(())
}

/// Executes a compiled program over real `f32` buffers.
///
/// `inputs[r]` must hold `in_chunks * chunk_elems` elements. Returns each
/// rank's output buffer (`out_chunks * chunk_elems` elements).
///
/// # Errors
///
/// Returns [`RuntimeError`] on shape mismatches, invalid options, hangs,
/// deadline overruns and worker panics.
pub fn execute(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<Vec<Vec<f32>>, RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, _, _, _)| outputs)
}

/// Like [`execute`], additionally returning the run's [`ExecStats`]
/// (tile-pool allocation counters and instructions executed).
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_with_stats(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, ExecStats), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, _, stats, _)| (outputs, stats))
}

/// Like [`execute`], additionally returning the run's [`MetricsSnapshot`]
/// without recording a trace — the cheapest way to observe the always-on
/// counters. Empty when [`RunOptions::metrics`] is off.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with_metrics(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, MetricsSnapshot), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        true,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, _, _, m)| (outputs, m.unwrap_or_default()))
}

/// Like [`execute_with_stats`], reusing a caller-owned [`TilePool`]
/// (typically from [`tile_pool_for`]) so tile buffers stay warm across
/// runs: after one warmup execution, subsequent runs report zero pool
/// allocations. For the full steady state — rank memory and result
/// buffers too — use [`execute_in_arena`].
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_pooled(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    pool: &Arc<TilePool>,
) -> Result<(Vec<Vec<f32>>, ExecStats), RuntimeError> {
    let mut arena = ExecArena {
        pool: Arc::clone(pool),
        spares: Vec::new(),
        outputs: Vec::new(),
        snaps: Vec::new(),
        metrics: None,
        flight: None,
    };
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        Some(&mut arena),
        None,
        None,
    )
    .map(|(outputs, _, stats, _)| (outputs, stats))
}

/// Like [`execute_with_stats`], drawing every buffer of the data path —
/// tiles, rank memory spaces, result vectors — from a caller-owned
/// [`ExecArena`] and returning the reusable ones to it afterwards. After
/// one warmup run (and with outputs handed back via
/// [`ExecArena::recycle_outputs`]), subsequent runs of the same program
/// perform zero steady-state allocations on the data path; this is the
/// configuration the throughput bench measures.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_in_arena(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    arena: &mut ExecArena,
) -> Result<(Vec<Vec<f32>>, ExecStats), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        None,
        Some(arena),
        None,
        None,
    )
    .map(|(outputs, _, stats, _)| (outputs, stats))
}

/// Like [`execute`], additionally recording a wall-clock [`Trace`] of
/// every instruction, semaphore wait, FIFO block and message.
///
/// Each worker thread appends to its own buffer (no synchronization on
/// the hot path beyond what execution itself needs); the buffers are
/// merged into one timestamp-sorted trace after the workers join.
///
/// # Errors
///
/// Returns [`RuntimeError`] on shape mismatches, invalid options, hangs,
/// deadline overruns and worker panics.
pub fn execute_traced(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, Trace), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        true,
        false,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, trace, _, _)| (outputs, trace.expect("tracing was enabled")))
}

/// Like [`execute_traced`], additionally returning the run's
/// [`MetricsSnapshot`]: the always-on counters — bytes and messages per
/// connection, semaphore wait and FIFO block time, per-instruction-kind
/// latency histograms, tile-pool behaviour — merged across the worker
/// shards at the end of the run. This is the entry point behind
/// `msccl profile`. The snapshot is empty when `opts.metrics` is off.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_profiled(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
) -> Result<(Vec<Vec<f32>>, Trace, MetricsSnapshot), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        true,
        true,
        None,
        None,
        None,
        None,
    )
    .map(|(outputs, trace, _, m)| {
        (
            outputs,
            trace.expect("tracing was enabled"),
            m.unwrap_or_default(),
        )
    })
}

/// Like [`execute`], with deterministic faults injected from `injector`.
///
/// Injection is one-shot per spec *across the injector's lifetime*:
/// calling this again with the same injector models a retry after a
/// transient fault. A disruptive fault surfaces as a structured error
/// whose context names the faults that struck; a corrupting fault
/// surfaces only through output verification (see
/// [`reference::check_outputs`](crate::reference::check_outputs) or the
/// recovery layer).
///
/// # Errors
///
/// Returns [`RuntimeError`] like [`execute`], plus
/// [`RuntimeError::InjectedFault`] when a planned kill strikes.
pub fn execute_with_faults(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: &FaultInjector,
) -> Result<Vec<Vec<f32>>, RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        Some(injector),
        None,
        None,
        None,
    )
    .map(|(outputs, _, _, _)| outputs)
}

/// [`execute_with_faults`] with tracing, as [`execute_traced`] is to
/// [`execute`].
///
/// # Errors
///
/// As for [`execute_with_faults`].
pub fn execute_with_faults_traced(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: &FaultInjector,
) -> Result<(Vec<Vec<f32>>, Trace), RuntimeError> {
    execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        true,
        false,
        Some(injector),
        None,
        None,
        None,
    )
    .map(|(outputs, trace, _, _)| (outputs, trace.expect("tracing was enabled")))
}

/// The epoch-aware entry point behind the recovery ladder's *resume*
/// decision. Executes `ir` with optional fault injection, either from
/// scratch (`resume: None`) or from a previously captured
/// [`EpochCheckpoint`]: rank memory is restored from the snapshot and
/// every thread block starts at its checkpoint watermark, so only the
/// work after the last consistent cut is redone.
///
/// Alongside the result it always returns the attempt's [`EpochStatus`]:
/// boundary count, checkpoints published, instruction instances resumed
/// and executed, and — when the attempt failed transiently with a
/// checkpoint in hand — the checkpoint to feed back into the next call.
///
/// # Errors
///
/// The `Result` half fails like [`execute_with_faults`]; additionally
/// [`RuntimeError::InvalidOptions`] when `resume` does not fit `ir`
/// under `opts` (rank count or boundary schedule mismatch — e.g. a
/// checkpoint replayed against different options).
pub fn execute_resumable(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: Option<&FaultInjector>,
    resume: Option<EpochCheckpoint>,
) -> (Result<Vec<Vec<f32>>, RuntimeError>, EpochStatus) {
    execute_resumable_in_arena(ir, inputs, chunk_elems, opts, injector, resume, None)
}

/// [`execute_resumable`] drawing the data path from a caller-owned
/// [`ExecArena`] when one is given, as [`execute_in_arena`] is to
/// [`execute_with_stats`]. This is the attempt primitive behind
/// [`execute_with_recovery_in_arena`](crate::execute_with_recovery_in_arena):
/// a long-running process (the service daemon) keeps one arena per
/// executor worker and every attempt of every request — resume, retry,
/// fallback — reuses its tiles, rank memory and result buffers.
///
/// # Errors
///
/// As for [`execute_resumable`].
pub fn execute_resumable_in_arena(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: Option<&FaultInjector>,
    resume: Option<EpochCheckpoint>,
    arena: Option<&mut ExecArena>,
) -> (Result<Vec<Vec<f32>>, RuntimeError>, EpochStatus) {
    let mut status = EpochStatus::default();
    let result = execute_impl(
        ir,
        inputs,
        chunk_elems,
        opts,
        false,
        false,
        injector,
        arena,
        resume,
        Some(&mut status),
    )
    .map(|(outputs, _, _, _)| outputs);
    (result, status)
}

/// Everything one run produces: per-rank outputs, the trace when
/// tracing was on, the pool/instruction statistics, and the metrics
/// snapshot when metrics were on.
type RunProducts = (
    Vec<Vec<f32>>,
    Option<Trace>,
    ExecStats,
    Option<MetricsSnapshot>,
);

#[allow(clippy::too_many_arguments)]
fn execute_impl(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    tracing: bool,
    want_snapshot: bool,
    injector: Option<&FaultInjector>,
    arena: Option<&mut ExecArena>,
    resume: Option<EpochCheckpoint>,
    epoch_out: Option<&mut EpochStatus>,
) -> Result<RunProducts, RuntimeError> {
    let mut arena = arena;
    validate_options(opts)?;
    let collective = &ir.collective;
    let num_ranks = ir.num_ranks();
    if inputs.len() != num_ranks {
        return Err(RuntimeError::InputShape {
            message: format!("{} input buffers for {} ranks", inputs.len(), num_ranks),
        });
    }
    if chunk_elems == 0 {
        return Err(RuntimeError::InputShape {
            message: "chunk_elems must be positive".into(),
        });
    }
    let in_elems = collective.in_chunks() * chunk_elems;
    for (r, buf) in inputs.iter().enumerate() {
        if buf.len() != in_elems {
            return Err(RuntimeError::InputShape {
                message: format!(
                    "rank {r} input has {} elements, expected {in_elems}",
                    buf.len()
                ),
            });
        }
    }

    let params = opts.protocol.params();
    let tile_elems = opts
        .tile_elems
        .unwrap_or_else(|| ((params.slot_bytes as usize) / std::mem::size_of::<f32>()).max(1));
    let num_tiles = chunk_elems.div_ceil(tile_elems);
    let op = opts.reduce_op;

    // ---- Tile pool: every payload in flight lives in a recycled buffer.
    // Counters are read as before/after deltas so a shared pool's history
    // from earlier runs does not leak into this run's stats.
    let pool = match &arena {
        Some(a) => Arc::clone(&a.pool),
        None => tile_pool_for(ir, opts),
    };
    let pool_base = pool.stats();
    let mut spares = arena
        .as_mut()
        .map(|a| std::mem::take(&mut a.spares))
        .unwrap_or_default();
    let mut spare_outs = arena
        .as_mut()
        .map(|a| std::mem::take(&mut a.outputs))
        .unwrap_or_default();

    // ---- Memory, loaded with the inputs. Recycled space buffers keep
    // their warmed-up pages; the input load below completes the
    // fresh-construction semantics `RankMemory::recycled` documents.
    // Chunks the instruction scan proves write-before-read skip even
    // the re-zero — their stale recycled contents are unobservable.
    let memories: Vec<Arc<RankMemory>> = (0..num_ranks)
        .map(|r| {
            let spare = spares.pop().unwrap_or_default();
            // Fresh (non-recycled) construction zeroes everything anyway, so
            // only pay for the write-before-read scan when buffers recycle.
            let skip = if spare.is_empty() {
                Default::default()
            } else {
                overwrite_only_chunks(ir, collective, r)
            };
            let mem = RankMemory::recycled_skipping(
                collective,
                r,
                ir.gpu(r).scratch_chunks,
                chunk_elems,
                spare,
                |space, c| skip[space_slot(space)].get(c).copied().unwrap_or(false),
            );
            for index in 0..collective.in_chunks() {
                let base = index * chunk_elems;
                mem.write(
                    collective,
                    mscclang::BufferKind::Input,
                    index,
                    0,
                    &inputs[r][base..base + chunk_elems],
                );
            }
            Arc::new(mem)
        })
        .collect();

    // ---- Epoch schedule. Resolve the mode first (Auto applies its
    // traffic budget and may decline to checkpoint), then turn the
    // program's verified cut chain into per-boundary completed-
    // instruction targets. Hand-built IR that never went through the
    // compiler gets its cuts computed on the fly.
    let epoch_mode = opts.epochs.resolve(ir, chunk_elems);
    let boundaries: Vec<Vec<Vec<u64>>> =
        if matches!(epoch_mode, EpochMode::Off | EpochMode::Count(0)) {
            Vec::new()
        } else {
            let computed;
            let cuts = if ir.epoch_cuts.is_empty() {
                computed = mscclang::passes::epoch_cuts(ir);
                &computed
            } else {
                &ir.epoch_cuts
            };
            mscclang::passes::schedule_epochs(ir, cuts, num_tiles, epoch_mode)
        };

    // ---- Resume validation: a checkpoint only makes sense against the
    // exact schedule it was captured under — same rank count, and its
    // boundary present with identical targets. Anything else means the
    // caller replayed it against different options, and the watermarks
    // would silently corrupt the run.
    if let Some(cp) = &resume {
        let fits = cp.memories.len() == num_ranks
            && boundaries
                .get(cp.boundary)
                .is_some_and(|b| *b == cp.targets);
        if !fits {
            return Err(RuntimeError::InvalidOptions {
                message: format!(
                    "resume checkpoint (boundary {}, {} ranks) does not match this \
                     run's epoch schedule ({} boundaries, {num_ranks} ranks)",
                    cp.boundary,
                    cp.memories.len(),
                    boundaries.len()
                ),
            });
        }
    }
    let resume_info = resume.as_ref().map(|cp| (cp.boundary, cp.instructions));
    let start_targets: Vec<Vec<u64>> = match &resume {
        Some(cp) => cp.targets.clone(),
        None => ir
            .gpus
            .iter()
            .map(|g| vec![0u64; g.threadblocks.len()])
            .collect(),
    };
    let start_total: u64 = start_targets.iter().flatten().sum();
    if let Some(cp) = &resume {
        // The snapshot was taken at a consistent cut: restoring every
        // rank's spaces over the freshly loaded inputs reproduces the
        // complete distributed state at that cut (FIFOs were drained,
        // so memory is all there was).
        for (mem, snap) in memories.iter().zip(cp.memories.iter()) {
            mem.restore_from(snap);
        }
    }
    let num_workers: usize = ir.gpus.iter().map(|g| g.threadblocks.len()).sum();
    let epoch_state: Option<Arc<EpochState>> = if boundaries.is_empty() {
        None
    } else {
        // Staging for the checkpoint slot: the consumed resume
        // checkpoint's own buffers are the natural recycling source;
        // otherwise the arena's stash from the previous run, grown with
        // empty buffers on first use.
        let mut staging: Vec<SpaceBuffers> = match resume {
            Some(cp) => cp.memories,
            None => arena
                .as_mut()
                .map(|a| std::mem::take(&mut a.snaps))
                .unwrap_or_default(),
        };
        staging.resize_with(num_ranks, SpaceBuffers::default);
        let state = EpochState::new(
            boundaries,
            num_workers,
            memories.clone(),
            staging,
            &start_targets,
        );
        if let Some((b, instructions)) = resume_info {
            // An attempt that fails again before publishing a new
            // boundary must still hand the same checkpoint back out.
            state.seed_resume(b, instructions);
        }
        Some(Arc::new(state))
    };

    // ---- Connections: one bounded FIFO per (src, dst, ch), carrying
    // pooled tiles by ownership (no copy in transit).
    let mut fifos: HashMap<ConnKey, Arc<Fifo<PooledTile>>> = HashMap::new();
    for gpu in &ir.gpus {
        for tb in &gpu.threadblocks {
            if let Some(peer) = tb.send_peer {
                fifos.insert(
                    (gpu.rank, peer, tb.channel),
                    Arc::new(Fifo::new(params.num_slots)),
                );
            }
        }
    }

    // ---- Semaphores, per (rank, tb).
    let semaphores: HashMap<(usize, usize), Arc<Semaphore>> = ir
        .gpus
        .iter()
        .flat_map(|g| {
            g.threadblocks
                .iter()
                .map(|t| ((g.rank, t.id), Arc::new(Semaphore::new())))
        })
        .collect();

    // On resume, every semaphore restarts at its block's watermark: the
    // monotonic encoding *is* the completed-instruction count, so the
    // checkpoint targets are exactly the values dependents will wait on.
    if resume_info.is_some() {
        for (r, g) in start_targets.iter().enumerate() {
            for (t, &start) in g.iter().enumerate() {
                semaphores[&(r, t)].set(start);
            }
        }
    }

    // Instruction counts per tb, for monotonic semaphore encoding.
    let tb_len: HashMap<(usize, usize), u64> = ir
        .gpus
        .iter()
        .flat_map(|g| {
            g.threadblocks
                .iter()
                .map(|t| ((g.rank, t.id), t.instructions.len() as u64))
        })
        .collect();

    // Shared wall-clock origin so all workers' timestamps are comparable;
    // the global deadline, when set, counts from here too.
    let epoch = Instant::now();
    let global_deadline = opts.deadline.map(|d| epoch + d);
    let cancel = CancelToken::new();

    // ---- Metrics: one shard per worker thread, so a hot-path update is
    // a relaxed atomic add with no sharing; merged on snapshot. An arena
    // that already carries handles for this program lends them;
    // otherwise they are resolved fresh and, when an arena is present,
    // cached for the next run. Arena counters are cumulative (the
    // Prometheus model): only a run that materializes a snapshot zeroes
    // the shards first — each worker its own, overlapping thread spawn —
    // so plain metered runs pay nothing but the hot-path adds. With no
    // arena and no snapshot requested, the counters would be dropped
    // unread, so they are not collected at all.
    let run_metrics: Option<Arc<ArenaMetrics>> = if !opts.metrics {
        None
    } else if let Some(cached) = arena
        .as_deref()
        .and_then(|a| a.metrics.clone())
        .filter(|m| m.matches(ir))
    {
        Some(cached)
    } else if want_snapshot || arena.is_some() {
        let m = Arc::new(ArenaMetrics::new(ir));
        if let Some(a) = arena.as_deref_mut() {
            a.metrics = Some(Arc::clone(&m));
        }
        Some(m)
    } else {
        None
    };
    if want_snapshot {
        if let Some(m) = &run_metrics {
            m.pool_allocated.reset_shard(0);
            m.pool_reused.reset_shard(0);
            m.registry.gauge(names::SCHED_RUNNABLE_PEAK, &[]).reset();
        }
    }

    // ---- Dense connection indices so FIFO wake keys are plain integers.
    // The assignment order is arbitrary but fixed for the run; both
    // endpoints of a connection resolve the same index.
    let conn_index: HashMap<(usize, usize, usize), usize> =
        fifos.keys().enumerate().map(|(i, k)| (*k, i)).collect();

    // ---- Flat task indices in spawn order: semaphore wake keys and
    // metrics shards are addressed by this index, so watermarks and
    // shard ownership are invariant under worker migration.
    let flat_index: HashMap<(usize, usize), usize> = ir
        .gpus
        .iter()
        .flat_map(|g| g.threadblocks.iter().map(|t| (g.rank, t.id)))
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();

    // ---- Worker pool size: `min(num_cpus, num_tbs)` threads by
    // default, pinned by `worker_threads`. Tasks outnumbering workers is
    // the normal case — oversubscription is handled by cooperative
    // yields, not by the OS scheduler thrashing between threads.
    let pool_threads = {
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let want = if opts.worker_threads == 0 {
            auto
        } else {
            opts.worker_threads
        };
        want.clamp(1, flat_index.len().max(1))
    };

    // ---- Flight recorder: per-worker forensic rings, reused from the
    // arena when the shard count still matches, reset (not reallocated)
    // per run. Created before the tasks so each can record through it.
    let flight: Option<Arc<FlightRecorder>> = opts.flight.then(|| {
        let cached = arena
            .as_deref()
            .and_then(|a| a.flight.clone())
            .filter(|f| f.shards() == pool_threads);
        let f = cached.unwrap_or_else(|| Arc::new(FlightRecorder::new(pool_threads)));
        f.reset();
        if let Some(a) = arena.as_deref_mut() {
            a.flight = Some(Arc::clone(&f));
        }
        f
    });

    // ---- One resumable task per thread block, in spawn order. Each
    // task owns its interpreter state behind a `Mutex`; the scheduler's
    // ownership discipline guarantees at most one worker holds it at a
    // time, so the lock is uncontended by construction.
    let tasks: Vec<Mutex<TbTask>> = ir
        .gpus
        .iter()
        .flat_map(|gpu| gpu.threadblocks.iter().map(move |tb| (gpu, tb)))
        .map(|(gpu, tb)| {
            let flat = flat_index[&(gpu.rank, tb.id)];
            let worker_metrics: Option<&WorkerMetrics> =
                run_metrics.as_deref().map(|m| &m.workers[flat]);
            if want_snapshot {
                if let Some(m) = worker_metrics {
                    m.reset_own_shard();
                }
            }
            let send = tb.send_peer.map(|p| ConnRef {
                peer: p,
                channel: tb.channel,
                idx: conn_index[&(gpu.rank, p, tb.channel)],
                fifo: Arc::clone(&fifos[&(gpu.rank, p, tb.channel)]),
            });
            let recv = tb.recv_peer.map(|p| ConnRef {
                peer: p,
                channel: tb.channel,
                idx: conn_index[&(p, gpu.rank, tb.channel)],
                fifo: Arc::clone(&fifos[&(p, gpu.rank, tb.channel)]),
            });
            let dep_sems: Vec<Vec<(Arc<Semaphore>, u64, usize)>> = tb
                .instructions
                .iter()
                .map(|i| {
                    i.deps
                        .iter()
                        .map(|d| {
                            (
                                Arc::clone(&semaphores[&(gpu.rank, d.tb)]),
                                tb_len[&(gpu.rank, d.tb)],
                                flat_index[&(gpu.rank, d.tb)],
                            )
                        })
                        .collect()
                })
                .collect();
            let epoch_ctx: Option<WorkerEpoch> = epoch_state.as_ref().map(|state| WorkerEpoch {
                state: Arc::clone(state),
                targets: state.targets_for(gpu.rank, tb.id),
                // Gates at or before the resumed boundary are
                // never revisited — by anyone, so they stay
                // consistent.
                next: resume_info.map_or(0, |(b, _)| b + 1),
                worker: flat,
            });
            Mutex::new(TbTask::new(TbTaskInit {
                rank: gpu.rank,
                tb,
                flat,
                collective,
                mem: Arc::clone(&memories[gpu.rank]),
                sem: Arc::clone(&semaphores[&(gpu.rank, tb.id)]),
                pool: Arc::clone(&pool),
                send,
                recv,
                dep_sems,
                num_tiles,
                tile_elems,
                chunk_elems,
                op,
                timeout: opts.timeout,
                global_deadline,
                cancel: Arc::clone(&cancel),
                injector,
                metrics: worker_metrics,
                epoch_ctx,
                start: start_targets[gpu.rank][tb.id],
                tracing,
                clock_epoch: epoch,
                flight: flight.as_deref(),
            }))
        })
        .collect();

    let num_tasks = tasks.len();
    let sched = Scheduler::new(pool_threads, num_tasks, flight.clone());
    // Cancellation from anywhere wakes every parked worker immediately.
    cancel.attach(Arc::downgrade(&sched.parker) as Weak<dyn Poke>);
    std::thread::scope(|scope| {
        // Worker 0 runs inline on the calling thread — a one-worker pool
        // spawns no threads at all, which on small runs saves the full
        // spawn+join round trip. Workers 1.. get their own threads.
        let handles: Vec<_> = (1..pool_threads)
            .map(|w| {
                let sched = &sched;
                let tasks = &tasks;
                let cancel = &cancel;
                scope.spawn(move || worker_loop(w, sched, tasks, cancel))
            })
            .collect();
        // Tasks never unwind past run_task's catch_unwind; a panic out of
        // the loop itself (inline or joined) means the scheduler broke.
        let dead_scheduler = |cancel: &CancelToken| {
            if !cancel.is_cancelled() {
                cancel.cancel(FailureOrigin {
                    rank: 0,
                    tb: 0,
                    step: 0,
                    cause: FailureCause::Panic("worker died outside the interpreter".into()),
                });
            }
        };
        let inline = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(0, &sched, &tasks, &cancel);
        }));
        if inline.is_err() {
            dead_scheduler(&cancel);
        }
        for h in handles {
            if h.join().is_err() {
                dead_scheduler(&cancel);
            }
        }
    });
    let sched_stats = sched.stats();
    let failed = cancel.origin().is_some();
    let mut buffers: Vec<Vec<TraceEvent>> = Vec::with_capacity(num_tasks);
    let mut stalls: Vec<TaskStall> = Vec::new();
    let mut instructions = 0u64;
    for task in tasks {
        let t = task.into_inner().unwrap_or_else(PoisonError::into_inner);
        // A task that died (cancelled, panicked, or stranded) matches the
        // old model where a stopped worker contributed no instructions.
        if t.done && !t.dead {
            instructions += t.completed;
        }
        if failed {
            // Snapshot what the task was (or froze) waiting on, in spawn
            // order, for the wait-for graph. Dead tasks stashed their
            // wait in `die()`; parked tasks still hold it in their `pc`.
            stalls.push(TaskStall {
                rank: t.rank,
                tb: t.tb_id,
                tile: t.tile,
                step: t.step,
                done: t.done,
                dead: t.dead,
                completed: t.completed,
                wait: t.frozen.clone().or_else(|| t.frozen_wait()),
                send_peer: t.send.as_ref().map(|c| (c.peer, c.channel)),
                recv_peer: t.recv.as_ref().map(|c| (c.peer, c.channel)),
                recent: t.ring.dump(),
            });
        }
        buffers.push(t.rec.events);
    }
    // Observed cancellation latency: the failing worker stamped the token
    // when it recorded the origin, and at this point every worker has
    // joined. This — not wall clock around the whole call — is what
    // "prompt teardown" means on a loaded host.
    let drain = cancel
        .cancelled_at()
        .map_or(Duration::ZERO, |at| at.elapsed());

    // ---- Epoch teardown, before the memories are stashed: the state
    // holds `Arc` clones of them, and only after dropping it can
    // `Arc::try_unwrap` recycle the buffers. On failure the latest
    // published checkpoint travels out in the status; on success the
    // staging buffers go back to the arena.
    let epoch_status = match epoch_state {
        Some(state) => {
            let state = Arc::try_unwrap(state)
                .ok()
                .expect("workers joined; no other EpochState refs remain");
            let (status, staging) = state.finish(start_total, cancel.origin().is_some());
            if !staging.is_empty() {
                if let Some(a) = arena.as_deref_mut() {
                    a.snaps = staging;
                }
            }
            status
        }
        None => EpochStatus {
            executed: instructions,
            ..EpochStatus::default()
        },
    };

    let pool_now = pool.stats();
    let stats = ExecStats {
        pool: PoolStats {
            allocated: pool_now.allocated.saturating_sub(pool_base.allocated),
            reused: pool_now.reused.saturating_sub(pool_base.reused),
            free: pool_now.free,
        },
        instructions,
    };
    // Scrape model: counters are always recorded, but folding them into
    // a snapshot (key clones, shard sums) happens only for callers that
    // return one — entry points that discard it shouldn't pay for it.
    let metrics_snapshot = run_metrics.as_deref().filter(|_| want_snapshot).map(|m| {
        // The pool is shared by all workers; its per-run deltas land in
        // shard 0 once the workers have joined. Epoch counters likewise —
        // resolved lazily so runs without epochs carry no epoch series at
        // all (the runtime-vs-simulator metric parity depends on that).
        m.pool_allocated.add(0, stats.pool.allocated);
        m.pool_reused.add(0, stats.pool.reused);
        if epoch_status.epochs_completed > 0 {
            m.registry
                .counter(names::EPOCHS_COMPLETED, &[])
                .add(0, epoch_status.epochs_completed);
        }
        if epoch_status.steps_resumed > 0 {
            m.registry
                .counter(names::STEPS_RESUMED, &[])
                .add(0, epoch_status.steps_resumed);
        }
        // Scheduler counters, likewise lazy: a run whose pool never
        // stole or parked carries no scheduler series, so the
        // runtime-vs-simulator metric parity is undisturbed.
        if sched_stats.steals > 0 {
            m.registry
                .counter(names::SCHED_STEALS, &[])
                .add(0, sched_stats.steals);
        }
        if sched_stats.parks > 0 {
            m.registry
                .counter(names::SCHED_PARKS, &[])
                .add(0, sched_stats.parks);
            // Park *time*, pre-bucketed by the scheduler on its idle
            // path: distinguishes "parked often" from "parked long".
            let park_hist = m.registry.histogram(names::SCHED_PARK_NS, &[]);
            for (bucket, count, sum) in sched.park_histogram() {
                park_hist.record_bucketed(0, bucket, count, sum);
            }
        }
        m.registry
            .gauge(names::SCHED_RUNNABLE_PEAK, &[])
            .set_max(sched_stats.peak_runnable);
        m.registry.snapshot()
    });

    // Hand the attempt's epoch picture out before the paths below take
    // over; on failure the checkpoint inside is exactly what a resume
    // needs.
    if let Some(out) = epoch_out {
        *out = epoch_status;
    }

    // After the scope the workers' Arc clones are gone, so the memories
    // unwrap cleanly and their buffers can go back to the arena.
    let stash = |arena: Option<&mut ExecArena>, memories: Vec<Arc<RankMemory>>| {
        if let Some(a) = arena {
            a.spares = memories
                .into_iter()
                .filter_map(|m| Arc::try_unwrap(m).ok())
                .map(RankMemory::into_buffers)
                .collect();
        }
    };

    if let Some(origin) = cancel.origin() {
        stash(arena.take(), memories);
        let FailureOrigin { rank, tb, step, .. } = origin;
        let fired: Vec<String> = injector.map_or_else(Vec::new, |inj| {
            inj.fired().into_iter().map(|f| f.to_string()).collect()
        });
        // One origin, one structured story: classify the wait-for graph
        // built from every task's frozen wait, rooted at the origin.
        let mut diagnosis = if stalls.is_empty() {
            StallDiagnosis::unavailable((rank, tb, step), fired)
        } else {
            let origin_idx = stalls
                .iter()
                .position(|s| s.rank == rank && s.tb == tb)
                .unwrap_or(0);
            let graph = WaitForGraph::build(stalls);
            let mut d = graph.classify(origin_idx, fired);
            // The error reports the origin's step as recorded at the
            // cancel, which can lag the task's own counter by the
            // in-flight instruction; keep the two consistent.
            d.origin = (rank, tb, step);
            d
        };
        // Post-mortem artifact, only when asked for: the library never
        // touches the filesystem on its own.
        if let Some(dir) = opts.blackbox_dir.as_deref() {
            let mut conns: Vec<Option<BlackboxConn>> = vec![None; conn_index.len()];
            for (&(src, dst, channel), &idx) in &conn_index {
                conns[idx] = Some(BlackboxConn {
                    src,
                    dst,
                    channel,
                    occupancy: fifos[&(src, dst, channel)].len(),
                    capacity: fifos[&(src, dst, channel)].capacity(),
                });
            }
            let blackbox = Blackbox {
                version: crate::flight::BLACKBOX_VERSION.to_string(),
                program: ir.name.clone(),
                failure: BlackboxFailure {
                    cause: origin.cause.label().to_string(),
                    detail: origin.cause.detail().to_string(),
                    rank,
                    tb,
                    step,
                    drain_us: drain.as_micros() as u64,
                },
                diagnosis: diagnosis.clone(),
                sched: BlackboxSched {
                    steals: sched_stats.steals,
                    parks: sched_stats.parks,
                    park_ns: sched_stats.park_ns,
                    waits: sched.captured_waits(),
                },
                conns: conns.into_iter().flatten().collect(),
                flight: flight
                    .as_deref()
                    .map_or_else(Vec::new, FlightRecorder::drain),
                metrics: vec![
                    ("instructions_completed".to_string(), instructions),
                    ("pool_tiles_allocated".to_string(), stats.pool.allocated),
                    ("pool_tiles_reused".to_string(), stats.pool.reused),
                ],
            };
            match blackbox.write_to_dir(dir) {
                Ok(path) => diagnosis.dump = Some(path),
                Err(e) => eprintln!("msccl: failed to write black-box dump: {e}"),
            }
        }
        let context = diagnosis.context_lines();
        let diagnosis = Box::new(diagnosis);
        return Err(match origin.cause {
            FailureCause::StepTimeout => RuntimeError::Hang {
                rank,
                tb,
                step,
                context,
                diagnosis,
                drain,
            },
            FailureCause::Deadline => RuntimeError::DeadlineExceeded {
                rank,
                tb,
                step,
                context,
                diagnosis,
                drain,
            },
            FailureCause::Panic(payload) => RuntimeError::WorkerPanic {
                rank,
                tb,
                step,
                payload,
                context,
                diagnosis,
                drain,
            },
            FailureCause::InjectedKill(fault) => RuntimeError::InjectedFault {
                rank,
                tb,
                step,
                fault,
                context,
                diagnosis,
                drain,
            },
        });
    }

    let trace = tracing.then(|| {
        let mut buffers = buffers;
        buffers.push(vec![
            TraceEvent {
                ts_us: 0.0,
                rank: 0,
                tb: 0,
                kind: EventKind::KernelLaunch,
            },
            TraceEvent {
                ts_us: epoch.elapsed().as_secs_f64() * 1e6,
                rank: 0,
                tb: 0,
                kind: EventKind::PoolStats {
                    allocated: stats.pool.allocated,
                    reused: stats.pool.reused,
                },
            },
        ]);
        Trace::from_buffers(ClockDomain::Wall, buffers)
    });

    // ---- Extract outputs. When a rank's output chunks map identity-
    // style onto one whole space, that space's backing vector *is* the
    // result: steal it via a pointer swap (handing in a recycled vector
    // so the arena cycle stays allocation-free) instead of copying
    // `out_chunks × chunk_elems` elements. Ranks whose output layout is
    // scattered fall back to one `read_into` pass per chunk.
    let out_chunks = collective.out_chunks();
    let stealable = |r: usize| -> Option<Space> {
        if out_chunks == 0 {
            return None;
        }
        let (space, off0) = collective.space_of(r, mscclang::BufferKind::Output, 0);
        (off0 == 0
            && collective.space_size(space) == Some(out_chunks)
            && (1..out_chunks)
                .all(|i| collective.space_of(r, mscclang::BufferKind::Output, i) == (space, i)))
        .then_some(space)
    };
    let outputs = (0..num_ranks)
        .map(|r| {
            let spare = spare_outs.pop().unwrap_or_default();
            if let Some(space) = stealable(r) {
                return memories[r].swap_space_buffer(space, spare);
            }
            let elems = out_chunks * chunk_elems;
            let mut out = spare;
            if out.is_empty() {
                out = vec![0.0; elems];
            } else {
                out.resize(elems, 0.0);
            }
            for index in 0..out_chunks {
                let base = index * chunk_elems;
                memories[r].read_into(
                    collective,
                    mscclang::BufferKind::Output,
                    index,
                    0,
                    &mut out[base..base + chunk_elems],
                );
            }
            out
        })
        .collect();
    stash(arena.take(), memories);
    Ok((outputs, trace, stats, metrics_snapshot))
}

/// Index of a space in the fixed-size per-space tables below.
fn space_slot(space: Space) -> usize {
    match space {
        Space::Data => 0,
        Space::Output => 1,
        Space::Scratch => 2,
    }
}

/// Per-space bitmap of `rank`'s chunks that the program provably fully
/// overwrites before ever reading — `[Data, Output, Scratch]`, indexed by
/// [`space_slot`].
///
/// A chunk qualifies when it is the destination of at least one
/// plain-overwrite instruction (`r`, `cpy`, `rcs` — each writes its full
/// destination chunks, since the tile loop spans `chunk_elems`) and
/// every read of it — source of any instruction, or destination of a
/// reduce-family instruction (read-modify-write) — is ordered *after*
/// one of those overwrites by the rank's own happens-before relation:
/// program order within a thread block plus the IR's cross-block dep
/// edges. Dep semaphore targets are per-tile (`tile * len + step + 1`),
/// and distinct tiles touch disjoint element ranges, so instruction-
/// level reachability is exactly the per-element guarantee. Orderings
/// that exist only through a cross-rank FIFO round trip are not modeled
/// — such chunks conservatively keep their re-zero.
///
/// Stale recycled data in a qualifying chunk is unobservable — output
/// extraction runs only after every instruction completed, failed runs
/// never extract, and epoch resume overwrites every space in full — so
/// [`RankMemory::recycled_skipping`] can keep it instead of re-zeroing.
fn overwrite_only_chunks(
    ir: &IrProgram,
    collective: &mscclang::Collective,
    rank: usize,
) -> [Vec<bool>; 3] {
    let gpu = ir.gpu(rank);
    let sizes = [
        collective.space_size(Space::Data).unwrap_or(0),
        collective.space_size(Space::Output).unwrap_or(0),
        gpu.scratch_chunks,
    ];
    // Flat node ids over the rank's instructions, in (tb, step) order.
    let mut offsets = Vec::with_capacity(gpu.threadblocks.len());
    let mut n = 0usize;
    for tb in &gpu.threadblocks {
        offsets.push(n);
        n += tb.instructions.len();
    }

    // Which nodes overwrite / read each chunk.
    let mut writes: [Vec<Vec<u32>>; 3] = sizes.map(|s| vec![Vec::new(); s]);
    let mut reads: [Vec<Vec<u32>>; 3] = sizes.map(|s| vec![Vec::new(); s]);
    for (t, tb) in gpu.threadblocks.iter().enumerate() {
        for (s, instr) in tb.instructions.iter().enumerate() {
            let node = (offsets[t] + s) as u32;
            let mark = |sets: &mut [Vec<Vec<u32>>; 3], loc: Option<mscclang::IrLoc>| {
                let Some(loc) = loc else { return };
                for i in 0..instr.count {
                    let (space, off) = collective.space_of(rank, loc.buffer, loc.index + i);
                    if let Some(list) = sets[space_slot(space)].get_mut(off) {
                        list.push(node);
                    }
                }
            };
            match instr.op {
                OpCode::Nop => {}
                OpCode::Recv | OpCode::RecvCopySend => mark(&mut writes, instr.dst),
                OpCode::Copy => {
                    mark(&mut reads, instr.src);
                    mark(&mut writes, instr.dst);
                }
                OpCode::Send | OpCode::RecvReduceSend => mark(&mut reads, instr.src),
                OpCode::Reduce => {
                    mark(&mut reads, instr.src);
                    mark(&mut reads, instr.dst);
                }
                OpCode::RecvReduceCopy | OpCode::RecvReduceCopySend => mark(&mut reads, instr.dst),
            }
        }
    }

    // Strict-ancestor bitsets via a topological sweep over program order
    // + dep edges. The graphs are tiny (a rank's instruction count), so
    // n²/64 words of bitset is nothing.
    let words = n.div_ceil(64).max(1);
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (t, tb) in gpu.threadblocks.iter().enumerate() {
        for (s, instr) in tb.instructions.iter().enumerate() {
            let node = offsets[t] + s;
            if s > 0 {
                preds[node].push((node - 1) as u32);
            }
            for d in &instr.deps {
                if gpu
                    .threadblocks
                    .get(d.tb)
                    .is_some_and(|db| d.step < db.instructions.len())
                {
                    preds[node].push((offsets[d.tb] + d.step) as u32);
                }
            }
        }
    }
    let mut indeg = vec![0u32; n];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, ps) in preds.iter().enumerate() {
        indeg[v] = ps.len() as u32;
        for &p in ps {
            succs[p as usize].push(v as u32);
        }
    }
    let mut anc = vec![0u64; n * words];
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut processed = 0usize;
    let mut scratch = vec![0u64; words];
    while let Some(v) = queue.pop() {
        processed += 1;
        let v = v as usize;
        scratch.copy_from_slice(&anc[v * words..(v + 1) * words]);
        scratch[v / 64] |= 1 << (v % 64);
        for &u in &succs[v] {
            let u = u as usize;
            for (a, &b) in anc[u * words..(u + 1) * words].iter_mut().zip(&scratch) {
                *a |= b;
            }
            indeg[u] -= 1;
            if indeg[u] == 0 {
                queue.push(u as u32);
            }
        }
    }
    // A dep cycle (malformed hand-built IR — it could not execute anyway)
    // degrades to the sound special case: only never-read chunks skip.
    let acyclic = processed == n;
    let ordered_after_write = |r: u32, ws: &[u32]| -> bool {
        let base = r as usize * words;
        ws.iter()
            .any(|&w| anc[base + w as usize / 64] >> (w % 64) & 1 == 1)
    };

    let mut skip = sizes.map(|s| vec![false; s]);
    for slot in 0..3 {
        for off in 0..sizes[slot] {
            let (ws, rs) = (&writes[slot][off], &reads[slot][off]);
            skip[slot][off] = !ws.is_empty()
                && if acyclic {
                    rs.iter().all(|&r| ordered_after_write(r, ws))
                } else {
                    rs.is_empty()
                };
        }
    }
    skip
}

/// Whether a just-expired wait was bounded by the global deadline rather
/// than the per-step timeout.
fn deadline_hit(global_deadline: Option<Instant>) -> bool {
    global_deadline.is_some_and(|g| Instant::now() >= g)
}

/// A persistent straggler chronically slows the whole rank: every
/// instruction pays a deterministic extra delay proportional to the
/// planned slowdown factor. Unlike block faults this is not one-shot —
/// the rank stays slow across tiles, steps and resumed attempts.
const STRAGGLE_UNIT_NS: f64 = 20_000.0;

/// A connection endpoint as a task sees it: the peer, the channel, the
/// dense connection index wake keys are built from, and the FIFO itself.
struct ConnRef {
    peer: usize,
    channel: usize,
    idx: usize,
    fifo: Arc<Fifo<PooledTile>>,
}

/// What `TbTask::advance` hands back to its worker.
enum Yield {
    /// The task must wait for `key`. `timer` is set only when this is a
    /// *fresh* wait (a hang deadline or a sleep expiry to arm); re-blocks
    /// after a spurious wake pass `None` so the timer heap doesn't grow.
    Blocked {
        key: WakeKey,
        timer: Option<Instant>,
    },
    /// The task finished (successfully or by dying); never run it again.
    Done,
}

/// The resumption point of a suspended interpreter — everything between
/// two potential waits is one arm of the `advance` loop.
#[derive(Debug, Clone, Copy)]
enum Pc {
    /// Before anything: the epoch gate a resumed (or zero-watermark)
    /// block may owe at its start position.
    StartGate,
    /// Emit `TileBegin` and enter the instruction list.
    TileBegin,
    /// Per-instruction preamble: cancellation, deadline, block faults.
    PreInstr,
    /// Sleeping out an injected stall; then the straggle check.
    Stall { until: Instant },
    /// Sleeping out the rank's chronic straggle; then dependencies.
    Straggle { until: Instant },
    /// Waiting on cross-thread-block dependency `idx` of this step.
    Dep { idx: usize },
    /// Dependencies satisfied: stamp `InstrBegin` and dispatch.
    Body,
    /// A receive-class op needs an inbound tile.
    RecvTile,
    /// The op's memory work; never blocks.
    Compute,
    /// Delivery-fault resolution for an outbound tile, once per send.
    PreXmit,
    /// Sleeping out injected delivery delays; then the send.
    Delay { until: Instant },
    /// Pushing `copy` (0 = original, 1 = duplicate) into the send FIFO.
    Xmit { copy: usize },
    /// Instruction epilogue: counters, ring, semaphore set.
    PostInstr,
    /// The epoch gate(s) `completed` may have reached.
    GateCheck,
    /// End of the instruction list for this tile.
    PostTile,
    /// Terminal; `advance` must not be called again.
    Finished,
}

/// Everything a [`TbTask`] is built from, in spawn order.
struct TbTaskInit<'a> {
    rank: usize,
    tb: &'a mscclang::IrThreadBlock,
    flat: usize,
    collective: &'a mscclang::Collective,
    mem: Arc<RankMemory>,
    sem: Arc<Semaphore>,
    pool: Arc<TilePool>,
    send: Option<ConnRef>,
    recv: Option<ConnRef>,
    dep_sems: Vec<Vec<(Arc<Semaphore>, u64, usize)>>,
    num_tiles: usize,
    tile_elems: usize,
    chunk_elems: usize,
    op: ReduceOp,
    timeout: Duration,
    global_deadline: Option<Instant>,
    cancel: Arc<CancelToken>,
    injector: Option<&'a FaultInjector>,
    metrics: Option<&'a WorkerMetrics>,
    epoch_ctx: Option<WorkerEpoch>,
    start: u64,
    tracing: bool,
    clock_epoch: Instant,
    flight: Option<&'a FlightRecorder>,
}

/// One thread block's interpreter as a resumable state machine (the
/// tiling outer loop of Figure 5). `advance` runs until the block must
/// wait, then yields the [`WakeKey`] naming what it waits for instead of
/// blocking its OS thread — so a fixed worker pool can carry any number
/// of blocks. Every payload travels in a [`PooledTile`] taken from the
/// shared pool and recycled on receipt; the steady-state hot path
/// allocates nothing. The per-block sequence of trace events, ring
/// entries, semaphore values and FIFO operations is identical to the
/// retired thread-per-block executor at any pool size.
struct TbTask<'a> {
    // ---- Identity and wiring (fixed for the run).
    rank: usize,
    tb_id: usize,
    /// This task's index in spawn order: its semaphore wake key, its
    /// metrics shard, and its epoch progress slot.
    flat: usize,
    tb: &'a mscclang::IrThreadBlock,
    collective: &'a mscclang::Collective,
    mem: Arc<RankMemory>,
    sem: Arc<Semaphore>,
    pool: Arc<TilePool>,
    send: Option<ConnRef>,
    recv: Option<ConnRef>,
    /// Per instruction, per dep: the dep's semaphore, its block length
    /// (for the monotonic target encoding), and its task index (for the
    /// wake key).
    dep_sems: Vec<Vec<(Arc<Semaphore>, u64, usize)>>,
    num_tiles: usize,
    tile_elems: usize,
    chunk_elems: usize,
    op: ReduceOp,
    timeout: Duration,
    global_deadline: Option<Instant>,
    cancel: Arc<CancelToken>,
    injector: Option<&'a FaultInjector>,
    metrics: Option<&'a WorkerMetrics>,
    epoch_ctx: Option<WorkerEpoch>,
    flight: Option<&'a FlightRecorder>,
    straggle: Option<Duration>,
    // ---- Interpreter position.
    /// Monotonic completed-instruction count — the same encoding the
    /// semaphores and epoch watermarks use, seeded from the checkpoint
    /// watermark on resume.
    completed: u64,
    tile: usize,
    step: usize,
    send_seq: u64,
    recv_seq: u64,
    pc: Pc,
    // ---- Wait scratch (at most one wait in flight).
    /// The hang deadline of the wait in flight: min(step timeout, global
    /// deadline), fixed when the wait starts and kept across re-blocks.
    fail_at: Option<Instant>,
    /// Whether the wait's timer has been pushed on the scheduler heap.
    timer_armed: bool,
    /// When the in-flight dependency wait began (sem_wait_ns base).
    wait_start: Option<Instant>,
    /// When the in-flight FIFO wait began (fifo_*_block_ns base).
    blocked_at: Option<Instant>,
    /// Whether the in-flight FIFO wait already emitted its Block event.
    block_emitted: bool,
    /// The epoch boundary this task has arrived at but not yet passed.
    gate_arrived: Option<usize>,
    // ---- Instruction scratch.
    instr_start: Option<Instant>,
    /// Tiles drained from the receive FIFO but not yet consumed: one
    /// `try_recv_into` batches a whole queue under a single lock.
    inbox: VecDeque<PooledTile>,
    inbound: Option<PooledTile>,
    outbound: Option<PooledTile>,
    dup_pending: Option<PooledTile>,
    xmit_bytes: u64,
    // ---- Diagnostics and results.
    rec: Recorder,
    ring: EventRing,
    /// The wait the task was stuck on when it died, stashed by `die()`
    /// before the program counter is overwritten — the wait-for graph's
    /// evidence for dead tasks.
    frozen: Option<BlockedOn>,
    /// The task will never advance again.
    done: bool,
    /// The task stopped without finishing its program (cancelled, failed
    /// or panicked); it contributes no completed instructions.
    dead: bool,
}

impl<'a> TbTask<'a> {
    fn new(init: TbTaskInit<'a>) -> Self {
        let TbTaskInit {
            rank,
            tb,
            flat,
            collective,
            mem,
            sem,
            pool,
            send,
            recv,
            dep_sems,
            num_tiles,
            tile_elems,
            chunk_elems,
            op,
            timeout,
            global_deadline,
            cancel,
            injector,
            metrics,
            epoch_ctx,
            start,
            tracing,
            clock_epoch,
            flight,
        } = init;
        let my_len = tb.instructions.len() as u64;
        // `start` is 0 for a fresh run, or this block's checkpoint
        // watermark on resume — the same monotonic encoding the
        // semaphores use, so `completed` picks up where the checkpointed
        // run left off.
        let start_tile = start.checked_div(my_len).unwrap_or(0) as usize;
        let start_step = start.checked_rem(my_len).unwrap_or(0) as usize;
        // Resumed FIFO sequence numbers are re-derived from the watermark
        // by counting the send/recv instructions in the skipped prefix,
        // so one-shot delivery-fault specs keyed by sequence number keep
        // addressing the same logical messages across a resume.
        let count_prefix = |sends: bool, upto: usize| -> u64 {
            tb.instructions[..upto]
                .iter()
                .filter(|i| {
                    if sends {
                        i.op.has_send()
                    } else {
                        i.op.has_recv()
                    }
                })
                .count() as u64
        };
        let send_seq = start_tile as u64 * count_prefix(true, my_len as usize)
            + count_prefix(true, start_step);
        let recv_seq = start_tile as u64 * count_prefix(false, my_len as usize)
            + count_prefix(false, start_step);
        let straggle = injector
            .and_then(|i| i.rank_slowdown(rank))
            .filter(|f| *f > 1.0)
            .map(|f| Duration::from_nanos((STRAGGLE_UNIT_NS * (f - 1.0)) as u64));
        Self {
            rank,
            tb_id: tb.id,
            flat,
            tb,
            collective,
            mem,
            sem,
            pool,
            send,
            recv,
            dep_sems,
            num_tiles,
            tile_elems,
            chunk_elems,
            op,
            timeout,
            global_deadline,
            cancel,
            injector,
            metrics,
            epoch_ctx,
            flight,
            straggle,
            completed: start,
            tile: start_tile,
            step: start_step,
            send_seq,
            recv_seq,
            pc: Pc::StartGate,
            fail_at: None,
            timer_armed: false,
            wait_start: None,
            blocked_at: None,
            block_emitted: false,
            gate_arrived: None,
            instr_start: None,
            inbox: VecDeque::new(),
            inbound: None,
            outbound: None,
            dup_pending: None,
            xmit_bytes: 0,
            rec: Recorder {
                enabled: tracing,
                epoch: clock_epoch,
                rank,
                tb: tb.id,
                events: Vec::new(),
            },
            ring: EventRing::new(rank, tb.id),
            frozen: None,
            done: false,
            dead: false,
        }
    }

    /// Each blocking wait runs against min(step deadline, global
    /// deadline); when one expires, `deadline_hit` disambiguates the
    /// cause.
    fn wait_deadline(&self, now: Instant) -> Instant {
        let step = now + self.timeout;
        self.global_deadline.map_or(step, |g| step.min(g))
    }

    /// Opens a fresh wait at `now`: fixes its hang deadline and marks its
    /// timer unarmed so the first `Blocked` yield pushes it.
    fn open_wait(&mut self, now: Instant) {
        self.fail_at = Some(self.wait_deadline(now));
        self.timer_armed = false;
    }

    /// The timer to hand the scheduler for the wait in flight: its hang
    /// deadline on the first block, `None` on re-blocks.
    fn arm_fail(&mut self) -> Option<Instant> {
        if self.timer_armed {
            None
        } else {
            self.timer_armed = true;
            self.fail_at
        }
    }

    /// Like [`Self::arm_fail`], for sleeps (which have an expiry instead
    /// of a hang deadline).
    fn arm_at(&mut self, at: Instant) -> Option<Instant> {
        if self.timer_armed {
            None
        } else {
            self.timer_armed = true;
            Some(at)
        }
    }

    /// Stops without finishing: cancelled from elsewhere, own failure
    /// already recorded, or killed. Stashes the wait the task was stuck
    /// on before the program counter is overwritten, so the post-mortem
    /// wait-for graph keeps its edge.
    fn die(&mut self) -> Yield {
        self.frozen = self.frozen_wait();
        self.dead = true;
        self.done = true;
        self.pc = Pc::Finished;
        Yield::Done
    }

    /// The resource the current program counter is blocked on, typed for
    /// the wait-for graph, or `None` when the task is mid-computation.
    /// Mirrors the probes in [`blocked_ready`](Self::blocked_ready).
    fn frozen_wait(&self) -> Option<BlockedOn> {
        match self.pc {
            Pc::Dep { idx } => {
                let instr = &self.tb.instructions[self.step];
                let dep = instr.deps.get(idx)?;
                let (sem_d, dep_len, _) = self.dep_sems.get(self.step)?.get(idx)?;
                Some(BlockedOn::Sem {
                    dep_tb: dep.tb,
                    target: self.tile as u64 * dep_len + dep.step as u64 + 1,
                    current: sem_d.current(),
                })
            }
            Pc::RecvTile => self.recv.as_ref().map(|c| BlockedOn::Recv {
                src: c.peer,
                channel: c.channel,
            }),
            Pc::Xmit { .. } => self.send.as_ref().map(|c| BlockedOn::Send {
                dst: c.peer,
                channel: c.channel,
            }),
            Pc::Stall { .. } | Pc::Straggle { .. } | Pc::Delay { .. } => Some(BlockedOn::Sleep),
            Pc::StartGate | Pc::GateCheck => self
                .gate_arrived
                .map(|boundary| BlockedOn::Gate { boundary }),
            _ => None,
        }
    }

    /// Records this task's own wait-timeout failure and dies.
    fn fail_own(&mut self) -> Yield {
        let cause = if deadline_hit(self.global_deadline) {
            FailureCause::Deadline
        } else {
            FailureCause::StepTimeout
        };
        self.cancel.cancel(FailureOrigin {
            rank: self.rank,
            tb: self.tb_id,
            step: self.step,
            cause,
        });
        self.die()
    }

    /// Parks at every epoch gate `completed` has reached. Blocks whose
    /// next boundary target equals their current position (including
    /// every fresh block a first cut leaves at watermark 0) gate here
    /// before executing anything — the barrier needs all of them.
    /// Returns `None` when no gate is due (or all due gates passed).
    fn gate_step(&mut self, sched: &Scheduler, w: usize) -> Option<Yield> {
        loop {
            let completed = self.completed;
            let due = match self.epoch_ctx.as_mut() {
                Some(e) => e.boundary_due(completed),
                None => return None,
            };
            let Some(b) = due else {
                self.gate_arrived = None;
                return None;
            };
            if self.gate_arrived != Some(b) {
                // First visit: arrive at the barrier. A consistent cut
                // has every connection drained, so the inbox must be
                // empty — a batched tile crossing the cut would escape
                // the checkpoint.
                debug_assert!(self.inbox.is_empty(), "in-flight tile crosses an epoch cut");
                self.gate_arrived = Some(b);
                if let Some(fl) = self.flight {
                    fl.gate(w, self.rank, self.tb_id, b);
                }
                self.open_wait(Instant::now());
                let released = {
                    let e = self.epoch_ctx.as_ref().expect("gate implies epoch ctx");
                    e.state.arrive(b, &self.cancel)
                };
                if released {
                    // Last arriver: the checkpoint is published; free the
                    // whole barrier.
                    sched.wake(WakeKey::Gate(b), w);
                }
            }
            let released = {
                let e = self.epoch_ctx.as_ref().expect("gate implies epoch ctx");
                e.state.is_released(b)
            };
            if released {
                self.epoch_ctx
                    .as_mut()
                    .expect("gate implies epoch ctx")
                    .passed();
                self.gate_arrived = None;
                self.fail_at = None;
                continue;
            }
            if self.cancel.is_cancelled() {
                return Some(self.die());
            }
            if self.fail_at.is_some_and(|at| Instant::now() >= at) {
                return Some(self.fail_own());
            }
            return Some(Yield::Blocked {
                key: WakeKey::Gate(b),
                timer: self.arm_fail(),
            });
        }
    }

    /// Whether the condition this task suspended on now holds. Called by
    /// the scheduler under its wait-table race (register-then-recheck),
    /// and by timer fires indirectly: a woken task re-runs `advance`,
    /// which re-evaluates the same condition authoritatively. Cancellation
    /// and an expired hang deadline always count as ready — the task must
    /// run to observe them and die.
    fn blocked_ready(&self, now: Instant) -> bool {
        if self.cancel.is_cancelled() {
            return true;
        }
        if self.fail_at.is_some_and(|at| now >= at) {
            return true;
        }
        match self.pc {
            Pc::Stall { until } | Pc::Straggle { until } | Pc::Delay { until } => now >= until,
            Pc::Dep { idx } => {
                let instr = &self.tb.instructions[self.step];
                let dep = &instr.deps[idx];
                let (sem_d, dep_len, _) = &self.dep_sems[self.step][idx];
                sem_d.current() > self.tile as u64 * dep_len + dep.step as u64
            }
            Pc::RecvTile => self.recv.as_ref().is_some_and(|c| !c.fifo.is_empty()),
            Pc::Xmit { .. } => self
                .send
                .as_ref()
                .is_some_and(|c| c.fifo.len() < c.fifo.capacity()),
            Pc::StartGate | Pc::GateCheck => match (self.gate_arrived, &self.epoch_ctx) {
                (Some(b), Some(e)) => e.state.is_released(b),
                _ => true,
            },
            _ => true,
        }
    }

    /// Runs the interpreter until it finishes or must wait. The worker
    /// calls this with the task's lock held; on `Blocked` it registers
    /// the key with the scheduler and moves on to other tasks.
    fn advance(&mut self, sched: &Scheduler, w: usize) -> Yield {
        loop {
            match self.pc {
                Pc::StartGate => {
                    if let Some(y) = self.gate_step(sched, w) {
                        return y;
                    }
                    if self.tile >= self.num_tiles {
                        // A checkpoint taken at the very end of the
                        // program resumes to nothing.
                        return self.finish();
                    }
                    self.pc = Pc::TileBegin;
                }
                Pc::TileBegin => {
                    self.rec.emit(EventKind::TileBegin { tile: self.tile });
                    self.pc = if self.step < self.tb.instructions.len() {
                        Pc::PreInstr
                    } else {
                        Pc::PostTile
                    };
                }
                Pc::PostTile => {
                    self.rec.emit(EventKind::TileEnd { tile: self.tile });
                    self.tile += 1;
                    self.step = 0;
                    if self.tile >= self.num_tiles {
                        return self.finish();
                    }
                    self.pc = Pc::TileBegin;
                }
                Pc::PreInstr => {
                    // A failure elsewhere, or the global deadline, stops
                    // the task between instructions even when it never
                    // blocks.
                    if self.cancel.is_cancelled() {
                        return self.die();
                    }
                    if deadline_hit(self.global_deadline) {
                        self.cancel.cancel(FailureOrigin {
                            rank: self.rank,
                            tb: self.tb_id,
                            step: self.step,
                            cause: FailureCause::Deadline,
                        });
                        return self.die();
                    }
                    // Planned block faults strike as the instruction
                    // starts; `on_block` is one-shot, so it is consulted
                    // exactly once per (rank, tb, step) firing.
                    match self
                        .injector
                        .and_then(|i| i.on_block(self.rank, self.tb_id, self.step))
                    {
                        Some(BlockAction::Stall(d)) => {
                            self.timer_armed = false;
                            self.pc = Pc::Stall {
                                until: Instant::now() + d,
                            };
                        }
                        Some(BlockAction::Kill) => {
                            let (rank, tb_id, step) = (self.rank, self.tb_id, self.step);
                            self.cancel.cancel(FailureOrigin {
                                rank,
                                tb: tb_id,
                                step,
                                cause: FailureCause::InjectedKill(format!(
                                    "kill block r{rank} tb{tb_id} step{step}"
                                )),
                            });
                            return self.die();
                        }
                        None => self.pc = self.after_stall(),
                    }
                }
                Pc::Stall { until } => {
                    if self.cancel.is_cancelled() {
                        return self.die();
                    }
                    if Instant::now() < until {
                        return Yield::Blocked {
                            key: WakeKey::Sleep(self.flat),
                            timer: self.arm_at(until),
                        };
                    }
                    self.pc = self.after_stall();
                }
                Pc::Straggle { until } => {
                    if self.cancel.is_cancelled() {
                        return self.die();
                    }
                    if Instant::now() < until {
                        return Yield::Blocked {
                            key: WakeKey::Sleep(self.flat),
                            timer: self.arm_at(until),
                        };
                    }
                    self.pc = Pc::Dep { idx: 0 };
                }
                Pc::Dep { idx } => {
                    // Cross-thread-block dependencies gate the
                    // instruction, so they trace *before* InstrBegin: a
                    // begin event means they were already satisfied.
                    let tb = self.tb;
                    let instr = &tb.instructions[self.step];
                    let Some(dep) = instr.deps.get(idx) else {
                        self.pc = Pc::Body;
                        continue;
                    };
                    let (sem_d, dep_len, dep_flat) = {
                        let (s, l, f) = &self.dep_sems[self.step][idx];
                        (Arc::clone(s), *l, *f)
                    };
                    let target = self.tile as u64 * dep_len + dep.step as u64 + 1;
                    if self.wait_start.is_none() {
                        self.ring.push(
                            self.tile,
                            self.step,
                            instr.op,
                            Moment::WaitingDep {
                                dep_tb: dep.tb,
                                target,
                            },
                        );
                        self.rec.emit(EventKind::SemWaitEnter {
                            dep_tb: dep.tb,
                            target,
                        });
                        let now = Instant::now();
                        self.wait_start = Some(now);
                        self.open_wait(now);
                    }
                    if sem_d.current() >= target {
                        if let Some(m) = self.metrics {
                            let t0 = self.wait_start.expect("dep wait opened above");
                            m.sem_wait_ns.add(m.shard, t0.elapsed().as_nanos() as u64);
                        }
                        self.rec.emit(EventKind::SemWaitExit {
                            dep_tb: dep.tb,
                            target,
                        });
                        self.wait_start = None;
                        self.fail_at = None;
                        self.pc = Pc::Dep { idx: idx + 1 };
                        continue;
                    }
                    if self.cancel.is_cancelled() {
                        return self.die();
                    }
                    if Instant::now() >= self.fail_at.expect("dep wait opened above") {
                        return self.fail_own();
                    }
                    return Yield::Blocked {
                        key: WakeKey::Sem(dep_flat),
                        timer: self.arm_fail(),
                    };
                }
                Pc::Body => {
                    let tb = self.tb;
                    let instr = &tb.instructions[self.step];
                    self.ring
                        .push(self.tile, self.step, instr.op, Moment::Started);
                    self.rec.emit(EventKind::InstrBegin {
                        step: self.step,
                        tile: self.tile,
                        op: instr.op,
                    });
                    // Latency observations are sampled: the two clock
                    // reads they need cost more than every counter in
                    // this loop combined, and taking them on every
                    // instruction busts the always-on overhead budget at
                    // small sizes. One instruction in
                    // [`LATENCY_SAMPLE_PERIOD`] per block keeps the
                    // histogram's shape; the `instructions` counter
                    // stays exact.
                    self.instr_start = self
                        .metrics
                        .filter(|_| self.completed.is_multiple_of(LATENCY_SAMPLE_PERIOD))
                        .map(|_| Instant::now());
                    self.pc = if instr.op.has_recv() {
                        Pc::RecvTile
                    } else {
                        Pc::Compute
                    };
                }
                Pc::RecvTile => {
                    if self.inbox.is_empty() {
                        let conn = self
                            .recv
                            .as_ref()
                            .expect("recv op requires a receive connection");
                        // Batched pop: drain everything the peer has
                        // queued under one lock. The freed slots may
                        // unblock the sender — wake it.
                        if conn.fifo.try_recv_into(&mut self.inbox) > 0 {
                            let idx = conn.idx;
                            if let Some(fl) = self.flight {
                                // A batched drain leaves the FIFO empty.
                                fl.fifo_depth(w, self.rank, self.tb_id, idx, 0);
                            }
                            sched.wake(WakeKey::Send(idx), w);
                        }
                    }
                    if self.inbox.is_empty() {
                        let (src, channel, idx) = {
                            let c = self.recv.as_ref().expect("checked above");
                            (c.peer, c.channel, c.idx)
                        };
                        if !self.block_emitted {
                            self.block_emitted = true;
                            let tb = self.tb;
                            let op = tb.instructions[self.step].op;
                            self.ring.push(
                                self.tile,
                                self.step,
                                op,
                                Moment::BlockedRecv { src, channel },
                            );
                            self.rec.emit(EventKind::RecvBlock { src, channel });
                            let now = Instant::now();
                            self.blocked_at = Some(now);
                            self.open_wait(now);
                        }
                        if self.cancel.is_cancelled() {
                            return self.die();
                        }
                        if Instant::now() >= self.fail_at.expect("recv wait opened above") {
                            return self.fail_own();
                        }
                        return Yield::Blocked {
                            key: WakeKey::Recv(idx),
                            timer: self.arm_fail(),
                        };
                    }
                    let value = self.inbox.pop_front().expect("checked non-empty");
                    let (src, channel) = {
                        let c = self.recv.as_ref().expect("checked above");
                        (c.peer, c.channel)
                    };
                    if self.block_emitted {
                        self.rec.emit(EventKind::RecvResume { src, channel });
                        if let (Some(m), Some(t0)) = (self.metrics, self.blocked_at) {
                            m.fifo_recv_block_ns
                                .add(m.shard, t0.elapsed().as_nanos() as u64);
                        }
                        self.block_emitted = false;
                        self.blocked_at = None;
                        self.fail_at = None;
                    }
                    let bytes = (value.len() * std::mem::size_of::<f32>()) as u64;
                    self.rec.emit(EventKind::Recv {
                        src,
                        channel,
                        seq: self.recv_seq,
                        bytes,
                    });
                    if let Some(m) = self.metrics {
                        if let Some((bytes_recv, recvs)) = &m.recv_conn {
                            bytes_recv.add(m.shard, bytes);
                            recvs.inc(m.shard);
                        }
                    }
                    self.recv_seq += 1;
                    self.inbound = Some(value);
                    self.pc = Pc::Compute;
                }
                Pc::Compute => {
                    let tb = self.tb;
                    let instr = &tb.instructions[self.step];
                    let elem_off = self.tile * self.tile_elems;
                    let len = (self.chunk_elems - elem_off).min(self.tile_elems);
                    match instr.op {
                        OpCode::Nop => {}
                        OpCode::Send => {
                            let mut tile = self.pool.take(instr.count * len);
                            self.fill_src(instr, elem_off, len, &mut tile);
                            self.outbound = Some(tile);
                        }
                        OpCode::Recv => {
                            let tile = self.inbound.take().expect("recv op received a tile");
                            self.write_dst(instr, elem_off, len, &tile);
                        }
                        OpCode::Copy => {
                            // Local data movement never touches the pool:
                            // the chunks move memory-to-memory under the
                            // fixed lock order (see
                            // `memory::copy_between`).
                            let src = instr.src.expect("instruction requires src");
                            let dst = instr.dst.expect("instruction requires dst");
                            for i in 0..instr.count {
                                self.mem.copy_between(
                                    self.collective,
                                    (src.buffer, src.index + i),
                                    (dst.buffer, dst.index + i),
                                    elem_off,
                                    len,
                                );
                            }
                        }
                        OpCode::Reduce => {
                            let src = instr.src.expect("instruction requires src");
                            let dst = instr.dst.expect("instruction requires dst");
                            for i in 0..instr.count {
                                self.mem.reduce_between(
                                    self.collective,
                                    (src.buffer, src.index + i),
                                    (dst.buffer, dst.index + i),
                                    elem_off,
                                    len,
                                    self.op,
                                );
                            }
                        }
                        OpCode::RecvReduceCopy => {
                            let mut tile = self.inbound.take().expect("recv op received a tile");
                            self.reduce_merge_dst(instr, elem_off, len, &mut tile);
                        }
                        OpCode::RecvCopySend => {
                            // Zero-copy forward: the received tile is
                            // written to memory and handed onward as-is.
                            let tile = self.inbound.take().expect("recv op received a tile");
                            self.write_dst(instr, elem_off, len, &tile);
                            self.outbound = Some(tile);
                        }
                        OpCode::RecvReduceSend => {
                            let mut tile = self.inbound.take().expect("recv op received a tile");
                            self.combine_read_src(instr, elem_off, len, &mut tile);
                            self.outbound = Some(tile);
                        }
                        OpCode::RecvReduceCopySend => {
                            let mut tile = self.inbound.take().expect("recv op received a tile");
                            self.reduce_merge_dst(instr, elem_off, len, &mut tile);
                            self.outbound = Some(tile);
                        }
                    }
                    self.pc = if self.outbound.is_some() {
                        Pc::PreXmit
                    } else {
                        Pc::PostInstr
                    };
                }
                Pc::PreXmit => {
                    // Planned delivery faults apply here, where the tile
                    // leaves the sender: corruption rewrites the payload,
                    // a delay holds it back, a drop discards it (the
                    // sequence number still advances, as a real lost
                    // packet leaves the sender none the wiser), a
                    // duplicate enqueues it twice. `on_delivery` drains
                    // one-shot specs, so it is consulted exactly once per
                    // logical send.
                    let (dst, channel) = {
                        let c = self
                            .send
                            .as_ref()
                            .expect("send op requires a send connection");
                        (c.peer, c.channel)
                    };
                    let mut dropped = false;
                    let mut duplicated = false;
                    let mut delay = Duration::ZERO;
                    if let Some(inj) = self.injector {
                        let outbound = self.outbound.as_mut().expect("entered with outbound");
                        for action in inj.on_delivery(self.rank, dst, channel, self.send_seq) {
                            match action {
                                DeliveryAction::Corrupt { bit } => corrupt_payload(outbound, bit),
                                DeliveryAction::Delay(d) => delay += d,
                                DeliveryAction::Drop => dropped = true,
                                DeliveryAction::Duplicate => duplicated = true,
                            }
                        }
                    }
                    if dropped {
                        // The tile drops here and its buffer returns to
                        // the pool: a lost packet costs nothing.
                        self.send_seq += 1;
                        self.outbound = None;
                        self.pc = Pc::PostInstr;
                        continue;
                    }
                    // Copy-on-write duplication: the second tile is taken
                    // from the pool only when the fault actually fires,
                    // and only after corruption, so both deliveries carry
                    // the same (possibly corrupted) payload.
                    self.dup_pending = duplicated.then(|| {
                        self.outbound
                            .as_ref()
                            .expect("entered with outbound")
                            .duplicate()
                    });
                    self.xmit_bytes = (self.outbound.as_ref().expect("entered with outbound").len()
                        * std::mem::size_of::<f32>()) as u64;
                    if delay > Duration::ZERO {
                        self.timer_armed = false;
                        self.pc = Pc::Delay {
                            until: Instant::now() + delay,
                        };
                    } else {
                        self.pc = Pc::Xmit { copy: 0 };
                    }
                }
                Pc::Delay { until } => {
                    if self.cancel.is_cancelled() {
                        return self.die();
                    }
                    if Instant::now() < until {
                        return Yield::Blocked {
                            key: WakeKey::Sleep(self.flat),
                            timer: self.arm_at(until),
                        };
                    }
                    self.pc = Pc::Xmit { copy: 0 };
                }
                Pc::Xmit { copy } => {
                    let payload = if copy == 0 {
                        self.outbound.take()
                    } else {
                        self.dup_pending.take()
                    };
                    let payload = payload.expect("xmit entered with a payload staged");
                    let (dst, channel, idx, fifo) = {
                        let c = self
                            .send
                            .as_ref()
                            .expect("send op requires a send connection");
                        (c.peer, c.channel, c.idx, Arc::clone(&c.fifo))
                    };
                    let bytes = self.xmit_bytes;
                    let seq = self.send_seq;
                    let was_blocked = self.block_emitted;
                    let blocked_at = self.blocked_at;
                    // `SendResume` and `Send` are stamped from inside the
                    // callback — while the queue lock is held — so the
                    // receiver's `Recv` timestamp can never precede them.
                    let rec = &mut self.rec;
                    let metrics = self.metrics;
                    let flight = self.flight;
                    let (rank, tb_id) = (self.rank, self.tb_id);
                    let result = fifo.try_send(payload, |depth| {
                        if let Some(fl) = flight {
                            fl.fifo_depth(w, rank, tb_id, idx, depth);
                        }
                        if was_blocked {
                            rec.emit(EventKind::SendResume { dst, channel });
                        }
                        if copy == 0 {
                            rec.emit(EventKind::Send {
                                dst,
                                channel,
                                seq,
                                bytes,
                            });
                        }
                        if let Some(m) = metrics {
                            if was_blocked {
                                if let Some(t0) = blocked_at {
                                    m.fifo_send_block_ns
                                        .add(m.shard, t0.elapsed().as_nanos() as u64);
                                }
                            }
                            if let Some((bytes_sent, sends, peak)) = &m.send_conn {
                                peak.set_max(depth as u64);
                                if copy == 0 {
                                    bytes_sent.add(m.shard, bytes);
                                    sends.inc(m.shard);
                                }
                            }
                        }
                    });
                    match result {
                        Ok(()) => {
                            self.block_emitted = false;
                            self.blocked_at = None;
                            self.fail_at = None;
                            // The enqueued tile may unblock the receiver.
                            sched.wake(WakeKey::Recv(idx), w);
                            if copy == 0 && self.dup_pending.is_some() {
                                self.pc = Pc::Xmit { copy: 1 };
                            } else {
                                self.send_seq += 1;
                                self.pc = Pc::PostInstr;
                            }
                        }
                        Err(returned) => {
                            if copy == 0 {
                                self.outbound = Some(returned);
                            } else {
                                self.dup_pending = Some(returned);
                            }
                            if !self.block_emitted {
                                self.block_emitted = true;
                                let tb = self.tb;
                                let op = tb.instructions[self.step].op;
                                self.ring.push(
                                    self.tile,
                                    self.step,
                                    op,
                                    Moment::BlockedSend { dst, channel },
                                );
                                self.rec.emit(EventKind::SendBlock { dst, channel });
                                let now = Instant::now();
                                self.blocked_at = Some(now);
                                self.open_wait(now);
                            }
                            if self.cancel.is_cancelled() {
                                return self.die();
                            }
                            if Instant::now() >= self.fail_at.expect("send wait opened above") {
                                return self.fail_own();
                            }
                            return Yield::Blocked {
                                key: WakeKey::Send(idx),
                                timer: self.arm_fail(),
                            };
                        }
                    }
                }
                Pc::PostInstr => {
                    let tb = self.tb;
                    let instr = &tb.instructions[self.step];
                    if let Some(m) = self.metrics {
                        let (count, latency) = &m.ops[op_index(instr.op)];
                        count.inc(m.shard);
                        if let Some(t0) = self.instr_start.take() {
                            latency.record(m.shard, t0.elapsed().as_nanos() as u64);
                        }
                    }
                    self.completed += 1;
                    debug_assert_eq!(
                        self.completed,
                        self.tile as u64 * self.tb.instructions.len() as u64 + self.step as u64 + 1
                    );
                    self.ring
                        .push(self.tile, self.step, instr.op, Moment::Completed);
                    // Stamp completion *before* advancing the semaphore:
                    // a waiter the set releases stamps its own events
                    // after returning from the wait, so this InstrEnd can
                    // never postdate a dependent's InstrBegin.
                    if instr.has_dep {
                        self.rec.emit(EventKind::SemSet {
                            value: self.completed,
                        });
                    }
                    self.rec.emit(EventKind::InstrEnd {
                        step: self.step,
                        tile: self.tile,
                        op: instr.op,
                    });
                    if instr.has_dep {
                        self.sem.set(self.completed);
                        if let Some(fl) = self.flight {
                            fl.sem_set(w, self.rank, self.tb_id, self.flat, self.completed);
                        }
                        sched.wake(WakeKey::Sem(self.flat), w);
                    }
                    self.pc = Pc::GateCheck;
                }
                Pc::GateCheck => {
                    // The gate check comes *after* the semaphore advance:
                    // dependents of this instruction must be able to
                    // proceed to their own pre-cut work, or the barrier
                    // could never fill.
                    if let Some(y) = self.gate_step(sched, w) {
                        return y;
                    }
                    self.step += 1;
                    self.pc = if self.step < self.tb.instructions.len() {
                        Pc::PreInstr
                    } else {
                        Pc::PostTile
                    };
                }
                Pc::Finished => return Yield::Done,
            }
        }
    }

    /// Where control goes after the (possible) injected stall: the
    /// chronic straggle delay, or straight to the dependency waits.
    fn after_stall(&mut self) -> Pc {
        match self.straggle {
            Some(d) => {
                self.timer_armed = false;
                Pc::Straggle {
                    until: Instant::now() + d,
                }
            }
            None => Pc::Dep { idx: 0 },
        }
    }

    fn finish(&mut self) -> Yield {
        debug_assert!(self.inbox.is_empty(), "undelivered tile at program end");
        self.done = true;
        self.pc = Pc::Finished;
        Yield::Done
    }

    // ---- Tile-shaped memory helpers: each moves `count` chunk segments
    // directly between rank memory and a pooled tile — no intermediate
    // Vec on any path.

    fn fill_src(
        &self,
        instr: &mscclang::IrInstruction,
        elem_off: usize,
        len: usize,
        tile: &mut PooledTile,
    ) {
        let loc = instr.src.expect("instruction requires src");
        for i in 0..instr.count {
            self.mem.read_into(
                self.collective,
                loc.buffer,
                loc.index + i,
                elem_off,
                &mut tile[i * len..(i + 1) * len],
            );
        }
    }

    fn write_dst(
        &self,
        instr: &mscclang::IrInstruction,
        elem_off: usize,
        len: usize,
        values: &[f32],
    ) {
        let loc = instr.dst.expect("instruction requires dst");
        for i in 0..instr.count {
            self.mem.write(
                self.collective,
                loc.buffer,
                loc.index + i,
                elem_off,
                &values[i * len..(i + 1) * len],
            );
        }
    }

    /// dst-memory = op(dst-memory, tile), tile = dst-memory: the in-place
    /// form of the old read-combine-write round trip, preserving its
    /// operand order exactly.
    fn reduce_merge_dst(
        &self,
        instr: &mscclang::IrInstruction,
        elem_off: usize,
        len: usize,
        tile: &mut PooledTile,
    ) {
        let loc = instr.dst.expect("instruction requires dst");
        for i in 0..instr.count {
            self.mem.reduce_merge(
                self.collective,
                loc.buffer,
                loc.index + i,
                elem_off,
                &mut tile[i * len..(i + 1) * len],
                self.op,
            );
        }
    }

    /// tile = op(src-memory, tile): the receive-side merge of
    /// RecvReduceSend, local operand on the left as before.
    fn combine_read_src(
        &self,
        instr: &mscclang::IrInstruction,
        elem_off: usize,
        len: usize,
        tile: &mut PooledTile,
    ) {
        let loc = instr.src.expect("instruction requires src");
        for i in 0..instr.count {
            self.mem.combine_read(
                self.collective,
                loc.buffer,
                loc.index + i,
                elem_off,
                &mut tile[i * len..(i + 1) * len],
                self.op,
            );
        }
    }
}

/// Runs `tasks[t]` until it parks or finishes. Panics inside the
/// interpreter become a cancellation with a recorded origin rather than a
/// bare thread death the others wait out; every lock in the runtime is
/// poison-tolerant, so unwinding with locks held cannot wedge the
/// survivors.
fn run_task(t: usize, w: usize, sched: &Scheduler, tasks: &[Mutex<TbTask>], cancel: &CancelToken) {
    // Uncontended by the scheduler's ownership discipline: a task index
    // lives in exactly one place (a deque, the injector, the wait table,
    // or here), so no other worker holds this lock.
    let mut task = tasks[t].lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(fl) = task.flight {
        fl.run(w, task.rank, task.tb_id, t, task.completed);
    }
    loop {
        let step =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.advance(sched, w)));
        match step {
            Ok(Yield::Done) => {
                sched.task_done();
                return;
            }
            Ok(Yield::Blocked { key, timer }) => {
                if let Some(fl) = task.flight {
                    fl.block(
                        w,
                        task.rank,
                        task.tb_id,
                        key.flight_code(),
                        task.tile,
                        task.step,
                    );
                }
                let probe_task = &*task;
                if !sched.block(t, key, timer, || probe_task.blocked_ready(Instant::now())) {
                    // Parked: a waker, a timer, or the cancellation drain
                    // re-enqueues it. This worker moves on.
                    return;
                }
                // The condition turned true between registering and
                // probing, and this call won the reclaim race: keep
                // running the task.
            }
            Err(payload) => {
                cancel.cancel(FailureOrigin {
                    rank: task.rank,
                    tb: task.tb_id,
                    step: task.ring.last_step(),
                    cause: FailureCause::Panic(payload_string(payload.as_ref())),
                });
                // Panicked mid-advance: the pc is wherever the unwind left
                // it, which names no trustworthy wait — freeze nothing.
                task.frozen = None;
                task.dead = true;
                task.done = true;
                task.pc = Pc::Finished;
                sched.task_done();
                return;
            }
        }
    }
}

/// One pool worker: pops tasks (own deque LIFO, then the injector, then
/// stealing FIFO from peers) and runs each until it parks. When idle it
/// fires due timers and parks on the scheduler's [`Parker`] until
/// something is published. Exits when every task is done — or, after a
/// cancellation, when the queues are drained dry.
fn worker_loop(w: usize, sched: &Scheduler, tasks: &[Mutex<TbTask>], cancel: &CancelToken) {
    loop {
        let t = 'find: loop {
            if let Some(t) = sched.pop(w) {
                break 'find t;
            }
            if sched.is_finished() {
                return;
            }
            if cancel.is_cancelled() {
                // Snapshot the wait table before the drain empties it:
                // it is the post-mortem's record of who was parked on
                // what at the moment of failure. First capture wins.
                sched.capture_waits();
                // Wake everything so each task observes the token and
                // unwinds; once the queues are dry this worker is done —
                // a task stranded by a worker death outside the
                // interpreter no longer counts.
                sched.drain_waiting();
                match sched.pop(w) {
                    Some(t) => break 'find t,
                    None => return,
                }
            }
            // Park protocol: read the epoch, re-probe, then sleep bounded
            // by the next timer. Any publish after the epoch read bumps
            // it and the park returns immediately.
            let seen = sched.parker.epoch();
            if let Some(t) = sched.pop(w) {
                break 'find t;
            }
            if sched.is_finished() || cancel.is_cancelled() {
                continue;
            }
            let (woke, next_timer) = sched.fire_timers(Instant::now());
            if woke {
                continue;
            }
            sched.park(w, seen, next_timer);
        };
        run_task(t, w, sched, tasks, cancel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions};

    fn run_and_check(program: &mscclang::Program, instances: usize, chunk_elems: usize) {
        let ir = compile(
            program,
            &CompileOptions::default().with_instances(instances),
        )
        .unwrap();
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 7);
        let outputs = execute(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();
    }

    #[test]
    fn ring_allreduce_computes_correct_sums() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        run_and_check(&p, 1, 16);
    }

    #[test]
    fn multi_channel_multi_instance_ring() {
        let p = msccl_algos::ring_all_reduce(4, 2).unwrap();
        run_and_check(&p, 2, 8);
    }

    #[test]
    fn tiling_pipelines_large_chunks() {
        // Force multiple tiles with a tiny tile size.
        let p = msccl_algos::ring_all_reduce(3, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 10;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 3);
        let opts = RunOptions {
            tile_elems: Some(3),
            ..RunOptions::default()
        };
        let outputs = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();
    }

    #[test]
    fn rejects_bad_input_shape() {
        let p = msccl_algos::ring_all_reduce(2, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let err = execute(&ir, &[vec![0.0; 3]], 4, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::InputShape { .. }));
    }

    #[test]
    fn rejects_degenerate_options_by_name() {
        let p = msccl_algos::ring_all_reduce(2, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let inputs = crate::reference::random_inputs(&ir, 4, 1);
        let cases: [(RunOptions, &str); 3] = [
            (
                RunOptions {
                    timeout: Duration::ZERO,
                    ..RunOptions::default()
                },
                "timeout",
            ),
            (
                RunOptions {
                    tile_elems: Some(0),
                    ..RunOptions::default()
                },
                "tile_elems",
            ),
            (
                RunOptions {
                    deadline: Some(Duration::ZERO),
                    ..RunOptions::default()
                },
                "deadline",
            ),
        ];
        for (opts, named) in cases {
            let err = execute(&ir, &inputs, 4, &opts).unwrap_err();
            let RuntimeError::InvalidOptions { message } = &err else {
                panic!("expected InvalidOptions for {named}, got {err:?}");
            };
            assert!(message.contains(named), "{message:?} names {named}");
            assert!(!err.is_transient());
        }
    }

    /// Tracing must not change results, and the trace must pass the
    /// consistency oracle against the IR.
    #[test]
    fn traced_execution_matches_untraced() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 5);
        let plain = execute(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        let (traced, trace) =
            execute_traced(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        assert_eq!(plain, traced);
        assert!(!trace.is_empty());
        trace.check_consistency(Some(&ir)).unwrap();
        // Every instruction appears exactly once (single tile).
        assert_eq!(trace.executed_instructions().len(), ir.num_instructions());
    }

    #[test]
    fn untraced_execution_records_nothing() {
        let p = msccl_algos::ring_all_reduce(2, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let inputs = crate::reference::random_inputs(&ir, 4, 9);
        // The public untraced API returns only outputs; internally the
        // recorder stays empty.
        let (_, trace, _, _) = execute_impl(
            &ir,
            &inputs,
            4,
            &RunOptions::default(),
            false,
            false,
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(trace.is_none());
    }

    fn deadlocked_ir() -> mscclang::IrProgram {
        use mscclang::Collective;
        let collective = Collective::all_gather(2, 1, false);
        let gpu = |rank: usize, peer: usize| mscclang::ir::IrGpu {
            rank,
            input_chunks: 1,
            output_chunks: 2,
            scratch_chunks: 0,
            threadblocks: vec![mscclang::IrThreadBlock {
                id: 0,
                send_peer: Some(peer),
                recv_peer: Some(peer),
                channel: 0,
                instructions: vec![
                    mscclang::IrInstruction {
                        step: 0,
                        op: OpCode::Recv,
                        src: None,
                        dst: Some(mscclang::ir::IrLoc {
                            buffer: mscclang::BufferKind::Output,
                            index: 0,
                        }),
                        count: 1,
                        deps: vec![],
                        has_dep: false,
                    },
                    mscclang::IrInstruction {
                        step: 1,
                        op: OpCode::Send,
                        src: Some(mscclang::ir::IrLoc {
                            buffer: mscclang::BufferKind::Input,
                            index: 0,
                        }),
                        dst: None,
                        count: 1,
                        deps: vec![],
                        has_dep: false,
                    },
                ],
            }],
        };
        mscclang::IrProgram {
            name: "deadlock".into(),
            collective,
            protocol: None,
            num_channels: 1,
            refinement: 1,
            gpus: vec![gpu(0, 1), gpu(1, 0)],
            epoch_cuts: vec![],
        }
    }

    /// A hand-built IR where both ranks only receive: the runtime's
    /// watchdog must report the hang instead of blocking forever.
    #[test]
    fn hang_is_detected() {
        let ir = deadlocked_ir();
        let opts = RunOptions {
            timeout: Duration::from_millis(200),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        assert!(matches!(err, RuntimeError::Hang { .. }), "got {err:?}");
        assert!(err.is_transient());
    }

    /// The hang error carries each thread block's last ring entries, and
    /// its display names the blocking receives.
    #[test]
    fn hang_dumps_recent_activity() {
        let ir = deadlocked_ir();
        let opts = RunOptions {
            timeout: Duration::from_millis(200),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        let RuntimeError::Hang { step, context, .. } = &err else {
            panic!("expected hang, got {err:?}");
        };
        assert_eq!(*step, 0);
        // Both thread blocks contribute their stuck receive.
        assert!(context
            .iter()
            .any(|l| l.starts_with("rank 0 tb 0") && l.contains("blocked receiving from rank 1")));
        assert!(context
            .iter()
            .any(|l| l.starts_with("rank 1 tb 0") && l.contains("blocked receiving from rank 0")));
        let shown = err.to_string();
        assert!(shown.contains("recent activity per thread block:"));
        assert!(shown.contains("blocked receiving"));
    }

    /// The hang error carries a structured diagnosis: the two mutually
    /// blocked receives close a cycle in the wait-for graph.
    #[test]
    fn hang_diagnosis_classifies_deadlock_cycle() {
        let ir = deadlocked_ir();
        let opts = RunOptions {
            timeout: Duration::from_millis(200),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        let d = err.diagnosis().expect("hang carries a diagnosis");
        assert_eq!(d.kind, crate::flight::StallKind::DeadlockCycle, "{d:?}");
        assert!(!d.chain.is_empty());
        assert_eq!(d.graph.tasks.len(), 2);
        let RuntimeError::Hang { context, .. } = &err else {
            panic!("expected hang, got {err:?}");
        };
        assert!(
            context
                .iter()
                .any(|l| l.contains("diagnosis: deadlock_cycle")),
            "{context:?}"
        );
        assert!(
            context.iter().any(|l| l.starts_with("root cause: ")),
            "{context:?}"
        );
    }

    /// With `blackbox_dir` set, a failed run writes a versioned dump
    /// that parses back and names the same failure.
    #[test]
    fn failed_run_writes_parseable_blackbox() {
        let dir = std::env::temp_dir().join(format!("msccl-bb-test-{}", std::process::id()));
        let ir = deadlocked_ir();
        let opts = RunOptions {
            timeout: Duration::from_millis(200),
            blackbox_dir: Some(dir.clone()),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        let path = err
            .blackbox_path()
            .expect("dump path recorded on the error")
            .to_path_buf();
        let raw = std::fs::read_to_string(&path).unwrap();
        let bb = Blackbox::from_json(&raw).expect("dump parses");
        assert_eq!(bb.version, crate::flight::BLACKBOX_VERSION);
        assert_eq!(bb.failure.cause, "hang");
        assert_eq!(bb.program, "deadlock");
        assert_eq!(bb.diagnosis.kind, crate::flight::StallKind::DeadlockCycle);
        assert!(!bb.flight.is_empty(), "flight rings captured");
        assert!(!bb.conns.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An injected kill's diagnosis is a self-fault rooted at the
    /// injected rank/tb/step, with the fired fault attached.
    #[test]
    fn injected_kill_diagnosis_names_fault_site() {
        use msccl_faults::{FaultKind, FaultPlan, FaultSite, FaultSpec};
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 5);
        let plan = FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                site: FaultSite::Block {
                    rank: 1,
                    tb: 0,
                    step: 0,
                },
                kind: FaultKind::KillBlock,
            }],
        };
        let injector = FaultInjector::new(&plan);
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            ..RunOptions::default()
        };
        let err = execute_with_faults(&ir, &inputs, chunk_elems, &opts, &injector).unwrap_err();
        let d = err.diagnosis().expect("kill carries a diagnosis");
        assert_eq!(d.kind, crate::flight::StallKind::SelfFault, "{d:?}");
        assert_eq!(
            (d.root.0, d.root.1),
            (1, 0),
            "root names the killed block: {d:?}"
        );
        assert!(
            d.fired_faults
                .iter()
                .any(|f| f.contains("kill block r1 tb0 step0")),
            "{d:?}"
        );
    }

    /// Disabling the flight recorder still yields a full wait-for-graph
    /// diagnosis — only the binary rings go missing.
    #[test]
    fn flight_off_still_diagnoses() {
        let ir = deadlocked_ir();
        let opts = RunOptions {
            timeout: Duration::from_millis(200),
            flight: false,
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        assert_eq!(
            err.diagnosis().unwrap().kind,
            crate::flight::StallKind::DeadlockCycle
        );
    }

    /// A global deadline fires even when every step makes progress, and
    /// the error is distinguishable from a per-step hang.
    #[test]
    fn global_deadline_is_enforced() {
        let ir = deadlocked_ir();
        // Generous per-step timeout, tight global deadline: only the
        // deadline can fire first.
        let opts = RunOptions {
            timeout: Duration::from_secs(20),
            deadline: Some(Duration::from_millis(100)),
            ..RunOptions::default()
        };
        let inputs = vec![vec![1.0], vec![2.0]];
        let start = Instant::now();
        let err = execute(&ir, &inputs, 1, &opts).unwrap_err();
        assert!(
            matches!(err, RuntimeError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    /// A worker panic is caught, attributed to its rank/tb/step, carries
    /// the payload text, and cancels the other workers promptly.
    #[test]
    fn worker_panic_is_attributed() {
        // An IR whose rank-1 receive writes to an out-of-range output
        // chunk makes the worker panic inside memory access.
        let mut ir = deadlocked_ir();
        ir.gpus[0].threadblocks[0].instructions.truncate(1);
        ir.gpus[1].threadblocks[0].instructions = vec![mscclang::IrInstruction {
            step: 0,
            op: OpCode::Send,
            src: Some(mscclang::ir::IrLoc {
                buffer: mscclang::BufferKind::Input,
                index: 99, // out of range: reading it panics
            }),
            dst: None,
            count: 1,
            deps: vec![],
            has_dep: false,
        }];
        let inputs = vec![vec![1.0], vec![2.0]];
        let start = Instant::now();
        let err = execute(&ir, &inputs, 1, &RunOptions::default()).unwrap_err();
        let RuntimeError::WorkerPanic {
            rank,
            tb,
            step,
            payload,
            ..
        } = &err
        else {
            panic!("expected WorkerPanic, got {err:?}");
        };
        assert_eq!((*rank, *tb, *step), (1, 0, 0));
        assert!(!payload.is_empty());
        // Cancellation, not the 20 s default timeout, freed rank 0.
        assert!(start.elapsed() < Duration::from_secs(2));
        let shown = err.to_string();
        assert!(shown.contains("worker panicked at rank 1 tb 0 step 0"));
        assert!(err.is_transient());
    }

    use mscclang::OpCode;

    #[test]
    fn max_reduction_operator() {
        let p = msccl_algos::allpairs_all_reduce(3).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 4;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 11);
        let opts = RunOptions {
            reduce_op: ReduceOp::Max,
            ..RunOptions::default()
        };
        let outputs = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Max,
        )
        .unwrap();
    }

    #[test]
    fn arena_reuse_is_bit_identical_and_allocation_free() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 32;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 23);
        let opts = RunOptions {
            tile_elems: Some(9),
            ..RunOptions::default()
        };

        let fresh = execute(&ir, &inputs, chunk_elems, &opts).unwrap();

        let mut arena = ExecArena::new(&ir, &opts);
        let (first, _) = execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        assert_eq!(fresh, first, "arena-backed run diverged from fresh run");
        arena.recycle_outputs(first);

        // Second run through the warmed arena: identical bits, and the
        // entire data path (tiles, rank memory, output vectors) recycles.
        let (second, stats) =
            execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        for (a, b) in fresh.iter().zip(&second) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(
            stats.pool.allocated, 0,
            "warmed arena still allocated tiles: {:?}",
            stats.pool
        );
        assert!(stats.pool.reused > 0, "pool was bypassed entirely");
    }

    /// Epoch barriers are pure synchronization on the clean path: outputs
    /// with checkpointing on are bit-identical to epochs-off, and the
    /// status reports every scheduled boundary as published.
    #[test]
    fn epochs_on_clean_run_is_bit_exact() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 41);
        let opts_off = RunOptions {
            tile_elems: Some(2),
            ..RunOptions::default()
        };
        let plain = execute(&ir, &inputs, chunk_elems, &opts_off).unwrap();
        let opts_on = RunOptions {
            epochs: EpochMode::Count(2),
            ..opts_off
        };
        let (result, status) = execute_resumable(&ir, &inputs, chunk_elems, &opts_on, None, None);
        let outputs = result.unwrap();
        for (a, b) in plain.iter().zip(&outputs) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(status.boundaries, 2);
        assert_eq!(status.epochs_completed, 2);
        assert_eq!(status.steps_resumed, 0);
        assert_eq!(status.executed, (ir.num_instructions() * 4) as u64);
        assert!(
            status.checkpoint.is_none(),
            "successful runs must not hand out a checkpoint"
        );
    }

    /// Epoch snapshot staging buffers recycle through the arena: the
    /// first epochs-on run grows them, later runs reuse them, and the
    /// data path stays bit-exact.
    #[test]
    fn arena_recycles_epoch_snapshot_buffers() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 43);
        let opts = RunOptions {
            tile_elems: Some(2),
            epochs: EpochMode::Count(2),
            ..RunOptions::default()
        };
        let fresh = execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        let mut arena = ExecArena::new(&ir, &opts);
        let (first, _) = execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        assert_eq!(fresh, first);
        assert_eq!(
            arena.snaps.len(),
            ir.num_ranks(),
            "snapshot staging buffers must return to the arena"
        );
        arena.recycle_outputs(first);
        let (second, _) = execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).unwrap();
        assert_eq!(fresh, second);
        assert_eq!(arena.snaps.len(), ir.num_ranks());
    }

    /// A resume checkpoint is only honored against the exact schedule it
    /// was captured under; anything else is a structural error, not a
    /// silent corruption.
    #[test]
    fn mismatched_resume_checkpoint_is_rejected() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 44);
        let bogus = crate::epoch::EpochCheckpoint {
            boundary: 7,
            targets: vec![vec![1]; 4],
            memories: (0..4)
                .map(|_| crate::memory::SpaceBuffers::default())
                .collect(),
            instructions: 4,
        };
        let (result, _) = execute_resumable(
            &ir,
            &inputs,
            chunk_elems,
            &RunOptions {
                tile_elems: Some(2),
                epochs: EpochMode::Count(2),
                ..RunOptions::default()
            },
            None,
            Some(bogus),
        );
        let err = result.unwrap_err();
        assert!(
            matches!(&err, RuntimeError::InvalidOptions { message } if message.contains("resume checkpoint")),
            "got {err:?}"
        );
    }

    /// The metrics snapshot agrees with the trace recorded in the same
    /// run: same per-connection bytes/sends/receives, same instruction
    /// count, pool counters mirroring `ExecStats`.
    #[test]
    fn profiled_metrics_agree_with_trace() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let chunk_elems = 16;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 31);
        let (outputs, trace, snapshot) =
            execute_profiled(&ir, &inputs, chunk_elems, &RunOptions::default()).unwrap();
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &outputs,
            chunk_elems,
            ReduceOp::Sum,
        )
        .unwrap();

        // The trace-derived snapshot carries the same logical counters:
        // bytes, sends, receives per connection, instructions per op.
        let derived = msccl_trace::snapshot_from_trace(&trace);
        for name in [
            msccl_metrics::names::BYTES_SENT,
            msccl_metrics::names::BYTES_RECEIVED,
            msccl_metrics::names::SENDS,
            msccl_metrics::names::RECVS,
            msccl_metrics::names::INSTRUCTIONS,
        ] {
            let live: Vec<_> = snapshot.with_name(name).collect();
            assert!(!live.is_empty(), "no live samples for {name}");
            for sample in live {
                let labels: Vec<(&str, &str)> = sample
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                assert_eq!(
                    derived.counter(name, &labels),
                    snapshot.counter(name, &labels),
                    "mismatch on {name} {labels:?}"
                );
            }
        }
        assert_eq!(
            snapshot.counter_total(msccl_metrics::names::INSTRUCTIONS),
            trace.executed_instructions().len() as u64,
        );

        // Metrics off: the run still works, and the snapshot is empty.
        let opts = RunOptions {
            metrics: false,
            ..RunOptions::default()
        };
        let (_, _, empty) = execute_profiled(&ir, &inputs, chunk_elems, &opts).unwrap();
        assert!(empty.samples.is_empty());
    }
}

#[cfg(test)]
mod zero_elision {
    use super::*;
    use mscclang::{compile, CompileOptions};

    /// Recursive-doubling allgather(4): every chunk a rank *receives* is
    /// provably overwritten before any read of it. The round-2 send of
    /// the round-1 chunk reads it, but only behind the dep edge on the
    /// round-1 recv — the happens-before sweep must see through that
    /// edge instead of conservatively re-zeroing the chunk. The rank's
    /// own chunk is never elided (the input load covers it instead).
    #[test]
    fn rd_allgather_elides_every_received_chunk() {
        let p = msccl_algos::recursive_doubling_all_gather(4).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        for r in 0..4 {
            let skip = overwrite_only_chunks(&ir, &ir.collective, r);
            let want: Vec<bool> = (0..4).map(|c| c != r).collect();
            assert_eq!(skip[0], want, "rank {r} data-space elision");
        }
    }

    /// Ring allreduce reduces in place — every data chunk is the target
    /// of read-modify-write reduce steps with no prior overwrite, so
    /// nothing may skip its re-zero (the input load covers the chunks
    /// instead; this guards against the analysis ever treating a reduce
    /// destination as a plain overwrite).
    #[test]
    fn ring_allreduce_elides_nothing() {
        let p = msccl_algos::ring_all_reduce(4, 1).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        for r in 0..4 {
            let skip = overwrite_only_chunks(&ir, &ir.collective, r);
            assert!(
                skip[0].iter().all(|&s| !s),
                "rank {r}: reduce-target chunks must keep their re-zero, got {:?}",
                skip[0]
            );
        }
    }
}
