//! Collective-level recovery: bounded retry with exponential backoff for
//! transient failures, graceful degradation to a fallback algorithm, and
//! a decision log convertible to trace events.
//!
//! The policy leans on two guarantees from the layers below. First,
//! errors are classified at the source: [`RuntimeError::is_transient`]
//! separates timing/fault failures (worth retrying) from structural
//! rejections (not). Second, injected faults are one-shot *per injector*
//! ([`FaultInjector`]), so a retry over the same injector runs without
//! the faults that already struck — precisely the semantics of a
//! transient fault in a real fabric.
//!
//! Verification closes the loop on *corrupting* faults: a bit-flip or a
//! duplicated delivery produces no error at all, only wrong numbers, so
//! an attempt counts as successful only when its outputs match the
//! collective's reference semantics ([`reference::check_outputs`]).
//!
//! [`reference::check_outputs`]: crate::reference::check_outputs

use std::time::{Duration, Instant};

use msccl_faults::FaultInjector;
use msccl_metrics::{names, MetricsSnapshot, Registry};
use msccl_trace::{ClockDomain, EventKind, RecoveryDecision, Trace, TraceEvent};
use mscclang::IrProgram;

use crate::executor::{execute, execute_with_faults, RunOptions, RuntimeError};

/// How the recovery loop reacts to failed attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How many times to re-run the primary algorithm after its first
    /// failed attempt (0 = no retries).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
    /// Whether to verify outputs against the collective's reference
    /// semantics; without it, corrupting faults pass silently.
    pub verify: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff: Duration::from_millis(10),
            verify: true,
        }
    }
}

/// One logged decision of the recovery loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStep {
    /// Microseconds since recovery began.
    pub ts_us: f64,
    /// Zero-based attempt the decision follows.
    pub attempt: usize,
    /// The decision.
    pub decision: RecoveryDecision,
    /// Why: the failure display, or "verified" / "completed" on success.
    pub detail: String,
}

/// What a recovered execution produced and how it got there.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Each rank's verified (or at least completed) output buffer.
    pub outputs: Vec<Vec<f32>>,
    /// Total executions performed, primary and fallback together.
    pub attempts: usize,
    /// Whether the outputs came from the fallback algorithm.
    pub used_fallback: bool,
    /// Every decision taken, in order.
    pub steps: Vec<RecoveryStep>,
    /// The decision log as metric counters (see
    /// [`msccl_metrics::names`]): total attempts, retries, fallbacks,
    /// and cancellations (attempts torn down without an accepted
    /// result). Mergeable with execution snapshots via
    /// [`MetricsSnapshot::merge`].
    pub metrics: MetricsSnapshot,
}

impl RecoveryReport {
    /// The decision log as a wall-clock [`Trace`] (rank 0, tb 0:
    /// recovery is collective-level, not per-block), mergeable with
    /// execution traces and exportable like any other.
    #[must_use]
    pub fn decision_trace(&self) -> Trace {
        Trace::from_buffers(
            ClockDomain::Wall,
            vec![self
                .steps
                .iter()
                .map(|s| TraceEvent {
                    ts_us: s.ts_us,
                    rank: 0,
                    tb: 0,
                    kind: EventKind::Recovery {
                        attempt: s.attempt,
                        decision: s.decision,
                    },
                })
                .collect()],
        )
    }
}

/// Folds the decision log into the shared metric vocabulary. Derived
/// from the log rather than incremented inline so the counters and the
/// log can never disagree.
fn metrics_of(steps: &[RecoveryStep], attempts: usize) -> MetricsSnapshot {
    let reg = Registry::new(1);
    reg.counter(names::RECOVERY_ATTEMPTS, &[])
        .add(0, attempts as u64);
    for step in steps {
        match step.decision {
            RecoveryDecision::Accept => {}
            RecoveryDecision::Retry => reg.counter(names::RECOVERY_RETRIES, &[]).inc(0),
            RecoveryDecision::Fallback => reg.counter(names::RECOVERY_FALLBACKS, &[]).inc(0),
            RecoveryDecision::GiveUp => {}
        }
        if step.decision != RecoveryDecision::Accept {
            // Every non-accept decision follows exactly one attempt that
            // was torn down (cancelled) without a usable result.
            reg.counter(names::RECOVERY_CANCELLATIONS, &[]).inc(0);
        }
    }
    reg.snapshot()
}

fn run_once(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: Option<&FaultInjector>,
    verify: bool,
) -> Result<Vec<Vec<f32>>, RuntimeError> {
    let outputs = match injector {
        Some(inj) => execute_with_faults(ir, inputs, chunk_elems, opts, inj)?,
        None => execute(ir, inputs, chunk_elems, opts)?,
    };
    if verify {
        crate::reference::check_outputs(
            &ir.collective,
            inputs,
            &outputs,
            chunk_elems,
            opts.reduce_op,
        )
        .map_err(|message| RuntimeError::VerificationFailed { message })?;
    }
    Ok(outputs)
}

/// Executes `primary`, retrying transient failures with exponential
/// backoff and degrading to `fallback` once retries are exhausted.
///
/// `fallback` must implement the same collective over the same ranks
/// (its outputs are interchangeable with the primary's); it gets a
/// single attempt — under one-shot injection the faults that broke the
/// primary are already spent, and a fallback that also fails on a clean
/// run is not worth iterating on.
///
/// Every decision is logged in the returned [`RecoveryReport`] (and
/// convertible to trace events via [`RecoveryReport::decision_trace`]).
///
/// # Errors
///
/// Returns the first permanent [`RuntimeError`] immediately, or the last
/// transient one once every attempt — retries and fallback — is spent.
pub fn execute_with_recovery(
    primary: &IrProgram,
    fallback: Option<&IrProgram>,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    policy: &RecoveryPolicy,
    injector: Option<&FaultInjector>,
) -> Result<RecoveryReport, RuntimeError> {
    if let Some(fb) = fallback {
        if fb.num_ranks() != primary.num_ranks()
            || fb.collective.in_chunks() != primary.collective.in_chunks()
            || fb.collective.out_chunks() != primary.collective.out_chunks()
        {
            return Err(RuntimeError::InvalidOptions {
                message: format!(
                    "fallback '{}' does not implement the same collective as '{}'",
                    fb.name, primary.name
                ),
            });
        }
    }
    let epoch = Instant::now();
    let mut steps: Vec<RecoveryStep> = Vec::new();
    let record = |steps: &mut Vec<RecoveryStep>,
                  attempt: usize,
                  decision: RecoveryDecision,
                  detail: String| {
        steps.push(RecoveryStep {
            ts_us: epoch.elapsed().as_secs_f64() * 1e6,
            attempt,
            decision,
            detail,
        });
    };

    let mut attempt = 0usize;
    let mut last_err: RuntimeError;
    loop {
        match run_once(primary, inputs, chunk_elems, opts, injector, policy.verify) {
            Ok(outputs) => {
                let detail = if policy.verify {
                    "verified"
                } else {
                    "completed"
                };
                record(&mut steps, attempt, RecoveryDecision::Accept, detail.into());
                let metrics = metrics_of(&steps, attempt + 1);
                return Ok(RecoveryReport {
                    outputs,
                    attempts: attempt + 1,
                    used_fallback: false,
                    steps,
                    metrics,
                });
            }
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => last_err = e,
        }
        if attempt < policy.max_retries {
            record(
                &mut steps,
                attempt,
                RecoveryDecision::Retry,
                last_err.to_string(),
            );
            // Exponential backoff: backoff * 2^attempt, capped at 30 bits
            // of shift to dodge overflow on absurd retry counts.
            let exp = u32::try_from(attempt.min(30)).expect("bounded");
            std::thread::sleep(policy.backoff.saturating_mul(1u32 << exp));
            attempt += 1;
            continue;
        }
        break;
    }

    if let Some(fb) = fallback {
        record(
            &mut steps,
            attempt,
            RecoveryDecision::Fallback,
            last_err.to_string(),
        );
        attempt += 1;
        match run_once(fb, inputs, chunk_elems, opts, injector, policy.verify) {
            Ok(outputs) => {
                let detail = if policy.verify {
                    "verified"
                } else {
                    "completed"
                };
                record(&mut steps, attempt, RecoveryDecision::Accept, detail.into());
                let metrics = metrics_of(&steps, attempt + 1);
                return Ok(RecoveryReport {
                    outputs,
                    attempts: attempt + 1,
                    used_fallback: true,
                    steps,
                    metrics,
                });
            }
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => last_err = e,
        }
    }
    record(
        &mut steps,
        attempt,
        RecoveryDecision::GiveUp,
        last_err.to_string(),
    );
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msccl_faults::{FaultKind, FaultPlan, FaultSite, FaultSpec};
    use mscclang::{compile, CompileOptions};

    fn ring_ir(ranks: usize) -> IrProgram {
        let p = msccl_algos::ring_all_reduce(ranks, 1).unwrap();
        compile(&p, &CompileOptions::default()).unwrap()
    }

    fn allpairs_ir(ranks: usize) -> IrProgram {
        let p = msccl_algos::allpairs_all_reduce(ranks).unwrap();
        compile(&p, &CompileOptions::default()).unwrap()
    }

    fn kill_plan(rank: usize) -> FaultPlan {
        FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                site: FaultSite::Block {
                    rank,
                    tb: 0,
                    step: 0,
                },
                kind: FaultKind::KillBlock,
            }],
        }
    }

    #[test]
    fn clean_run_accepts_first_attempt() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 21);
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &RunOptions::default(),
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap();
        assert_eq!(report.attempts, 1);
        assert!(!report.used_fallback);
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.steps[0].decision, RecoveryDecision::Accept);
    }

    /// A one-shot kill breaks the first attempt; the retry runs clean and
    /// verifies, and the decision log shows retry-then-accept.
    #[test]
    fn transient_kill_is_retried_to_success() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 22);
        let plan = kill_plan(1);
        plan.validate(&ir).unwrap();
        let injector = FaultInjector::new(&plan);
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            ..RunOptions::default()
        };
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        assert_eq!(report.attempts, 2);
        assert!(!report.used_fallback);
        let decisions: Vec<RecoveryDecision> = report.steps.iter().map(|s| s.decision).collect();
        assert_eq!(
            decisions,
            vec![RecoveryDecision::Retry, RecoveryDecision::Accept]
        );
        assert!(report.steps[0].detail.contains("kill block r1 tb0 step0"));
        assert_eq!(report.metrics.counter(names::RECOVERY_ATTEMPTS, &[]), 2);
        assert_eq!(report.metrics.counter(names::RECOVERY_RETRIES, &[]), 1);
        assert_eq!(
            report.metrics.counter(names::RECOVERY_CANCELLATIONS, &[]),
            1
        );
        assert_eq!(report.metrics.counter(names::RECOVERY_FALLBACKS, &[]), 0);
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &report.outputs,
            chunk_elems,
            opts.reduce_op,
        )
        .unwrap();
    }

    /// A corrupting fault produces no error, only wrong numbers: the
    /// verification step must catch it and drive a retry.
    #[test]
    fn corruption_is_caught_by_verification() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 23);
        let plan = FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                site: FaultSite::Delivery {
                    src: 0,
                    dst: 1,
                    channel: 0,
                    seq: 0,
                },
                // Flip the sign bit: large, unmistakable corruption.
                kind: FaultKind::CorruptPayload { bit: 31 },
            }],
        };
        plan.validate(&ir).unwrap();
        let injector = FaultInjector::new(&plan);
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &RunOptions::default(),
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        assert_eq!(report.attempts, 2);
        assert_eq!(report.steps[0].decision, RecoveryDecision::Retry);
        assert!(report.steps[0]
            .detail
            .contains("output verification failed"));
    }

    /// With no retry budget, a transient failure degrades to the
    /// fallback algorithm, whose (clean) run is accepted.
    #[test]
    fn fallback_runs_when_retries_are_exhausted() {
        let ir = ring_ir(4);
        let fb = allpairs_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 24);
        let plan = kill_plan(2);
        let injector = FaultInjector::new(&plan);
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            ..RunOptions::default()
        };
        let report = execute_with_recovery(
            &ir,
            Some(&fb),
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                max_retries: 0,
                backoff: Duration::from_millis(1),
                verify: true,
            },
            Some(&injector),
        )
        .unwrap();
        assert!(report.used_fallback);
        assert_eq!(report.attempts, 2);
        let decisions: Vec<RecoveryDecision> = report.steps.iter().map(|s| s.decision).collect();
        assert_eq!(
            decisions,
            vec![RecoveryDecision::Fallback, RecoveryDecision::Accept]
        );
    }

    /// Permanent errors (structural rejections) must not be retried.
    #[test]
    fn permanent_errors_fail_fast() {
        let ir = ring_ir(2);
        let err = execute_with_recovery(
            &ir,
            None,
            &[vec![0.0; 3]], // wrong rank count
            4,
            &RunOptions::default(),
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::InputShape { .. }));
    }

    /// A fallback implementing a different collective is rejected by name.
    #[test]
    fn mismatched_fallback_is_rejected() {
        let ir = ring_ir(4);
        let p = msccl_algos::ring_all_gather_program(4, 1).unwrap();
        let fb = compile(&p, &CompileOptions::default()).unwrap();
        let inputs = crate::reference::random_inputs(&ir, 4, 25);
        let err = execute_with_recovery(
            &ir,
            Some(&fb),
            &inputs,
            4,
            &RunOptions::default(),
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap_err();
        let RuntimeError::InvalidOptions { message } = &err else {
            panic!("expected InvalidOptions, got {err:?}");
        };
        assert!(message.contains("fallback"));
    }

    /// The decision log exports as trace events.
    #[test]
    fn decisions_become_trace_events() {
        let ir = ring_ir(4);
        let chunk_elems = 4;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 26);
        let plan = kill_plan(0);
        let injector = FaultInjector::new(&plan);
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            ..RunOptions::default()
        };
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        let trace = report.decision_trace();
        assert_eq!(trace.len(), report.steps.len());
        let csv = trace.to_csv();
        assert!(csv.contains("recovery"), "{csv}");
        assert!(csv.contains("retry"), "{csv}");
        assert!(csv.contains("accept"), "{csv}");
        let json = trace.to_chrome_json();
        assert!(json.contains("\"decision\":\"retry\""), "{json}");
    }
}
