//! Collective-level recovery: an escalation ladder for transient
//! failures — epoch resume, then full retry with capped-and-jittered
//! exponential backoff, then graceful degradation to a fallback
//! algorithm — under one whole-recovery deadline budget.
//!
//! The policy leans on three guarantees from the layers below. First,
//! errors are classified at the source: [`RuntimeError::is_transient`]
//! separates timing/fault failures (worth retrying) from structural
//! rejections (not), and [`RuntimeError::is_resumable`] further marks
//! the failures that interrupted an otherwise-sound execution — only
//! those may resume from an epoch checkpoint. Second, injected faults
//! are one-shot *per injector* ([`FaultInjector`]), so a retry (or
//! resume) over the same injector runs without the faults that already
//! struck — precisely the semantics of a transient fault in a real
//! fabric. Third, epoch checkpoints are published only at
//! verifier-checked consistent cuts ([`crate::epoch`]), so restoring
//! one and restarting every block at its watermark is exact.
//!
//! Verification closes the loop on *corrupting* faults: a bit-flip or a
//! duplicated delivery produces no error at all, only wrong numbers, so
//! an attempt counts as successful only when its outputs match the
//! collective's reference semantics ([`reference::check_outputs`]).
//! A verification failure also *discards* any held checkpoint: the
//! corruption may predate the snapshot, so only a from-scratch retry
//! clears it.
//!
//! When [`RunOptions::deadline`] is set, it is the budget for the whole
//! recovery, attempts and backoff sleeps together: each attempt runs
//! under the *remaining* budget (sleeps are not double-counted against
//! it), and when the remainder is smaller than the next backoff the
//! loop fails fast with [`RuntimeError::RecoveryBudgetExhausted`]
//! instead of sleeping past its own deadline.
//!
//! [`reference::check_outputs`]: crate::reference::check_outputs

use std::time::{Duration, Instant};

use msccl_faults::FaultInjector;
use msccl_metrics::{names, MetricsSnapshot, Registry};
use msccl_trace::{ClockDomain, EventKind, RecoveryDecision, Trace, TraceEvent};
use mscclang::IrProgram;

use crate::epoch::{EpochCheckpoint, EpochStatus};
use crate::executor::{execute_resumable_in_arena, ExecArena, RunOptions, RuntimeError};

/// Whether the ladder may resume failed attempts from epoch checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumePolicy {
    /// Resume from the last published checkpoint when the failure is
    /// [resumable](RuntimeError::is_resumable) and a checkpoint exists;
    /// degrade to a full retry otherwise.
    #[default]
    Epoch,
    /// Always retry from scratch, ignoring checkpoints (`--resume-policy
    /// retry`): the pre-epoch behavior, kept for measurement and as an
    /// escape hatch.
    FullRetry,
}

impl ResumePolicy {
    /// Parses the CLI syntax of `--resume-policy`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "epoch" => Some(ResumePolicy::Epoch),
            "retry" | "full" => Some(ResumePolicy::FullRetry),
            _ => None,
        }
    }
}

/// How the recovery loop reacts to failed attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How many times to re-run the primary algorithm after its first
    /// failed attempt (0 = no retries). Resumes count against this
    /// budget like full retries do.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
    /// Ceiling the exponential backoff saturates at, so a long ladder
    /// degrades to fixed-interval retries instead of absurd sleeps.
    pub max_backoff: Duration,
    /// Seed for the deterministic ±25% backoff jitter. Jitter
    /// desynchronizes retry herds; deriving it from a seed (no `rand`)
    /// keeps every run reproducible.
    pub jitter_seed: u64,
    /// Whether failed attempts may resume from epoch checkpoints.
    pub resume: ResumePolicy,
    /// Whether to verify outputs against the collective's reference
    /// semantics; without it, corrupting faults pass silently.
    pub verify: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0,
            resume: ResumePolicy::default(),
            verify: true,
        }
    }
}

/// The delay before retry number `attempt + 1`: exponential in the
/// attempt (shift capped at 30 bits, multiplication saturating),
/// clamped to [`RecoveryPolicy::max_backoff`], then jittered ±25%
/// deterministically from the policy's seed and the attempt index.
fn backoff_delay(policy: &RecoveryPolicy, attempt: usize) -> Duration {
    let exp = u32::try_from(attempt.min(30)).expect("bounded by min");
    let base = policy
        .backoff
        .saturating_mul(1u32 << exp)
        .min(policy.max_backoff);
    let nanos = u64::try_from(base.as_nanos()).unwrap_or(u64::MAX);
    let quarter = nanos / 4;
    if quarter == 0 {
        return base;
    }
    // splitmix64 mixing: all the randomness the jitter needs, with no
    // dependency and full determinism.
    let r = mscclang::rng::mix(policy.jitter_seed ^ attempt as u64);
    // Uniform in [base - 25%, base + 25%]; the modulo bias over a range
    // this small is irrelevant for desynchronization.
    let jittered = (nanos - quarter).saturating_add(r % (2 * quarter + 1));
    Duration::from_nanos(jittered)
}

/// One logged decision of the recovery loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStep {
    /// Microseconds since recovery began.
    pub ts_us: f64,
    /// Zero-based attempt the decision follows.
    pub attempt: usize,
    /// The decision.
    pub decision: RecoveryDecision,
    /// Why: the failure display, or "verified" / "completed" on success.
    pub detail: String,
}

/// What a recovered execution produced and how it got there.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Each rank's verified (or at least completed) output buffer.
    pub outputs: Vec<Vec<f32>>,
    /// Total executions performed, primary and fallback together.
    pub attempts: usize,
    /// Whether the outputs came from the fallback algorithm.
    pub used_fallback: bool,
    /// Epoch checkpoints published across all attempts.
    pub epochs_completed: u64,
    /// Instruction instances skipped by resuming from checkpoints —
    /// work a fault did *not* cost, thanks to epochs.
    pub steps_resumed: u64,
    /// Instruction instances re-executed by attempts after the first —
    /// work a fault *did* cost. With epoch resume this is strictly less
    /// than a from-scratch rerun whenever a checkpoint was available.
    pub steps_redone: u64,
    /// Every decision taken, in order.
    pub steps: Vec<RecoveryStep>,
    /// The decision log as metric counters (see
    /// [`msccl_metrics::names`]): total attempts, retries, resumes,
    /// fallbacks, cancellations, plus the epoch totals above. Mergeable
    /// with execution snapshots via [`MetricsSnapshot::merge`].
    pub metrics: MetricsSnapshot,
}

impl RecoveryReport {
    /// The decision log as a wall-clock [`Trace`] (rank 0, tb 0:
    /// recovery is collective-level, not per-block), mergeable with
    /// execution traces and exportable like any other.
    #[must_use]
    pub fn decision_trace(&self) -> Trace {
        Trace::from_buffers(
            ClockDomain::Wall,
            vec![self
                .steps
                .iter()
                .map(|s| TraceEvent {
                    ts_us: s.ts_us,
                    rank: 0,
                    tb: 0,
                    kind: EventKind::Recovery {
                        attempt: s.attempt,
                        decision: s.decision,
                    },
                })
                .collect()],
        )
    }
}

/// Cross-attempt epoch accounting, folded into the report and metrics.
#[derive(Default)]
struct EpochTotals {
    epochs_completed: u64,
    steps_resumed: u64,
    steps_redone: u64,
}

impl EpochTotals {
    /// Absorbs one attempt's [`EpochStatus`]. Work executed by attempts
    /// after the first is *redone* work (the first attempt's loss is the
    /// fault's direct cost, not a repetition).
    fn absorb(&mut self, attempt: usize, status: &EpochStatus) {
        self.epochs_completed += status.epochs_completed;
        self.steps_resumed += status.steps_resumed;
        if attempt > 0 {
            self.steps_redone += status.executed;
        }
    }
}

/// Folds the decision log into the shared metric vocabulary. Derived
/// from the log rather than incremented inline so the counters and the
/// log can never disagree.
fn metrics_of(steps: &[RecoveryStep], attempts: usize, totals: &EpochTotals) -> MetricsSnapshot {
    let reg = Registry::new(1);
    reg.counter(names::RECOVERY_ATTEMPTS, &[])
        .add(0, attempts as u64);
    for step in steps {
        match step.decision {
            RecoveryDecision::Accept => {}
            RecoveryDecision::Resume => reg.counter(names::RECOVERY_RESUMES, &[]).inc(0),
            RecoveryDecision::Retry => reg.counter(names::RECOVERY_RETRIES, &[]).inc(0),
            RecoveryDecision::Fallback => reg.counter(names::RECOVERY_FALLBACKS, &[]).inc(0),
            RecoveryDecision::GiveUp => {}
        }
        if step.decision != RecoveryDecision::Accept {
            // Every non-accept decision follows exactly one attempt that
            // was torn down (cancelled) without a usable result.
            reg.counter(names::RECOVERY_CANCELLATIONS, &[]).inc(0);
        }
    }
    if totals.epochs_completed > 0 {
        reg.counter(names::EPOCHS_COMPLETED, &[])
            .add(0, totals.epochs_completed);
    }
    if totals.steps_resumed > 0 {
        reg.counter(names::STEPS_RESUMED, &[])
            .add(0, totals.steps_resumed);
    }
    if totals.steps_redone > 0 {
        reg.counter(names::STEPS_REDONE, &[])
            .add(0, totals.steps_redone);
    }
    reg.snapshot()
}

/// One attempt: execute (resuming from `resume` when given), then verify
/// if asked. Returns the attempt's epoch status alongside, checkpoint
/// included on transient failure.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    ir: &IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    injector: Option<&FaultInjector>,
    verify: bool,
    resume: Option<EpochCheckpoint>,
    arena: Option<&mut ExecArena>,
) -> (Result<Vec<Vec<f32>>, RuntimeError>, EpochStatus) {
    let (result, status) =
        execute_resumable_in_arena(ir, inputs, chunk_elems, opts, injector, resume, arena);
    let result = result.and_then(|outputs| {
        if verify {
            crate::reference::check_outputs(
                &ir.collective,
                inputs,
                &outputs,
                chunk_elems,
                opts.reduce_op,
            )
            .map_err(|message| RuntimeError::VerificationFailed { message })?;
        }
        Ok(outputs)
    });
    (result, status)
}

/// Executes `primary` under the escalation ladder: transient failures
/// resume from the last epoch checkpoint when the policy and the failure
/// allow it, retry from scratch otherwise (both with capped, jittered
/// exponential backoff), and degrade to `fallback` once retries are
/// exhausted.
///
/// `fallback` must implement the same collective over the same ranks
/// (its outputs are interchangeable with the primary's); it gets a
/// single attempt — under one-shot injection the faults that broke the
/// primary are already spent, and a fallback that also fails on a clean
/// run is not worth iterating on.
///
/// When `opts.deadline` is set it bounds the *whole recovery* — every
/// attempt runs under the remaining budget, and the loop fails fast with
/// [`RuntimeError::RecoveryBudgetExhausted`] rather than start a backoff
/// sleep the budget cannot cover.
///
/// Every decision is logged in the returned [`RecoveryReport`] (and
/// convertible to trace events via [`RecoveryReport::decision_trace`]).
///
/// # Errors
///
/// Returns the first permanent [`RuntimeError`] immediately, or the last
/// transient one once every attempt — retries and fallback — is spent.
pub fn execute_with_recovery(
    primary: &IrProgram,
    fallback: Option<&IrProgram>,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    policy: &RecoveryPolicy,
    injector: Option<&FaultInjector>,
) -> Result<RecoveryReport, RuntimeError> {
    execute_with_recovery_in_arena(
        primary,
        fallback,
        inputs,
        chunk_elems,
        opts,
        policy,
        injector,
        None,
    )
}

/// [`execute_with_recovery`] drawing every attempt's data path from a
/// caller-owned [`ExecArena`] when one is given. This is the execution
/// primitive of the `msccl serve` daemon: each executor worker owns one
/// arena for its whole lifetime and runs every admitted request's full
/// ladder — resume, retry, fallback — on it, so steady-state service
/// traffic allocates nothing on the data path regardless of how many
/// tenants or programs share the worker.
///
/// # Errors
///
/// As for [`execute_with_recovery`].
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn execute_with_recovery_in_arena(
    primary: &IrProgram,
    fallback: Option<&IrProgram>,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    opts: &RunOptions,
    policy: &RecoveryPolicy,
    injector: Option<&FaultInjector>,
    mut arena: Option<&mut ExecArena>,
) -> Result<RecoveryReport, RuntimeError> {
    if let Some(fb) = fallback {
        if fb.num_ranks() != primary.num_ranks()
            || fb.collective.in_chunks() != primary.collective.in_chunks()
            || fb.collective.out_chunks() != primary.collective.out_chunks()
        {
            return Err(RuntimeError::InvalidOptions {
                message: format!(
                    "fallback '{}' does not implement the same collective as '{}'",
                    fb.name, primary.name
                ),
            });
        }
    }
    let epoch = Instant::now();
    // The whole-recovery budget: attempts and sleeps all draw from it.
    let budget_end = opts.deadline.map(|d| epoch + d);
    // Each attempt gets the budget *remaining at its start* as its
    // deadline, so backoff sleeps are charged exactly once — by the
    // clock — instead of once per layer.
    let attempt_opts = || -> RunOptions {
        let mut o = opts.clone();
        if let Some(end) = budget_end {
            o.deadline = Some(end.saturating_duration_since(Instant::now()).max(
                // Never pass a zero deadline (the executor rejects it):
                // an exhausted budget surfaces as DeadlineExceeded from
                // the attempt itself, then fails fast below.
                Duration::from_millis(1),
            ));
        }
        o
    };
    let mut steps: Vec<RecoveryStep> = Vec::new();
    let record = |steps: &mut Vec<RecoveryStep>,
                  attempt: usize,
                  decision: RecoveryDecision,
                  detail: String| {
        steps.push(RecoveryStep {
            ts_us: epoch.elapsed().as_secs_f64() * 1e6,
            attempt,
            decision,
            detail,
        });
    };
    let mut totals = EpochTotals::default();

    let mut attempt = 0usize;
    let mut checkpoint: Option<EpochCheckpoint> = None;
    let mut last_err: RuntimeError;
    loop {
        let resuming = checkpoint.is_some();
        let (result, status) = run_attempt(
            primary,
            inputs,
            chunk_elems,
            &attempt_opts(),
            injector,
            policy.verify,
            checkpoint.take(),
            arena.as_deref_mut(),
        );
        totals.absorb(attempt, &status);
        match result {
            Ok(outputs) => {
                let mut detail = String::from(if policy.verify {
                    "verified"
                } else {
                    "completed"
                });
                if resuming {
                    detail.push_str(" (resumed)");
                }
                record(&mut steps, attempt, RecoveryDecision::Accept, detail);
                let metrics = metrics_of(&steps, attempt + 1, &totals);
                return Ok(RecoveryReport {
                    outputs,
                    attempts: attempt + 1,
                    used_fallback: false,
                    epochs_completed: totals.epochs_completed,
                    steps_resumed: totals.steps_resumed,
                    steps_redone: totals.steps_redone,
                    steps,
                    metrics,
                });
            }
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => {
                // Rung 1 of the ladder: resume from the last published
                // checkpoint — but only for failures that interrupted a
                // sound execution. A verification failure means memory
                // may have been poisoned *before* the snapshot, so the
                // checkpoint is tainted and must be discarded.
                if policy.resume == ResumePolicy::Epoch && e.is_resumable() {
                    checkpoint = status.checkpoint;
                }
                last_err = e;
            }
        }
        if attempt < policy.max_retries {
            let decision = if checkpoint.is_some() {
                RecoveryDecision::Resume
            } else {
                RecoveryDecision::Retry
            };
            record(&mut steps, attempt, decision, last_err.to_string());
            let delay = backoff_delay(policy, attempt);
            if let Some(end) = budget_end {
                let remaining = end.saturating_duration_since(Instant::now());
                if remaining < delay {
                    // Fail fast: sleeping would overrun the budget, so
                    // surface a structured, permanent error now instead
                    // of a deadline failure later.
                    let err = RuntimeError::RecoveryBudgetExhausted {
                        attempts: attempt + 1,
                        next_backoff_ms: u64::try_from(delay.as_millis()).unwrap_or(u64::MAX),
                        remaining_ms: u64::try_from(remaining.as_millis()).unwrap_or(u64::MAX),
                        last_error: last_err.to_string(),
                    };
                    record(
                        &mut steps,
                        attempt,
                        RecoveryDecision::GiveUp,
                        err.to_string(),
                    );
                    return Err(err);
                }
            }
            std::thread::sleep(delay);
            attempt += 1;
            continue;
        }
        break;
    }

    if let Some(fb) = fallback {
        record(
            &mut steps,
            attempt,
            RecoveryDecision::Fallback,
            last_err.to_string(),
        );
        attempt += 1;
        // The checkpoint belongs to the primary's schedule; the fallback
        // always starts from scratch.
        let (result, status) = run_attempt(
            fb,
            inputs,
            chunk_elems,
            &attempt_opts(),
            injector,
            policy.verify,
            None,
            arena,
        );
        totals.absorb(attempt, &status);
        match result {
            Ok(outputs) => {
                let detail = if policy.verify {
                    "verified"
                } else {
                    "completed"
                };
                record(&mut steps, attempt, RecoveryDecision::Accept, detail.into());
                let metrics = metrics_of(&steps, attempt + 1, &totals);
                return Ok(RecoveryReport {
                    outputs,
                    attempts: attempt + 1,
                    used_fallback: true,
                    epochs_completed: totals.epochs_completed,
                    steps_resumed: totals.steps_resumed,
                    steps_redone: totals.steps_redone,
                    steps,
                    metrics,
                });
            }
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => last_err = e,
        }
    }
    record(
        &mut steps,
        attempt,
        RecoveryDecision::GiveUp,
        last_err.to_string(),
    );
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msccl_faults::{FaultKind, FaultPlan, FaultSite, FaultSpec};
    use mscclang::{compile, CompileOptions, EpochMode};

    fn ring_ir(ranks: usize) -> IrProgram {
        let p = msccl_algos::ring_all_reduce(ranks, 1).unwrap();
        compile(&p, &CompileOptions::default()).unwrap()
    }

    fn allpairs_ir(ranks: usize) -> IrProgram {
        let p = msccl_algos::allpairs_all_reduce(ranks).unwrap();
        compile(&p, &CompileOptions::default()).unwrap()
    }

    fn kill_plan_at(rank: usize, step: usize) -> FaultPlan {
        FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                site: FaultSite::Block { rank, tb: 0, step },
                kind: FaultKind::KillBlock,
            }],
        }
    }

    fn kill_plan(rank: usize) -> FaultPlan {
        kill_plan_at(rank, 0)
    }

    #[test]
    fn clean_run_accepts_first_attempt() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 21);
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &RunOptions::default(),
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap();
        assert_eq!(report.attempts, 1);
        assert!(!report.used_fallback);
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.steps[0].decision, RecoveryDecision::Accept);
        assert_eq!(report.steps_redone, 0);
        assert_eq!(report.steps_resumed, 0);
    }

    /// A one-shot kill breaks the first attempt; the retry runs clean and
    /// verifies, and the decision log shows retry-then-accept.
    #[test]
    fn transient_kill_is_retried_to_success() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 22);
        let plan = kill_plan(1);
        plan.validate(&ir).unwrap();
        let injector = FaultInjector::new(&plan);
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            ..RunOptions::default()
        };
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        assert_eq!(report.attempts, 2);
        assert!(!report.used_fallback);
        let decisions: Vec<RecoveryDecision> = report.steps.iter().map(|s| s.decision).collect();
        assert_eq!(
            decisions,
            vec![RecoveryDecision::Retry, RecoveryDecision::Accept]
        );
        assert!(report.steps[0].detail.contains("kill block r1 tb0 step0"));
        assert_eq!(report.metrics.counter(names::RECOVERY_ATTEMPTS, &[]), 2);
        assert_eq!(report.metrics.counter(names::RECOVERY_RETRIES, &[]), 1);
        assert_eq!(
            report.metrics.counter(names::RECOVERY_CANCELLATIONS, &[]),
            1
        );
        assert_eq!(report.metrics.counter(names::RECOVERY_FALLBACKS, &[]), 0);
        // A full retry redoes the entire program.
        assert_eq!(report.steps_redone, ir.num_instructions() as u64);
        crate::reference::check_outputs(
            &ir.collective,
            &inputs,
            &report.outputs,
            chunk_elems,
            opts.reduce_op,
        )
        .unwrap();
    }

    /// A one-shot drop of the first delivery of tile 3 (of 4): the
    /// receiver hangs there, well past the 2-boundary schedule's last
    /// checkpoint. Block faults always fire in the first tile, so a
    /// late-tile fault needs a delivery site.
    fn drop_in_tile3(ir: &IrProgram) -> FaultPlan {
        let tb = &ir.gpus[0].threadblocks[0];
        let sends_per_tile = tb.instructions.iter().filter(|i| i.op.has_send()).count() as u64;
        FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                site: FaultSite::Delivery {
                    src: 0,
                    dst: tb.send_peer.unwrap(),
                    channel: tb.channel,
                    seq: 3 * sends_per_tile,
                },
                kind: FaultKind::DropDelivery,
            }],
        }
    }

    /// With epochs on and a fault striking *after* published checkpoints,
    /// the ladder resumes instead of retrying: outputs stay bit-exact
    /// with a clean run, and strictly less work is redone.
    #[test]
    fn epoch_resume_redoes_less_than_full_retry() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let opts = RunOptions {
            // Short per-step timeout: the dropped delivery surfaces as a
            // hang, and this bounds how long detection takes.
            timeout: Duration::from_millis(400),
            // Four tiles, so the 2-boundary schedule lands on interior
            // tile frontiers well before the tile-3 fault.
            tile_elems: Some(2),
            epochs: EpochMode::Count(2),
            ..RunOptions::default()
        };
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 27);
        let clean = crate::executor::execute(&ir, &inputs, chunk_elems, &opts).unwrap();
        let plan = drop_in_tile3(&ir);
        plan.validate(&ir).unwrap();
        let injector = FaultInjector::new(&plan);
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        let decisions: Vec<RecoveryDecision> = report.steps.iter().map(|s| s.decision).collect();
        assert_eq!(
            decisions,
            vec![RecoveryDecision::Resume, RecoveryDecision::Accept],
            "expected a resume, got {:?}",
            report.steps
        );
        assert_eq!(report.outputs, clean, "resumed outputs must be bit-exact");
        assert!(report.steps_resumed > 0);
        // Four tiles of the whole program is what a from-scratch rerun
        // would redo; the resume must beat it.
        let full_rerun = (ir.num_instructions() * 4) as u64;
        assert!(
            report.steps_redone < full_rerun,
            "resume must redo less than a full rerun ({} vs {full_rerun})",
            report.steps_redone,
        );
        assert_eq!(report.metrics.counter(names::RECOVERY_RESUMES, &[]), 1);
        assert_eq!(
            report.metrics.counter(names::STEPS_RESUMED, &[]),
            report.steps_resumed
        );
        assert_eq!(
            report.metrics.counter(names::STEPS_REDONE, &[]),
            report.steps_redone
        );
        assert!(report.metrics.counter(names::EPOCHS_COMPLETED, &[]) > 0);
    }

    /// FullRetry policy ignores checkpoints even when epochs produce them.
    #[test]
    fn full_retry_policy_ignores_checkpoints() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let opts = RunOptions {
            timeout: Duration::from_millis(400),
            tile_elems: Some(2),
            epochs: EpochMode::Count(2),
            ..RunOptions::default()
        };
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 28);
        let injector = FaultInjector::new(&drop_in_tile3(&ir));
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                resume: ResumePolicy::FullRetry,
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        assert_eq!(report.steps[0].decision, RecoveryDecision::Retry);
        assert_eq!(report.steps_resumed, 0);
        assert_eq!(report.metrics.counter(names::RECOVERY_RESUMES, &[]), 0);
    }

    /// A corrupting fault produces no error, only wrong numbers: the
    /// verification step must catch it, drive a retry, and *discard* any
    /// checkpoint (the snapshot may postdate the corruption).
    #[test]
    fn corruption_is_caught_by_verification() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 23);
        let plan = FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                site: FaultSite::Delivery {
                    src: 0,
                    dst: 1,
                    channel: 0,
                    seq: 0,
                },
                // Flip the sign bit: large, unmistakable corruption.
                kind: FaultKind::CorruptPayload { bit: 31 },
            }],
        };
        plan.validate(&ir).unwrap();
        let injector = FaultInjector::new(&plan);
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &RunOptions {
                // Even with checkpoints available, a verification
                // failure must never resume.
                epochs: EpochMode::Count(2),
                ..RunOptions::default()
            },
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        assert_eq!(report.attempts, 2);
        assert_eq!(report.steps[0].decision, RecoveryDecision::Retry);
        assert!(report.steps[0]
            .detail
            .contains("output verification failed"));
        assert_eq!(report.steps_resumed, 0);
    }

    /// With no retry budget, a transient failure degrades to the
    /// fallback algorithm, whose (clean) run is accepted.
    #[test]
    fn fallback_runs_when_retries_are_exhausted() {
        let ir = ring_ir(4);
        let fb = allpairs_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 24);
        let plan = kill_plan(2);
        let injector = FaultInjector::new(&plan);
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            ..RunOptions::default()
        };
        let report = execute_with_recovery(
            &ir,
            Some(&fb),
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                max_retries: 0,
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        assert!(report.used_fallback);
        assert_eq!(report.attempts, 2);
        let decisions: Vec<RecoveryDecision> = report.steps.iter().map(|s| s.decision).collect();
        assert_eq!(
            decisions,
            vec![RecoveryDecision::Fallback, RecoveryDecision::Accept]
        );
    }

    /// Permanent errors (structural rejections) must not be retried.
    #[test]
    fn permanent_errors_fail_fast() {
        let ir = ring_ir(2);
        let err = execute_with_recovery(
            &ir,
            None,
            &[vec![0.0; 3]], // wrong rank count
            4,
            &RunOptions::default(),
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::InputShape { .. }));
    }

    /// A fallback implementing a different collective is rejected by name.
    #[test]
    fn mismatched_fallback_is_rejected() {
        let ir = ring_ir(4);
        let p = msccl_algos::ring_all_gather_program(4, 1).unwrap();
        let fb = compile(&p, &CompileOptions::default()).unwrap();
        let inputs = crate::reference::random_inputs(&ir, 4, 25);
        let err = execute_with_recovery(
            &ir,
            Some(&fb),
            &inputs,
            4,
            &RunOptions::default(),
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap_err();
        let RuntimeError::InvalidOptions { message } = &err else {
            panic!("expected InvalidOptions, got {err:?}");
        };
        assert!(message.contains("fallback"));
    }

    /// The whole-recovery deadline is a budget: when what remains cannot
    /// cover the next backoff, the loop fails fast with a structured,
    /// permanent error instead of sleeping past its own deadline.
    #[test]
    fn budget_smaller_than_backoff_fails_fast() {
        let ir = ring_ir(4);
        let chunk_elems = 8;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 29);
        let injector = FaultInjector::new(&kill_plan(1));
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            deadline: Some(Duration::from_secs(2)),
            ..RunOptions::default()
        };
        let started = Instant::now();
        let err = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                // A backoff no 2s budget can cover forces the decision
                // right after the first (fast) failed attempt.
                backoff: Duration::from_secs(3600),
                max_backoff: Duration::from_secs(3600),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap_err();
        let RuntimeError::RecoveryBudgetExhausted {
            attempts,
            next_backoff_ms,
            remaining_ms,
            last_error,
        } = &err
        else {
            panic!("expected RecoveryBudgetExhausted, got {err:?}");
        };
        assert_eq!(*attempts, 1);
        assert!(*next_backoff_ms > *remaining_ms);
        assert!(last_error.contains("kill block"));
        assert!(!err.is_transient(), "budget exhaustion is permanent");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "must fail fast, not sleep out the backoff"
        );
    }

    /// Backoff delays are deterministic in the seed, jittered within
    /// ±25%, and capped by `max_backoff` even at absurd attempt counts.
    #[test]
    fn backoff_is_jittered_capped_and_deterministic() {
        let policy = RecoveryPolicy {
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 42,
            ..RecoveryPolicy::default()
        };
        for attempt in 0..64 {
            let d = backoff_delay(&policy, attempt);
            assert_eq!(d, backoff_delay(&policy, attempt), "must be deterministic");
            let base = policy
                .backoff
                .saturating_mul(1u32 << u32::try_from(attempt.min(30)).unwrap())
                .min(policy.max_backoff);
            let lo = base.mul_f64(0.75);
            let hi = base.mul_f64(1.2500001);
            assert!(
                d >= lo && d <= hi,
                "attempt {attempt}: {d:?} not in [{lo:?}, {hi:?}]"
            );
            assert!(d <= policy.max_backoff.mul_f64(1.2500001));
        }
        // Different seeds actually move the delay (herd desync works).
        let other = RecoveryPolicy {
            jitter_seed: 43,
            ..policy.clone()
        };
        assert!((0..8).any(|a| backoff_delay(&policy, a) != backoff_delay(&other, a)));
        // Sub-4ns bases (quarter == 0) pass through unjittered rather
        // than dividing by zero.
        let tiny = RecoveryPolicy {
            backoff: Duration::from_nanos(2),
            ..RecoveryPolicy::default()
        };
        assert_eq!(backoff_delay(&tiny, 0), Duration::from_nanos(2));
    }

    /// The decision log exports as trace events.
    #[test]
    fn decisions_become_trace_events() {
        let ir = ring_ir(4);
        let chunk_elems = 4;
        let inputs = crate::reference::random_inputs(&ir, chunk_elems, 26);
        let plan = kill_plan(0);
        let injector = FaultInjector::new(&plan);
        let opts = RunOptions {
            timeout: Duration::from_secs(5),
            ..RunOptions::default()
        };
        let report = execute_with_recovery(
            &ir,
            None,
            &inputs,
            chunk_elems,
            &opts,
            &RecoveryPolicy {
                backoff: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            Some(&injector),
        )
        .unwrap();
        let trace = report.decision_trace();
        assert_eq!(trace.len(), report.steps.len());
        let csv = trace.to_csv();
        assert!(csv.contains("recovery"), "{csv}");
        assert!(csv.contains("retry"), "{csv}");
        assert!(csv.contains("accept"), "{csv}");
        let json = trace.to_chrome_json();
        assert!(json.contains("\"decision\":\"retry\""), "{json}");
    }
}
