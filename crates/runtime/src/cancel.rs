//! Cooperative cancellation shared by every worker of one execution.
//!
//! The first failure anywhere — a blocking-step timeout, the global
//! deadline, a panic, an injected kill — cancels the token and records
//! the *originating* failure. Cancellation is **event-driven**: parked
//! waiters (the scheduler's worker pool, or a primitive's condvar in the
//! blocking test APIs) register a [`Poke`] waker on the token, and
//! [`CancelToken::cancel`] notifies every registered waker after
//! tripping the flag. No wait anywhere in the runtime polls the token on
//! a timer; a blocked thread observes cancellation as one wakeup, so the
//! run reports one precise origin instead of a cascade of secondary
//! timeouts — and idle workers burn no CPU slicing their sleeps.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::Instant;

/// A parked waiter that a cancellation must wake. Implementations lock
/// whatever mutex their condvar waits under before notifying, so the
/// wakeup can never race past a waiter that has checked the flag but not
/// yet parked (the classic lost-wakeup window).
pub(crate) trait Poke: Send + Sync {
    fn poke(&self);
}

/// Why an execution failed, as seen at the point of origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// A single blocking step exceeded the per-step timeout.
    StepTimeout,
    /// The global wall-clock deadline passed.
    Deadline,
    /// The worker panicked; carries the panic payload.
    Panic(String),
    /// A planned fault killed the thread block; carries the fault.
    InjectedKill(String),
}

impl FailureCause {
    /// Stable machine-readable label used by the black-box dump format.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::StepTimeout => "hang",
            FailureCause::Deadline => "deadline",
            FailureCause::Panic(_) => "panic",
            FailureCause::InjectedKill(_) => "injected_kill",
        }
    }

    /// The free-form payload carried by the cause, if any (panic message
    /// or the injected fault's plan line).
    pub fn detail(&self) -> &str {
        match self {
            FailureCause::StepTimeout | FailureCause::Deadline => "",
            FailureCause::Panic(s) | FailureCause::InjectedKill(s) => s,
        }
    }
}

/// The first failure of a run: who, where, why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureOrigin {
    /// Rank of the originating thread block.
    pub rank: usize,
    /// Thread block id.
    pub tb: usize,
    /// Step it was executing.
    pub step: usize,
    /// Why it failed.
    pub cause: FailureCause,
}

/// A shared flag workers check between instructions, plus the recorded
/// origin of the first failure and the wakers to notify when it trips.
#[derive(Default)]
pub(crate) struct CancelToken {
    cancelled: AtomicBool,
    origin: Mutex<Option<(FailureOrigin, Instant)>>,
    wakers: Mutex<Vec<Weak<dyn Poke>>>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish_non_exhaustive()
    }
}

impl CancelToken {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Whether some worker has already failed.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Registers a waker to notify when the token trips. Weak: the token
    /// may outlive the primitive it wakes. If the token has already
    /// tripped, the waker is poked immediately instead of stored, so a
    /// waiter that registers after the failure still cannot sleep through
    /// it.
    pub(crate) fn attach(&self, waker: Weak<dyn Poke>) {
        if self.is_cancelled() {
            if let Some(w) = waker.upgrade() {
                w.poke();
            }
            return;
        }
        let mut guard = self.wakers.lock().unwrap_or_else(PoisonError::into_inner);
        guard.push(waker);
        drop(guard);
        // Trip observed between the check and the push: the canceller may
        // have drained the list already, so poke from here.
        if self.is_cancelled() {
            self.poke_all();
        }
    }

    fn poke_all(&self) {
        let wakers = self.wakers.lock().unwrap_or_else(PoisonError::into_inner);
        for w in wakers.iter() {
            if let Some(w) = w.upgrade() {
                w.poke();
            }
        }
    }

    /// Records `origin` (with the cancellation instant), trips the flag
    /// and wakes every attached waiter. Only the first caller's origin is
    /// kept; returns whether this call was the first.
    pub(crate) fn cancel(&self, origin: FailureOrigin) -> bool {
        let mut guard = self.origin.lock().unwrap_or_else(PoisonError::into_inner);
        let first = guard.is_none();
        if first {
            *guard = Some((origin, Instant::now()));
        }
        drop(guard);
        // Release-store after the origin write so a worker that observes
        // the flag can rely on the origin being present.
        self.cancelled.store(true, Ordering::Release);
        self.poke_all();
        first
    }

    /// The recorded origin, if any worker failed.
    pub(crate) fn origin(&self) -> Option<FailureOrigin> {
        self.origin
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|(o, _)| o.clone())
    }

    /// When the first failure tripped the token, if any — the start of
    /// the cancellation drain the executor measures workers against.
    pub(crate) fn cancelled_at(&self) -> Option<Instant> {
        self.origin
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|&(_, at)| at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn origin(rank: usize) -> FailureOrigin {
        FailureOrigin {
            rank,
            tb: 0,
            step: 1,
            cause: FailureCause::StepTimeout,
        }
    }

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.origin().is_none());
        assert!(t.cancel(origin(3)));
        assert!(!t.cancel(origin(7)));
        assert!(t.is_cancelled());
        assert_eq!(t.origin().unwrap().rank, 3);
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let t = CancelToken::new();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            while !t2.is_cancelled() {
                std::thread::yield_now();
            }
            t2.origin().unwrap().rank
        });
        std::thread::sleep(Duration::from_millis(10));
        t.cancel(origin(5));
        assert_eq!(h.join().unwrap(), 5);
    }

    struct CountingPoke(AtomicUsize);
    impl Poke for CountingPoke {
        fn poke(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn cancel_pokes_attached_wakers() {
        let t = CancelToken::new();
        let p = Arc::new(CountingPoke(AtomicUsize::new(0)));
        t.attach(Arc::downgrade(&p) as Weak<dyn Poke>);
        t.cancel(origin(0));
        assert_eq!(p.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn attach_after_cancel_pokes_immediately() {
        let t = CancelToken::new();
        t.cancel(origin(0));
        let p = Arc::new(CountingPoke(AtomicUsize::new(0)));
        t.attach(Arc::downgrade(&p) as Weak<dyn Poke>);
        assert_eq!(p.0.load(Ordering::SeqCst), 1);
    }
}
