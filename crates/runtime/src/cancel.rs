//! Cooperative cancellation shared by every worker of one execution.
//!
//! The first failure anywhere — a blocking-step timeout, the global
//! deadline, a panic, an injected kill — cancels the token and records
//! the *originating* failure. Every other worker observes the token in
//! its blocking loops (FIFO sends/receives, semaphore waits, fault
//! stalls, all of which slice their waits by [`CANCEL_POLL`]) and aborts
//! within milliseconds, so the run reports one precise origin instead of
//! a cascade of secondary timeouts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Upper bound on how long a blocked worker can take to observe a
/// cancellation: every blocking wait is sliced to at most this long
/// between checks of the token.
pub(crate) const CANCEL_POLL: Duration = Duration::from_millis(5);

/// Why an execution failed, as seen at the point of origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// A single blocking step exceeded the per-step timeout.
    StepTimeout,
    /// The global wall-clock deadline passed.
    Deadline,
    /// The worker panicked; carries the panic payload.
    Panic(String),
    /// A planned fault killed the thread block; carries the fault.
    InjectedKill(String),
}

/// The first failure of a run: who, where, why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureOrigin {
    /// Rank of the originating thread block.
    pub rank: usize,
    /// Thread block id.
    pub tb: usize,
    /// Step it was executing.
    pub step: usize,
    /// Why it failed.
    pub cause: FailureCause,
}

/// A shared flag workers poll inside blocking waits, plus the recorded
/// origin of the first failure.
#[derive(Debug, Default)]
pub(crate) struct CancelToken {
    cancelled: AtomicBool,
    origin: Mutex<Option<(FailureOrigin, Instant)>>,
}

impl CancelToken {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Whether some worker has already failed.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Records `origin` (with the cancellation instant) and trips the
    /// flag. Only the first caller's origin is kept; returns whether this
    /// call was the first.
    pub(crate) fn cancel(&self, origin: FailureOrigin) -> bool {
        let mut guard = self.origin.lock().unwrap_or_else(PoisonError::into_inner);
        let first = guard.is_none();
        if first {
            *guard = Some((origin, Instant::now()));
        }
        drop(guard);
        // Release-store after the origin write so a worker that observes
        // the flag can rely on the origin being present.
        self.cancelled.store(true, Ordering::Release);
        first
    }

    /// The recorded origin, if any worker failed.
    pub(crate) fn origin(&self) -> Option<FailureOrigin> {
        self.origin
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|(o, _)| o.clone())
    }

    /// When the first failure tripped the token, if any — the start of
    /// the cancellation drain the executor measures workers against.
    pub(crate) fn cancelled_at(&self) -> Option<Instant> {
        self.origin
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|&(_, at)| at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin(rank: usize) -> FailureOrigin {
        FailureOrigin {
            rank,
            tb: 0,
            step: 1,
            cause: FailureCause::StepTimeout,
        }
    }

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.origin().is_none());
        assert!(t.cancel(origin(3)));
        assert!(!t.cancel(origin(7)));
        assert!(t.is_cancelled());
        assert_eq!(t.origin().unwrap().rank, 3);
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let t = CancelToken::new();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            while !t2.is_cancelled() {
                std::thread::yield_now();
            }
            t2.origin().unwrap().rank
        });
        std::thread::sleep(Duration::from_millis(10));
        t.cancel(origin(5));
        assert_eq!(h.join().unwrap(), 5);
    }
}
