//! Per-rank buffer storage with in-place alias resolution.
//!
//! Besides the whole-value [`read`](RankMemory::read)/
//! [`write`](RankMemory::write) pair, the hot path uses slice-based
//! in-place operations ([`read_into`](RankMemory::read_into),
//! [`copy_between`](RankMemory::copy_between),
//! [`reduce_between`](RankMemory::reduce_between),
//! [`reduce_merge`](RankMemory::reduce_merge),
//! [`combine_read`](RankMemory::combine_read)) that move data directly
//! between spaces or between a space and a pooled tile, with no
//! intermediate allocation.
//!
//! **Lock order.** Operations touching two spaces of the same rank always
//! acquire the space locks in the fixed order `Data < Output < Scratch`
//! (declaration order of [`Space`]), regardless of which side is source
//! or destination — so concurrent two-space operations on one rank can
//! never deadlock.

use std::sync::{PoisonError, RwLock, RwLockWriteGuard};

use mscclang::{BufferKind, Collective, ReduceOp, Space};

use crate::kernels;

/// Position of a space in the fixed lock order.
fn lock_rank(space: Space) -> usize {
    match space {
        Space::Data => 0,
        Space::Output => 1,
        Space::Scratch => 2,
    }
}

/// The three storage spaces of one rank, in elements.
///
/// Chunk indices from MSCCL-IR resolve through the collective's alias map
/// (in-place input/output share the `Data` space) into element ranges of
/// these vectors.
pub struct RankMemory {
    rank: usize,
    chunk_elems: usize,
    data: RwLock<Vec<f32>>,
    output: RwLock<Vec<f32>>,
    scratch: RwLock<Vec<f32>>,
}

/// The backing storage of one rank's three spaces, detached from the
/// lock wrappers so a caller (see `ExecArena` in the executor) can
/// recycle the allocations — and their already-faulted-in pages — across
/// runs instead of paying fresh page faults every execution.
#[derive(Default)]
pub struct SpaceBuffers {
    data: Vec<f32>,
    output: Vec<f32>,
    scratch: Vec<f32>,
}

impl SpaceBuffers {
    /// Whether all three buffers are unallocated — i.e. there is nothing
    /// to recycle and construction will take the fresh zeroed path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.output.is_empty() && self.scratch.is_empty()
    }
}

impl RankMemory {
    /// Allocates the buffers for `rank` given the collective's layout and
    /// the rank's scratch size in chunks.
    #[must_use]
    pub fn new(
        collective: &Collective,
        rank: usize,
        scratch_chunks: usize,
        chunk_elems: usize,
    ) -> Self {
        Self::recycled(
            collective,
            rank,
            scratch_chunks,
            chunk_elems,
            SpaceBuffers::default(),
        )
    }

    /// Like [`new`](RankMemory::new) but reusing `spare`'s allocations.
    ///
    /// Observable state is identical to a fresh construction *provided
    /// the caller loads every input chunk before execution starts* (as
    /// the executor does): chunk slots that are not the image of an
    /// input chunk are zeroed here, and input-covered slots keep their
    /// stale contents only because the input load overwrites them.
    #[must_use]
    pub fn recycled(
        collective: &Collective,
        rank: usize,
        scratch_chunks: usize,
        chunk_elems: usize,
        spare: SpaceBuffers,
    ) -> Self {
        Self::recycled_skipping(
            collective,
            rank,
            scratch_chunks,
            chunk_elems,
            spare,
            |_, _| false,
        )
    }

    /// Like [`recycled`](RankMemory::recycled), additionally skipping the
    /// re-zero of every chunk slot for which `overwritten(space, chunk)`
    /// holds. The caller vouches that the program fully overwrites such a
    /// chunk before ever reading it (see the executor's per-rank
    /// instruction scan), so its stale recycled contents are unobservable
    /// — the same argument that lets input-covered slots skip the zero.
    /// Only the recycled path consults the predicate; fresh allocations
    /// are zero by construction.
    #[must_use]
    pub fn recycled_skipping(
        collective: &Collective,
        rank: usize,
        scratch_chunks: usize,
        chunk_elems: usize,
        spare: SpaceBuffers,
        overwritten: impl Fn(Space, usize) -> bool,
    ) -> Self {
        let data_chunks = collective.space_size(Space::Data).unwrap_or(0);
        let output_chunks = collective.space_size(Space::Output).unwrap_or(0);
        // Which chunk slots the input load will overwrite.
        let mut covered_data = vec![false; data_chunks];
        let mut covered_output = vec![false; output_chunks];
        for i in 0..collective.in_chunks() {
            let (space, off) = collective.space_of(rank, BufferKind::Input, i);
            match space {
                Space::Data => covered_data[off] = true,
                Space::Output => covered_output[off] = true,
                Space::Scratch => {}
            }
        }
        let prep = |mut buf: Vec<f32>, chunks: usize, covered: &[bool], space: Space| -> Vec<f32> {
            let elems = chunks * chunk_elems;
            if buf.is_empty() {
                // Fresh path: a zeroed allocation maps pages lazily.
                return vec![0.0; elems];
            }
            buf.resize(elems, 0.0);
            for c in 0..chunks {
                let cov = covered.get(c).copied().unwrap_or(false);
                if !cov && !overwritten(space, c) {
                    buf[c * chunk_elems..(c + 1) * chunk_elems].fill(0.0);
                }
            }
            buf
        };
        Self {
            rank,
            chunk_elems,
            data: RwLock::new(prep(spare.data, data_chunks, &covered_data, Space::Data)),
            output: RwLock::new(prep(
                spare.output,
                output_chunks,
                &covered_output,
                Space::Output,
            )),
            scratch: RwLock::new(prep(spare.scratch, scratch_chunks, &[], Space::Scratch)),
        }
    }

    /// Detaches the backing storage for recycling via
    /// [`recycled`](RankMemory::recycled).
    #[must_use]
    pub fn into_buffers(self) -> SpaceBuffers {
        let take = |l: RwLock<Vec<f32>>| l.into_inner().unwrap_or_else(PoisonError::into_inner);
        SpaceBuffers {
            data: take(self.data),
            output: take(self.output),
            scratch: take(self.scratch),
        }
    }

    /// The rank these buffers belong to.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Copies all three spaces into `snap`, growing its buffers on first
    /// use and reusing their capacity afterwards — the epoch checkpoint
    /// path, which must not allocate in the steady state. The caller is
    /// responsible for quiescence (no concurrent writers it cares about);
    /// each space is internally consistent under its lock.
    pub fn snapshot_into(&self, snap: &mut SpaceBuffers) {
        let copy = |lock: &RwLock<Vec<f32>>, dst: &mut Vec<f32>| {
            let guard = lock.read().unwrap_or_else(PoisonError::into_inner);
            dst.clear();
            dst.extend_from_slice(&guard);
        };
        copy(&self.data, &mut snap.data);
        copy(&self.output, &mut snap.output);
        copy(&self.scratch, &mut snap.scratch);
    }

    /// Overwrites all three spaces from `snap` — the epoch resume path.
    ///
    /// # Panics
    ///
    /// Panics if `snap` was taken from a differently-shaped memory.
    pub fn restore_from(&self, snap: &SpaceBuffers) {
        let paste = |lock: &RwLock<Vec<f32>>, src: &[f32]| {
            let mut guard = lock.write().unwrap_or_else(PoisonError::into_inner);
            assert_eq!(guard.len(), src.len(), "snapshot shape mismatch");
            guard.copy_from_slice(src);
        };
        paste(&self.data, &snap.data);
        paste(&self.output, &snap.output);
        paste(&self.scratch, &snap.scratch);
    }

    /// Swaps the backing storage of `space` for `replacement`, returning
    /// the old buffer. The executor's output-extraction path uses this to
    /// *steal* a space whose chunks map identity-style onto the output
    /// buffer — the backing vector already is the result, so handing a
    /// recycled vector in (its length is irrelevant; the next
    /// [`recycled`](RankMemory::recycled) resizes and re-zeroes) replaces
    /// an `out_chunks × chunk_elems` copy with a pointer swap. Only valid
    /// once execution is over: the swapped-in buffer has arbitrary
    /// contents.
    #[must_use]
    pub fn swap_space_buffer(&self, space: Space, replacement: Vec<f32>) -> Vec<f32> {
        let mut guard = self
            .space(space)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *guard, replacement)
    }

    fn space(&self, space: Space) -> &RwLock<Vec<f32>> {
        match space {
            Space::Data => &self.data,
            Space::Output => &self.output,
            Space::Scratch => &self.scratch,
        }
    }

    /// Reads the element range `[elem_off, elem_off + len)` of chunk
    /// `index` in `buffer` into a vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn read(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        len: usize,
    ) -> Vec<f32> {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        let start = off * self.chunk_elems + elem_off;
        let guard = self
            .space(space)
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        guard[start..start + len].to_vec()
    }

    /// Writes `values` at the element range starting at `elem_off` of
    /// chunk `index` in `buffer`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        values: &[f32],
    ) {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        let start = off * self.chunk_elems + elem_off;
        let mut guard = self
            .space(space)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        guard[start..start + values.len()].copy_from_slice(values);
    }

    /// Copies the element range `[elem_off, elem_off + dst.len())` of
    /// chunk `index` in `buffer` into `dst` — the allocation-free
    /// counterpart of [`read`](RankMemory::read).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_into(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        dst: &mut [f32],
    ) {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        let start = off * self.chunk_elems + elem_off;
        let guard = self
            .space(space)
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        dst.copy_from_slice(&guard[start..start + dst.len()]);
    }

    /// Resolves a chunk location to its space and element start offset.
    fn resolve(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
    ) -> (Space, usize) {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        (space, off * self.chunk_elems + elem_off)
    }

    /// Runs `f` over the source and destination ranges of a two-location
    /// operation, locking at most two space locks in the fixed
    /// `Data < Output < Scratch` order. Same-space overlapping ranges
    /// (legal only for copies, which use `copy_within` semantics) are
    /// handled by the `same_space` callback on one write guard.
    fn with_src_dst(
        &self,
        src: (Space, usize),
        dst: (Space, usize),
        len: usize,
        same_space: impl FnOnce(&mut [f32], usize, usize),
        two_spaces: impl FnOnce(&[f32], &mut [f32]),
    ) {
        let (s_space, s_start) = src;
        let (d_space, d_start) = dst;
        if s_space == d_space {
            let mut guard = self
                .space(d_space)
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            same_space(&mut guard, s_start, d_start);
            return;
        }
        // Two distinct spaces: acquire in lock order, then hand the
        // callback `(src read, dst write)` slices.
        let lock = |space: Space| self.space(space);
        let (first, second) = (lock(s_space), lock(d_space));
        let src_first = lock_rank(s_space) < lock_rank(d_space);
        let (sg, mut dg): (_, RwLockWriteGuard<'_, Vec<f32>>) = if src_first {
            let sg = first.read().unwrap_or_else(PoisonError::into_inner);
            let dg = second.write().unwrap_or_else(PoisonError::into_inner);
            (sg, dg)
        } else {
            // Destination ranks lower: take its write lock first.
            let dg = second.write().unwrap_or_else(PoisonError::into_inner);
            let sg = first.read().unwrap_or_else(PoisonError::into_inner);
            (sg, dg)
        };
        two_spaces(&sg[s_start..s_start + len], &mut dg[d_start..d_start + len]);
    }

    /// Copies `len` elements from one chunk location to another without
    /// materializing a temporary, locking both spaces in the fixed order.
    /// Same-space overlap behaves like `memmove`.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn copy_between(
        &self,
        collective: &Collective,
        src: (BufferKind, usize),
        dst: (BufferKind, usize),
        elem_off: usize,
        len: usize,
    ) {
        let s = self.resolve(collective, src.0, src.1, elem_off);
        let d = self.resolve(collective, dst.0, dst.1, elem_off);
        self.with_src_dst(
            s,
            d,
            len,
            |buf, s_start, d_start| {
                if s_start != d_start {
                    buf.copy_within(s_start..s_start + len, d_start);
                }
            },
            |src, dst| dst.copy_from_slice(src),
        );
    }

    /// Reduces `len` elements of the source location into the destination
    /// location in place: `dst[i] = op(dst[i], src[i])`. Locks both
    /// spaces in the fixed order; same-space disjoint ranges split the
    /// buffer, and the (never compiler-emitted) overlapping case falls
    /// back to one temporary copy of the source.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn reduce_between(
        &self,
        collective: &Collective,
        src: (BufferKind, usize),
        dst: (BufferKind, usize),
        elem_off: usize,
        len: usize,
        op: ReduceOp,
    ) {
        let s = self.resolve(collective, src.0, src.1, elem_off);
        let d = self.resolve(collective, dst.0, dst.1, elem_off);
        self.with_src_dst(
            s,
            d,
            len,
            |buf, s_start, d_start| {
                if d_start + len <= s_start || s_start + len <= d_start {
                    // Disjoint: split at the later range's start.
                    let (lo, hi, dst_is_hi) = if s_start < d_start {
                        (s_start, d_start, true)
                    } else {
                        (d_start, s_start, false)
                    };
                    let (head, tail) = buf.split_at_mut(hi);
                    if dst_is_hi {
                        kernels::reduce_into_slice(op, &mut tail[..len], &head[lo..lo + len]);
                    } else {
                        kernels::reduce_into_slice(op, &mut head[lo..lo + len], &tail[..len]);
                    }
                } else {
                    // Overlapping self-reduction: rare and never emitted by
                    // the compiler; correctness over speed.
                    let tmp = buf[s_start..s_start + len].to_vec();
                    kernels::reduce_into_slice(op, &mut buf[d_start..d_start + len], &tmp);
                }
            },
            |src, dst| kernels::reduce_into_slice(op, dst, src),
        );
    }

    /// Merges a received tile into memory and leaves the merged values in
    /// both places: `mem[i] = op(mem[i], tile[i]); tile[i] = mem[i]`.
    /// This is the in-place form of [`combine`](RankMemory::combine) used
    /// by `rrc`/`rrcs`, reusing the tile for any follow-on send.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn reduce_merge(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        tile: &mut [f32],
        op: ReduceOp,
    ) {
        let (space, start) = self.resolve(collective, buffer, index, elem_off);
        let mut guard = self
            .space(space)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let mem = &mut guard[start..start + tile.len()];
        kernels::reduce_into_slice(op, mem, tile);
        tile.copy_from_slice(mem);
    }

    /// Folds local memory into a received tile without writing memory:
    /// `tile[i] = op(mem[i], tile[i])` — the `rrs` merge, which forwards
    /// the combined value but keeps the local buffer untouched.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn combine_read(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        tile: &mut [f32],
        op: ReduceOp,
    ) {
        let (space, start) = self.resolve(collective, buffer, index, elem_off);
        let guard = self
            .space(space)
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        kernels::reduce_from_slice(op, tile, &guard[start..start + tile.len()]);
    }

    /// Applies `f` element-wise onto the range, writing the result back
    /// and returning it (used for in-place reductions).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `other` is shorter than the
    /// range.
    pub fn combine(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        other: &[f32],
        f: impl Fn(f32, f32) -> f32,
    ) -> Vec<f32> {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        let start = off * self.chunk_elems + elem_off;
        let mut guard = self
            .space(space)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let slice = &mut guard[start..start + other.len()];
        for (a, &b) in slice.iter_mut().zip(other) {
            *a = f(*a, b);
        }
        slice.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let coll = Collective::all_gather(2, 2, false);
        let mem = RankMemory::new(&coll, 0, 3, 4);
        mem.write(&coll, BufferKind::Scratch, 2, 1, &[1.0, 2.0]);
        assert_eq!(
            mem.read(&coll, BufferKind::Scratch, 2, 1, 2),
            vec![1.0, 2.0]
        );
        assert_eq!(mem.read(&coll, BufferKind::Scratch, 2, 0, 1), vec![0.0]);
    }

    #[test]
    fn inplace_aliasing_is_visible() {
        let coll = Collective::all_gather(2, 1, true);
        let mem = RankMemory::new(&coll, 1, 0, 2);
        // Rank 1's input chunk aliases output block 1.
        mem.write(&coll, BufferKind::Input, 0, 0, &[7.0, 8.0]);
        assert_eq!(mem.read(&coll, BufferKind::Output, 1, 0, 2), vec![7.0, 8.0]);
    }

    #[test]
    fn read_into_matches_read() {
        let coll = Collective::all_gather(2, 2, false);
        let mem = RankMemory::new(&coll, 0, 3, 4);
        mem.write(&coll, BufferKind::Scratch, 2, 1, &[1.0, 2.0]);
        let mut out = [0.0; 2];
        mem.read_into(&coll, BufferKind::Scratch, 2, 1, &mut out);
        assert_eq!(out, [1.0, 2.0]);
        assert_eq!(out.to_vec(), mem.read(&coll, BufferKind::Scratch, 2, 1, 2));
    }

    #[test]
    fn copy_between_spaces_moves_data() {
        let coll = Collective::all_gather(2, 1, false);
        let mem = RankMemory::new(&coll, 0, 2, 4);
        mem.write(&coll, BufferKind::Input, 0, 0, &[1.0, 2.0, 3.0, 4.0]);
        // Input lives in Data space for a non-inplace allgather; scratch
        // is its own space: a genuine two-lock copy.
        mem.copy_between(
            &coll,
            (BufferKind::Input, 0),
            (BufferKind::Scratch, 1),
            0,
            4,
        );
        assert_eq!(
            mem.read(&coll, BufferKind::Scratch, 1, 0, 4),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn copy_between_same_space_handles_chunks() {
        let coll = Collective::all_gather(2, 1, false);
        let mem = RankMemory::new(&coll, 1, 0, 2);
        mem.write(&coll, BufferKind::Output, 0, 0, &[5.0, 6.0]);
        mem.copy_between(
            &coll,
            (BufferKind::Output, 0),
            (BufferKind::Output, 1),
            0,
            2,
        );
        assert_eq!(mem.read(&coll, BufferKind::Output, 1, 0, 2), vec![5.0, 6.0]);
        // Self-copy is a no-op, not a panic.
        mem.copy_between(
            &coll,
            (BufferKind::Output, 0),
            (BufferKind::Output, 0),
            0,
            2,
        );
        assert_eq!(mem.read(&coll, BufferKind::Output, 0, 0, 2), vec![5.0, 6.0]);
    }

    #[test]
    fn reduce_between_matches_scalar_combine() {
        let coll = Collective::all_gather(2, 2, false);
        let mem = RankMemory::new(&coll, 0, 2, 2);
        mem.write(&coll, BufferKind::Scratch, 0, 0, &[1.0, 2.0]);
        mem.write(&coll, BufferKind::Scratch, 1, 0, &[10.0, 20.0]);
        // Same space (scratch), disjoint chunks, both split directions.
        mem.reduce_between(
            &coll,
            (BufferKind::Scratch, 0),
            (BufferKind::Scratch, 1),
            0,
            2,
            ReduceOp::Sum,
        );
        assert_eq!(
            mem.read(&coll, BufferKind::Scratch, 1, 0, 2),
            vec![11.0, 22.0]
        );
        mem.reduce_between(
            &coll,
            (BufferKind::Scratch, 1),
            (BufferKind::Scratch, 0),
            0,
            2,
            ReduceOp::Max,
        );
        assert_eq!(
            mem.read(&coll, BufferKind::Scratch, 0, 0, 2),
            vec![11.0, 22.0]
        );
    }

    #[test]
    fn reduce_merge_updates_memory_and_tile() {
        let coll = Collective::all_reduce(2, 1, true);
        let mem = RankMemory::new(&coll, 0, 0, 2);
        mem.write(&coll, BufferKind::Input, 0, 0, &[1.0, 2.0]);
        let mut tile = [10.0, 20.0];
        mem.reduce_merge(&coll, BufferKind::Input, 0, 0, &mut tile, ReduceOp::Sum);
        assert_eq!(tile, [11.0, 22.0]);
        assert_eq!(
            mem.read(&coll, BufferKind::Input, 0, 0, 2),
            vec![11.0, 22.0]
        );
    }

    #[test]
    fn combine_read_folds_without_writing_memory() {
        let coll = Collective::all_reduce(2, 1, true);
        let mem = RankMemory::new(&coll, 0, 0, 2);
        mem.write(&coll, BufferKind::Input, 0, 0, &[1.0, 2.0]);
        let mut tile = [10.0, 20.0];
        mem.combine_read(&coll, BufferKind::Input, 0, 0, &mut tile, ReduceOp::Sum);
        assert_eq!(tile, [11.0, 22.0]);
        assert_eq!(mem.read(&coll, BufferKind::Input, 0, 0, 2), vec![1.0, 2.0]);
    }

    #[test]
    fn combine_applies_reduction() {
        let coll = Collective::all_reduce(2, 1, true);
        let mem = RankMemory::new(&coll, 0, 0, 2);
        mem.write(&coll, BufferKind::Input, 0, 0, &[1.0, 2.0]);
        let out = mem.combine(&coll, BufferKind::Input, 0, 0, &[10.0, 20.0], |a, b| a + b);
        assert_eq!(out, vec![11.0, 22.0]);
        assert_eq!(
            mem.read(&coll, BufferKind::Input, 0, 0, 2),
            vec![11.0, 22.0]
        );
    }
}
