//! Per-rank buffer storage with in-place alias resolution.

use std::sync::{PoisonError, RwLock};

use mscclang::{BufferKind, Collective, Space};

/// The three storage spaces of one rank, in elements.
///
/// Chunk indices from MSCCL-IR resolve through the collective's alias map
/// (in-place input/output share the `Data` space) into element ranges of
/// these vectors.
pub struct RankMemory {
    rank: usize,
    chunk_elems: usize,
    data: RwLock<Vec<f32>>,
    output: RwLock<Vec<f32>>,
    scratch: RwLock<Vec<f32>>,
}

impl RankMemory {
    /// Allocates the buffers for `rank` given the collective's layout and
    /// the rank's scratch size in chunks.
    #[must_use]
    pub fn new(
        collective: &Collective,
        rank: usize,
        scratch_chunks: usize,
        chunk_elems: usize,
    ) -> Self {
        let data = collective.space_size(Space::Data).unwrap_or(0) * chunk_elems;
        let output = collective.space_size(Space::Output).unwrap_or(0) * chunk_elems;
        let scratch = scratch_chunks * chunk_elems;
        Self {
            rank,
            chunk_elems,
            data: RwLock::new(vec![0.0; data]),
            output: RwLock::new(vec![0.0; output]),
            scratch: RwLock::new(vec![0.0; scratch]),
        }
    }

    /// The rank these buffers belong to.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn space(&self, space: Space) -> &RwLock<Vec<f32>> {
        match space {
            Space::Data => &self.data,
            Space::Output => &self.output,
            Space::Scratch => &self.scratch,
        }
    }

    /// Reads the element range `[elem_off, elem_off + len)` of chunk
    /// `index` in `buffer` into a vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn read(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        len: usize,
    ) -> Vec<f32> {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        let start = off * self.chunk_elems + elem_off;
        let guard = self
            .space(space)
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        guard[start..start + len].to_vec()
    }

    /// Writes `values` at the element range starting at `elem_off` of
    /// chunk `index` in `buffer`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        values: &[f32],
    ) {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        let start = off * self.chunk_elems + elem_off;
        let mut guard = self
            .space(space)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        guard[start..start + values.len()].copy_from_slice(values);
    }

    /// Applies `f` element-wise onto the range, writing the result back
    /// and returning it (used for in-place reductions).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `other` is shorter than the
    /// range.
    pub fn combine(
        &self,
        collective: &Collective,
        buffer: BufferKind,
        index: usize,
        elem_off: usize,
        other: &[f32],
        f: impl Fn(f32, f32) -> f32,
    ) -> Vec<f32> {
        let (space, off) = collective.space_of(self.rank, buffer, index);
        let start = off * self.chunk_elems + elem_off;
        let mut guard = self
            .space(space)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let slice = &mut guard[start..start + other.len()];
        for (a, &b) in slice.iter_mut().zip(other) {
            *a = f(*a, b);
        }
        slice.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let coll = Collective::all_gather(2, 2, false);
        let mem = RankMemory::new(&coll, 0, 3, 4);
        mem.write(&coll, BufferKind::Scratch, 2, 1, &[1.0, 2.0]);
        assert_eq!(
            mem.read(&coll, BufferKind::Scratch, 2, 1, 2),
            vec![1.0, 2.0]
        );
        assert_eq!(mem.read(&coll, BufferKind::Scratch, 2, 0, 1), vec![0.0]);
    }

    #[test]
    fn inplace_aliasing_is_visible() {
        let coll = Collective::all_gather(2, 1, true);
        let mem = RankMemory::new(&coll, 1, 0, 2);
        // Rank 1's input chunk aliases output block 1.
        mem.write(&coll, BufferKind::Input, 0, 0, &[7.0, 8.0]);
        assert_eq!(mem.read(&coll, BufferKind::Output, 1, 0, 2), vec![7.0, 8.0]);
    }

    #[test]
    fn combine_applies_reduction() {
        let coll = Collective::all_reduce(2, 1, true);
        let mem = RankMemory::new(&coll, 0, 0, 2);
        mem.write(&coll, BufferKind::Input, 0, 0, &[1.0, 2.0]);
        let out = mem.combine(&coll, BufferKind::Input, 0, 0, &[10.0, 20.0], |a, b| a + b);
        assert_eq!(out, vec![11.0, 22.0]);
        assert_eq!(
            mem.read(&coll, BufferKind::Input, 0, 0, 2),
            vec![11.0, 22.0]
        );
    }
}
