//! Crash/hang forensics: the always-on flight recorder, the wait-for
//! graph built at teardown, and the `msccl-blackbox-v1` post-mortem
//! artifact.
//!
//! Three layers, all of which exist because a mis-scheduled MSCCLang
//! program fails *silently* — a hang, not a crash — and the central
//! debugging question is "which thread block is stuck on what, and who
//! was supposed to signal it":
//!
//! 1. **Flight recorder** ([`FlightRecorder`]): per-worker fixed-capacity
//!    ring buffers of compact binary records (task dispatch, blocks with
//!    their wake keys, wakes, steals, parks, semaphore sets, FIFO depth
//!    changes, gate arrivals). The hot path is one relaxed `fetch_add`
//!    plus two relaxed stores into a preallocated ring — no locks, no
//!    allocation, no clock reads — in the spirit of the sharded metric
//!    counters. Always on; the throughput bench gates its overhead.
//! 2. **Wait-for graph** ([`WaitForGraph`]): at teardown of a failed run
//!    the executor freezes every task's blocked-on resource (semaphore
//!    target, FIFO connection, epoch gate, injected sleep) into a
//!    [`TaskStall`], resolves each resource to the task expected to
//!    signal it (from the IR's dependency/connection structure), and
//!    classifies the shape: a cycle is a deadlock, a wait on a finished
//!    or dead task is orphaned, a wait chain ending in a sleeping or
//!    still-running task is a straggler.
//! 3. **Black box** ([`Blackbox`]): the versioned JSON artifact a failed
//!    run can serialize ([`crate::RunOptions::blackbox_dir`]) and the
//!    `msccl doctor` command reads back: failure origin, diagnosis,
//!    wait-for graph, flight rings, scheduler counters and a metrics
//!    snapshot. Hand-rolled serialization both ways — no serde — with a
//!    byte-stable writer so dumps diff cleanly.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use msccl_trace::{ClockDomain, EventKind, Trace, TraceEvent};
use mscclang::OpCode;

/// How many recent ring entries each task keeps for failure diagnostics.
pub(crate) const RING_CAPACITY: usize = 8;

/// A phase of an instruction's life, recorded in the diagnostic ring.
#[derive(Clone, Copy)]
pub(crate) enum Moment {
    Started,
    WaitingDep { dep_tb: usize, target: u64 },
    BlockedRecv { src: usize, channel: usize },
    BlockedSend { dst: usize, channel: usize },
    Completed,
}

#[derive(Clone, Copy)]
struct RingEntry {
    tile: usize,
    step: usize,
    op: OpCode,
    moment: Moment,
}

/// Fixed-size ring of a task's recent activity. Always on: pushing is a
/// couple of word stores, and it is the cheapest evidence left when a
/// hand-written IR deadlocks or a worker panics.
pub(crate) struct EventRing {
    rank: usize,
    tb: usize,
    entries: [Option<RingEntry>; RING_CAPACITY],
    next: usize,
}

impl EventRing {
    pub(crate) fn new(rank: usize, tb: usize) -> Self {
        Self {
            rank,
            tb,
            entries: [None; RING_CAPACITY],
            next: 0,
        }
    }

    pub(crate) fn push(&mut self, tile: usize, step: usize, op: OpCode, moment: Moment) {
        self.entries[self.next % RING_CAPACITY] = Some(RingEntry {
            tile,
            step,
            op,
            moment,
        });
        self.next += 1;
    }

    /// The step of the most recent entry — the best available guess at
    /// where a worker was when it panicked.
    pub(crate) fn last_step(&self) -> usize {
        if self.next == 0 {
            return 0;
        }
        self.entries[(self.next - 1) % RING_CAPACITY].map_or(0, |e| e.step)
    }

    pub(crate) fn dump(&self) -> Vec<String> {
        let mut out = Vec::new();
        for i in self.next.saturating_sub(RING_CAPACITY)..self.next {
            let Some(e) = self.entries[i % RING_CAPACITY] else {
                continue;
            };
            let what = match e.moment {
                Moment::Started => "started".to_string(),
                Moment::WaitingDep { dep_tb, target } => {
                    format!("waiting on tb {dep_tb} (semaphore target {target})")
                }
                Moment::BlockedRecv { src, channel } => {
                    format!("blocked receiving from rank {src} on channel {channel}")
                }
                Moment::BlockedSend { dst, channel } => {
                    format!("blocked sending to rank {dst} on channel {channel} (FIFO full)")
                }
                Moment::Completed => "completed".to_string(),
            };
            out.push(format!(
                "rank {} tb {} tile {} step {} ({}): {what}",
                self.rank,
                self.tb,
                e.tile,
                e.step,
                e.op.mnemonic()
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Records each worker keeps in its flight ring. Small enough to be
/// cheap, large enough that the records around a failure — the only ones
/// that matter — survive until teardown.
pub(crate) const FLIGHT_CAPACITY: usize = 256;

/// Binary record kinds. The tag lives in the top byte of the first word.
const FK_RUN: u8 = 1;
const FK_BLOCK: u8 = 2;
const FK_WAKE: u8 = 3;
const FK_STEAL: u8 = 4;
const FK_PARK: u8 = 5;
const FK_SEM_SET: u8 = 6;
const FK_FIFO: u8 = 7;
const FK_GATE: u8 = 8;

/// Sentinel packed where a record has no rank/tb attribution
/// (worker-level events: wakes, steals, parks).
const NO_ID: u64 = 0xFFF;

/// Wake-key tags for the compact `a` payload of block/wake records.
const KEY_SEM: u64 = 0;
const KEY_RECV: u64 = 1;
const KEY_SEND: u64 = 2;
const KEY_GATE: u64 = 3;
const KEY_SLEEP: u64 = 4;

/// Packs a wake key as `tag << 28 | index` for a flight record payload.
pub(crate) fn encode_key(tag: u64, idx: usize) -> u64 {
    (tag << 28) | (idx as u64 & 0x0FFF_FFFF)
}

pub(crate) const KEY_TAG_SEM: u64 = KEY_SEM;
pub(crate) const KEY_TAG_RECV: u64 = KEY_RECV;
pub(crate) const KEY_TAG_SEND: u64 = KEY_SEND;
pub(crate) const KEY_TAG_GATE: u64 = KEY_GATE;
pub(crate) const KEY_TAG_SLEEP: u64 = KEY_SLEEP;

/// One worker's ring: a monotone head plus `2 * FLIGHT_CAPACITY` words.
/// Single writer (the owning worker); readers only look after the pool
/// joins, so relaxed ordering everywhere is sound.
struct FlightShard {
    head: AtomicUsize,
    words: Box<[AtomicU64]>,
}

impl FlightShard {
    fn new() -> Self {
        Self {
            head: AtomicUsize::new(0),
            words: (0..2 * FLIGHT_CAPACITY)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    #[inline]
    fn record(&self, w0: u64, w1: u64) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % FLIGHT_CAPACITY;
        self.words[2 * slot].store(w0, Ordering::Relaxed);
        self.words[2 * slot + 1].store(w1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
    }
}

/// The always-on black-box recorder: one [`FlightShard`] per worker.
/// Zero steady-state allocation — the rings are preallocated at
/// construction and reusable across runs via [`reset`](Self::reset).
pub(crate) struct FlightRecorder {
    shards: Vec<FlightShard>,
}

#[inline]
fn pack_w0(kind: u8, rank: u64, tb: u64, a: u64) -> u64 {
    (u64::from(kind) << 56) | ((rank & 0xFFF) << 44) | ((tb & 0xFFF) << 32) | (a & 0xFFFF_FFFF)
}

impl FlightRecorder {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            shards: (0..workers.max(1)).map(|_| FlightShard::new()).collect(),
        }
    }

    pub(crate) fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Zeroes every shard head so a warm arena can reuse the rings.
    pub(crate) fn reset(&self) {
        for s in &self.shards {
            s.reset();
        }
    }

    /// Worker `w` dispatched task `flat` (a run begins) having already
    /// completed `completed` instruction instances.
    #[inline]
    pub(crate) fn run(&self, w: usize, rank: usize, tb: usize, flat: usize, completed: u64) {
        self.shards[w].record(
            pack_w0(FK_RUN, rank as u64, tb as u64, flat as u64),
            completed,
        );
    }

    /// Task blocked on an encoded wake key at (tile, step).
    #[inline]
    pub(crate) fn block(
        &self,
        w: usize,
        rank: usize,
        tb: usize,
        key: u64,
        tile: usize,
        step: usize,
    ) {
        self.shards[w].record(
            pack_w0(FK_BLOCK, rank as u64, tb as u64, key),
            ((tile as u64) << 16) | (step as u64 & 0xFFFF),
        );
    }

    /// A wake on an encoded key made `woken` tasks runnable.
    #[inline]
    pub(crate) fn wake(&self, w: usize, key: u64, woken: usize) {
        self.shards[w].record(pack_w0(FK_WAKE, NO_ID, NO_ID, key), woken as u64);
    }

    /// Worker `w` stole `task` from `victim`'s deque.
    #[inline]
    pub(crate) fn steal(&self, w: usize, victim: usize, task: usize) {
        self.shards[w].record(pack_w0(FK_STEAL, NO_ID, NO_ID, victim as u64), task as u64);
    }

    /// Worker `w` parked for `waited_us` microseconds.
    #[inline]
    pub(crate) fn park(&self, w: usize, waited_us: u64) {
        self.shards[w].record(
            pack_w0(FK_PARK, NO_ID, NO_ID, waited_us.min(u64::from(u32::MAX))),
            0,
        );
    }

    /// Task `flat` advanced its own semaphore to `value`.
    #[inline]
    pub(crate) fn sem_set(&self, w: usize, rank: usize, tb: usize, flat: usize, value: u64) {
        self.shards[w].record(
            pack_w0(FK_SEM_SET, rank as u64, tb as u64, flat as u64),
            value,
        );
    }

    /// Connection `conn`'s FIFO occupancy changed to `depth`.
    #[inline]
    pub(crate) fn fifo_depth(&self, w: usize, rank: usize, tb: usize, conn: usize, depth: usize) {
        self.shards[w].record(
            pack_w0(FK_FIFO, rank as u64, tb as u64, conn as u64),
            depth as u64,
        );
    }

    /// Task arrived at epoch gate `boundary`.
    #[inline]
    pub(crate) fn gate(&self, w: usize, rank: usize, tb: usize, boundary: usize) {
        self.shards[w].record(pack_w0(FK_GATE, rank as u64, tb as u64, boundary as u64), 0);
    }

    /// Decodes every shard's surviving records, oldest first per worker.
    pub(crate) fn drain(&self) -> Vec<FlightRecord> {
        let mut out = Vec::new();
        for (w, shard) in self.shards.iter().enumerate() {
            let head = shard.head.load(Ordering::Relaxed);
            let start = head.saturating_sub(FLIGHT_CAPACITY);
            for seq in start..head {
                let slot = seq % FLIGHT_CAPACITY;
                let w0 = shard.words[2 * slot].load(Ordering::Relaxed);
                let w1 = shard.words[2 * slot + 1].load(Ordering::Relaxed);
                let kind = (w0 >> 56) as u8;
                if kind == 0 {
                    continue;
                }
                let rank = (w0 >> 44) & 0xFFF;
                let tb = (w0 >> 32) & 0xFFF;
                out.push(FlightRecord {
                    worker: w,
                    seq: seq as u64,
                    kind,
                    rank: (rank != NO_ID).then_some(rank as usize),
                    tb: (tb != NO_ID).then_some(tb as usize),
                    a: w0 & 0xFFFF_FFFF,
                    b: w1,
                });
            }
        }
        out
    }
}

/// One decoded flight record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Worker whose ring held the record.
    pub worker: usize,
    /// Absolute (monotone) index within that worker's ring.
    pub seq: u64,
    /// Record tag (see [`FlightRecord::kind_name`]).
    pub kind: u8,
    /// Attributed rank, when the record belongs to a task.
    pub rank: Option<usize>,
    /// Attributed thread block, when the record belongs to a task.
    pub tb: Option<usize>,
    /// First payload word (wake key, task index, worker index...).
    pub a: u64,
    /// Second payload word (counter value, depth, tile/step pack...).
    pub b: u64,
}

fn key_name(key: u64) -> String {
    let idx = key & 0x0FFF_FFFF;
    match key >> 28 {
        KEY_SEM => format!("sem({idx})"),
        KEY_RECV => format!("recv({idx})"),
        KEY_SEND => format!("send({idx})"),
        KEY_GATE => format!("gate({idx})"),
        KEY_SLEEP => format!("sleep({idx})"),
        other => format!("key{other}({idx})"),
    }
}

impl FlightRecord {
    /// Stable lowercase tag name (serialized into the black box).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            FK_RUN => "run",
            FK_BLOCK => "block",
            FK_WAKE => "wake",
            FK_STEAL => "steal",
            FK_PARK => "park",
            FK_SEM_SET => "sem_set",
            FK_FIFO => "fifo_depth",
            FK_GATE => "gate",
            _ => "unknown",
        }
    }

    fn kind_from_name(name: &str) -> u8 {
        match name {
            "run" => FK_RUN,
            "block" => FK_BLOCK,
            "wake" => FK_WAKE,
            "steal" => FK_STEAL,
            "park" => FK_PARK,
            "sem_set" => FK_SEM_SET,
            "fifo_depth" => FK_FIFO,
            "gate" => FK_GATE,
            _ => 0,
        }
    }

    /// Human rendering for `msccl doctor` output.
    #[must_use]
    pub fn describe(&self) -> String {
        let who = match (self.rank, self.tb) {
            (Some(r), Some(t)) => format!("r{r} tb{t}"),
            _ => format!("worker {}", self.worker),
        };
        match self.kind {
            FK_RUN => format!("{who}: dispatched (task {} completed {})", self.a, self.b),
            FK_BLOCK => format!(
                "{who}: blocked on {} at tile {} step {}",
                key_name(self.a),
                self.b >> 16,
                self.b & 0xFFFF
            ),
            FK_WAKE => format!("{who}: wake {} -> {} task(s)", key_name(self.a), self.b),
            FK_STEAL => format!("{who}: stole task {} from worker {}", self.b, self.a),
            FK_PARK => format!("{who}: parked {}us", self.a),
            FK_SEM_SET => format!("{who}: semaphore -> {}", self.b),
            FK_FIFO => format!("{who}: fifo conn {} depth -> {}", self.a, self.b),
            FK_GATE => format!("{who}: arrived at epoch gate {}", self.a),
            _ => format!("{who}: ? a={} b={}", self.a, self.b),
        }
    }
}

// ---------------------------------------------------------------------------
// Wait-for graph and stall diagnosis
// ---------------------------------------------------------------------------

/// What a frozen task was blocked on when the run was torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockedOn {
    /// Waiting on a dependency semaphore owned by `dep_tb` (same rank).
    Sem {
        /// Thread block whose semaphore is awaited.
        dep_tb: usize,
        /// Awaited monotone counter value.
        target: u64,
        /// The counter's value at teardown.
        current: u64,
    },
    /// Waiting for a tile from `src` on `channel` (FIFO empty).
    Recv {
        /// Source rank.
        src: usize,
        /// Channel id.
        channel: usize,
    },
    /// Waiting for a free FIFO slot toward `dst` on `channel`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Channel id.
        channel: usize,
    },
    /// Waiting at an epoch-boundary gate.
    Gate {
        /// Boundary index.
        boundary: usize,
    },
    /// Sleeping: an injected stall/straggle pause or a delivery delay.
    Sleep,
}

impl BlockedOn {
    /// Short resource description ("what is it stuck on").
    #[must_use]
    pub fn resource(&self) -> String {
        match self {
            BlockedOn::Sem {
                dep_tb,
                target,
                current,
            } => format!("semaphore of tb {dep_tb} (target {target}, at {current})"),
            BlockedOn::Recv { src, channel } => {
                format!("recv from rank {src} channel {channel} (FIFO empty)")
            }
            BlockedOn::Send { dst, channel } => {
                format!("send to rank {dst} channel {channel} (FIFO full)")
            }
            BlockedOn::Gate { boundary } => format!("epoch gate {boundary}"),
            BlockedOn::Sleep => "timed sleep (injected stall/straggle/delay)".to_string(),
        }
    }
}

/// One task's frozen state in the wait-for graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskStall {
    /// Rank of the thread block.
    pub rank: usize,
    /// Thread block id within the rank.
    pub tb: usize,
    /// Tile iteration the task was in.
    pub tile: usize,
    /// Step it was executing or blocked at.
    pub step: usize,
    /// Whether the task had finished all its work.
    pub done: bool,
    /// Whether the task died (injected kill, panic, or its own timeout).
    pub dead: bool,
    /// Instruction instances completed.
    pub completed: u64,
    /// What the task was blocked on, if anything.
    pub wait: Option<BlockedOn>,
    /// (dst rank, channel) of the task's send connection, if any.
    pub send_peer: Option<(usize, usize)>,
    /// (src rank, channel) of the task's receive connection, if any.
    pub recv_peer: Option<(usize, usize)>,
    /// The task's recent-activity ring, rendered (oldest first).
    pub recent: Vec<String>,
}

/// One edge of the wait-for graph: task `from` waits on `resource`,
/// expected to be signalled by task `to` (when resolvable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// Waiting task (index into [`WaitForGraph::tasks`]).
    pub from: usize,
    /// Rendered resource description.
    pub resource: String,
    /// Expected signaller (index into [`WaitForGraph::tasks`]), when the
    /// IR structure names one.
    pub to: Option<usize>,
}

/// The typed wait-for graph snapshot taken when a run fails.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaitForGraph {
    /// Every task's frozen state, in flat spawn order.
    pub tasks: Vec<TaskStall>,
    /// One edge per blocked task.
    pub edges: Vec<WaitEdge>,
}

/// Shape of the stall, from following the wait chain out of the failure
/// origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The wait chain revisits a task: a true dependency cycle.
    DeadlockCycle,
    /// The chain ends at a task that is finished or dead and will never
    /// signal again: the wait can never be satisfied.
    OrphanedWait,
    /// The chain ends at a task that is sleeping or still runnable: slow,
    /// not stuck.
    Straggler,
    /// The failure origin itself died (injected kill, panic, or own
    /// timeout) without waiting on anyone.
    SelfFault,
    /// The chain could not be followed (no structural signaller).
    Unknown,
}

impl StallKind {
    /// Stable lowercase name (serialized into the black box).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallKind::DeadlockCycle => "deadlock_cycle",
            StallKind::OrphanedWait => "orphaned_wait",
            StallKind::Straggler => "straggler",
            StallKind::SelfFault => "self_fault",
            StallKind::Unknown => "unknown",
        }
    }

    fn from_label(label: &str) -> Self {
        match label {
            "deadlock_cycle" => StallKind::DeadlockCycle,
            "orphaned_wait" => StallKind::OrphanedWait,
            "straggler" => StallKind::Straggler,
            "self_fault" => StallKind::SelfFault,
            _ => StallKind::Unknown,
        }
    }
}

/// The structured diagnosis attached to every teardown failure
/// ([`crate::RuntimeError`]) and serialized into the black box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnosis {
    /// Classified shape of the stall.
    pub kind: StallKind,
    /// (rank, tb, step) of the failure origin — who tripped the cancel
    /// token.
    pub origin: (usize, usize, usize),
    /// (rank, tb, step) of the diagnosed root cause — where the wait
    /// chain ends (or closes into a cycle).
    pub root: (usize, usize, usize),
    /// What the root-cause task was doing.
    pub root_what: String,
    /// The wait chain from origin to root, one rendered hop per line.
    pub chain: Vec<String>,
    /// The full wait-for graph snapshot.
    pub graph: WaitForGraph,
    /// Injected faults that struck during the run, in plan syntax.
    pub fired_faults: Vec<String>,
    /// Path of the black-box dump written for this failure, if any.
    pub dump: Option<PathBuf>,
}

fn describe_task(t: &TaskStall) -> String {
    if t.dead {
        return "died here (injected kill, panic, or own timeout)".to_string();
    }
    match &t.wait {
        Some(w) => format!("blocked on {}", w.resource()),
        None if t.done => "already finished".to_string(),
        None => "still runnable (straggling, not blocked)".to_string(),
    }
}

impl WaitForGraph {
    /// Builds the graph from frozen task snapshots: one edge per blocked
    /// task, its expected signaller resolved from the IR's structure
    /// (dependency semaphores point at the owning block; FIFO waits
    /// point at the connection's peer endpoint).
    #[must_use]
    pub fn build(tasks: Vec<TaskStall>) -> Self {
        let mut edges = Vec::new();
        for (i, t) in tasks.iter().enumerate() {
            let Some(wait) = &t.wait else { continue };
            let to = match wait {
                BlockedOn::Sem { dep_tb, .. } => tasks
                    .iter()
                    .position(|o| o.rank == t.rank && o.tb == *dep_tb),
                BlockedOn::Recv { src, channel } => tasks
                    .iter()
                    .position(|o| o.rank == *src && o.send_peer == Some((t.rank, *channel))),
                BlockedOn::Send { dst, channel } => tasks
                    .iter()
                    .position(|o| o.rank == *dst && o.recv_peer == Some((t.rank, *channel))),
                BlockedOn::Gate { .. } => tasks
                    .iter()
                    .position(|o| !o.done && !matches!(o.wait, Some(BlockedOn::Gate { .. }))),
                BlockedOn::Sleep => None,
            };
            edges.push(WaitEdge {
                from: i,
                resource: wait.resource(),
                to,
            });
        }
        Self { tasks, edges }
    }

    fn successor(&self, task: usize) -> Option<usize> {
        self.edges
            .iter()
            .find(|e| e.from == task)
            .and_then(|e| e.to)
    }

    /// Follows the wait chain out of `origin` (an index into
    /// [`tasks`](Self::tasks)) and classifies the stall.
    #[must_use]
    pub fn classify(&self, origin: usize, fired_faults: Vec<String>) -> StallDiagnosis {
        let ident = |i: usize| {
            let t = &self.tasks[i];
            (t.rank, t.tb, t.step)
        };
        let mut visited = vec![false; self.tasks.len()];
        let mut chain = Vec::new();
        let mut cur = origin;
        let (kind, root) = loop {
            if visited[cur] {
                chain.push(format!(
                    "rank {} tb {} step {}: wait chain closes the cycle",
                    self.tasks[cur].rank, self.tasks[cur].tb, self.tasks[cur].step
                ));
                break (StallKind::DeadlockCycle, cur);
            }
            visited[cur] = true;
            let t = &self.tasks[cur];
            // Cancellation kills every task, so `dead` alone is not a
            // terminal verdict: a dead task that froze a wait is still a
            // link in the chain. Only a task with nothing to wait on ends
            // the walk.
            match &t.wait {
                None => {
                    chain.push(format!(
                        "rank {} tb {} step {}: {}",
                        t.rank,
                        t.tb,
                        t.step,
                        describe_task(t)
                    ));
                    break (
                        if t.dead {
                            if cur == origin {
                                StallKind::SelfFault
                            } else {
                                StallKind::OrphanedWait
                            }
                        } else if t.done {
                            StallKind::OrphanedWait
                        } else {
                            StallKind::Straggler
                        },
                        cur,
                    );
                }
                Some(BlockedOn::Sleep) => {
                    chain.push(format!(
                        "rank {} tb {} step {}: {}",
                        t.rank,
                        t.tb,
                        t.step,
                        describe_task(t)
                    ));
                    break (StallKind::Straggler, cur);
                }
                Some(w) => match self.successor(cur) {
                    Some(next) => {
                        let n = &self.tasks[next];
                        chain.push(format!(
                            "rank {} tb {} step {} waits on {} <- rank {} tb {}",
                            t.rank,
                            t.tb,
                            t.step,
                            w.resource(),
                            n.rank,
                            n.tb
                        ));
                        cur = next;
                    }
                    None => {
                        chain.push(format!(
                            "rank {} tb {} step {} waits on {} (no signaller found)",
                            t.rank,
                            t.tb,
                            t.step,
                            w.resource()
                        ));
                        break (
                            if t.done || t.dead {
                                StallKind::OrphanedWait
                            } else {
                                StallKind::Unknown
                            },
                            cur,
                        );
                    }
                },
            }
        };
        StallDiagnosis {
            kind,
            origin: ident(origin),
            root: ident(root),
            root_what: describe_task(&self.tasks[root]),
            chain,
            graph: self.clone(),
            fired_faults,
            dump: None,
        }
    }
}

impl StallDiagnosis {
    /// A diagnosis for a failure with no task snapshots (e.g. the graph
    /// could not be built). Keeps error construction total.
    #[must_use]
    pub fn unavailable(origin: (usize, usize, usize), fired_faults: Vec<String>) -> Self {
        Self {
            kind: StallKind::Unknown,
            origin,
            root: origin,
            root_what: "no task snapshot available".to_string(),
            chain: Vec::new(),
            graph: WaitForGraph::default(),
            fired_faults,
            dump: None,
        }
    }

    /// Renders the diagnosis as the error-context line list: every
    /// task's recent-activity ring (the PR 1 format, kept stable for
    /// existing consumers), injected faults, then the classified chain
    /// and root cause.
    #[must_use]
    pub fn context_lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .graph
            .tasks
            .iter()
            .flat_map(|t| t.recent.iter().cloned())
            .collect();
        out.extend(
            self.fired_faults
                .iter()
                .map(|f| format!("injected fault struck: {f}")),
        );
        out.push(format!("diagnosis: {}", self.kind.label()));
        for hop in &self.chain {
            out.push(format!("wait chain: {hop}"));
        }
        out.push(format!(
            "root cause: rank {} tb {} step {} — {}",
            self.root.0, self.root.1, self.root.2, self.root_what
        ));
        if let Some(path) = &self.dump {
            out.push(format!(
                "black box: {} (inspect with `msccl doctor`)",
                path.display()
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Black box artifact
// ---------------------------------------------------------------------------

/// Format tag of the post-mortem artifact.
pub const BLACKBOX_VERSION: &str = "msccl-blackbox-v1";

/// The failure origin as serialized into the black box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackboxFailure {
    /// Stable cause label: `hang`, `deadline`, `panic`, `injected_kill`.
    pub cause: String,
    /// Cause detail (panic payload or fault plan syntax), possibly empty.
    pub detail: String,
    /// Rank of the origin thread block.
    pub rank: usize,
    /// Thread block id.
    pub tb: usize,
    /// Step at failure.
    pub step: usize,
    /// Observed cancellation drain latency in microseconds.
    pub drain_us: u64,
}

/// Scheduler state as serialized into the black box.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlackboxSched {
    /// Tasks stolen across worker deques.
    pub steals: u64,
    /// Worker park episodes.
    pub parks: u64,
    /// Total nanoseconds workers spent parked.
    pub park_ns: u64,
    /// The wait table at cancellation: (rendered key, blocked task
    /// indices).
    pub waits: Vec<(String, Vec<usize>)>,
}

/// One connection's identity and teardown occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackboxConn {
    /// Source rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Channel id.
    pub channel: usize,
    /// Tiles still sitting in the FIFO at teardown.
    pub occupancy: usize,
    /// FIFO slot capacity.
    pub capacity: usize,
}

/// The versioned post-mortem artifact a failed run serializes and
/// `msccl doctor` reads back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blackbox {
    /// Always [`BLACKBOX_VERSION`].
    pub version: String,
    /// The program's collective name.
    pub program: String,
    /// Failure origin.
    pub failure: BlackboxFailure,
    /// Structured diagnosis (wait-for graph included).
    pub diagnosis: StallDiagnosis,
    /// Scheduler counters and wait-table snapshot.
    pub sched: BlackboxSched,
    /// Connection table (indexes match flight `fifo_depth` records).
    pub conns: Vec<BlackboxConn>,
    /// Decoded flight records, per worker, oldest first.
    pub flight: Vec<FlightRecord>,
    /// Counter/gauge metrics at teardown, as (rendered name, value).
    pub metrics: Vec<(String, u64)>,
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Blackbox {
    /// Writes the dump into `dir` (created if missing) under a unique
    /// name, returning its path.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "blackbox-{}-r{}tb{}-{}.json",
            std::process::id(),
            self.failure.rank,
            self.failure.tb,
            seq
        ));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Serializes the dump. Hand-rolled and byte-stable: same dump, same
    /// bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": {},", json_str(&self.version));
        let _ = writeln!(s, "  \"program\": {},", json_str(&self.program));
        let f = &self.failure;
        let _ = writeln!(
            s,
            "  \"failure\": {{\"cause\": {}, \"detail\": {}, \"rank\": {}, \"tb\": {}, \"step\": {}, \"drain_us\": {}}},",
            json_str(&f.cause),
            json_str(&f.detail),
            f.rank,
            f.tb,
            f.step,
            f.drain_us
        );
        let d = &self.diagnosis;
        s.push_str("  \"diagnosis\": {\n");
        let _ = writeln!(s, "    \"kind\": {},", json_str(d.kind.label()));
        let _ = writeln!(
            s,
            "    \"origin\": [{}, {}, {}],",
            d.origin.0, d.origin.1, d.origin.2
        );
        let _ = writeln!(
            s,
            "    \"root\": [{}, {}, {}],",
            d.root.0, d.root.1, d.root.2
        );
        let _ = writeln!(s, "    \"root_what\": {},", json_str(&d.root_what));
        let _ = writeln!(s, "    \"chain\": {},", json_str_list(&d.chain));
        let _ = writeln!(
            s,
            "    \"fired_faults\": {},",
            json_str_list(&d.fired_faults)
        );
        s.push_str("    \"tasks\": [\n");
        for (i, t) in d.graph.tasks.iter().enumerate() {
            let wait = match &t.wait {
                None => "null".to_string(),
                Some(BlockedOn::Sem {
                    dep_tb,
                    target,
                    current,
                }) => format!(
                    "{{\"kind\": \"sem\", \"dep_tb\": {dep_tb}, \"target\": {target}, \"current\": {current}}}"
                ),
                Some(BlockedOn::Recv { src, channel }) => {
                    format!("{{\"kind\": \"recv\", \"src\": {src}, \"channel\": {channel}}}")
                }
                Some(BlockedOn::Send { dst, channel }) => {
                    format!("{{\"kind\": \"send\", \"dst\": {dst}, \"channel\": {channel}}}")
                }
                Some(BlockedOn::Gate { boundary }) => {
                    format!("{{\"kind\": \"gate\", \"boundary\": {boundary}}}")
                }
                Some(BlockedOn::Sleep) => "{\"kind\": \"sleep\"}".to_string(),
            };
            let peer = |p: Option<(usize, usize)>| match p {
                Some((r, c)) => format!("[{r}, {c}]"),
                None => "null".to_string(),
            };
            let _ = write!(
                s,
                "      {{\"rank\": {}, \"tb\": {}, \"tile\": {}, \"step\": {}, \"done\": {}, \"dead\": {}, \"completed\": {}, \"wait\": {}, \"send_peer\": {}, \"recv_peer\": {}, \"recent\": {}}}",
                t.rank,
                t.tb,
                t.tile,
                t.step,
                t.done,
                t.dead,
                t.completed,
                wait,
                peer(t.send_peer),
                peer(t.recv_peer),
                json_str_list(&t.recent)
            );
            s.push_str(if i + 1 < d.graph.tasks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ],\n");
        s.push_str("    \"edges\": [");
        for (i, e) in d.graph.edges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let to = e.to.map_or("null".to_string(), |t| t.to_string());
            let _ = write!(
                s,
                "{{\"from\": {}, \"resource\": {}, \"to\": {}}}",
                e.from,
                json_str(&e.resource),
                to
            );
        }
        s.push_str("]\n  },\n");
        let sc = &self.sched;
        s.push_str("  \"sched\": {");
        let _ = write!(
            s,
            "\"steals\": {}, \"parks\": {}, \"park_ns\": {}, \"waits\": [",
            sc.steals, sc.parks, sc.park_ns
        );
        for (i, (key, tasks)) in sc.waits.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{}, [", json_str(key));
            for (j, t) in tasks.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{t}");
            }
            s.push_str("]]");
        }
        s.push_str("]},\n");
        s.push_str("  \"conns\": [");
        for (i, c) in self.conns.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"src\": {}, \"dst\": {}, \"channel\": {}, \"occupancy\": {}, \"capacity\": {}}}",
                c.src, c.dst, c.channel, c.occupancy, c.capacity
            );
        }
        s.push_str("],\n");
        s.push_str("  \"flight\": [\n");
        for (i, r) in self.flight.iter().enumerate() {
            let rank = r.rank.map_or("null".to_string(), |v| v.to_string());
            let tb = r.tb.map_or("null".to_string(), |v| v.to_string());
            let _ = write!(
                s,
                "    {{\"w\": {}, \"s\": {}, \"k\": {}, \"r\": {}, \"t\": {}, \"a\": {}, \"b\": {}}}",
                r.worker,
                r.seq,
                json_str(r.kind_name()),
                rank,
                tb,
                r.a,
                r.b
            );
            s.push_str(if i + 1 < self.flight.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"metrics\": [");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{}, {}]", json_str(name), value);
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses a dump previously produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found —
    /// bad JSON, wrong version tag, missing fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let version = v.get_str("version")?;
        if version != BLACKBOX_VERSION {
            return Err(format!(
                "unsupported dump version {version:?} (expected {BLACKBOX_VERSION})"
            ));
        }
        let fail = v.get("failure")?;
        let failure = BlackboxFailure {
            cause: fail.get_str("cause")?,
            detail: fail.get_str("detail")?,
            rank: fail.get_usize("rank")?,
            tb: fail.get_usize("tb")?,
            step: fail.get_usize("step")?,
            drain_us: fail.get_u64("drain_us")?,
        };
        let d = v.get("diagnosis")?;
        let triple = |val: &Json, key: &str| -> Result<(usize, usize, usize), String> {
            let arr = val.get_arr(key)?;
            if arr.len() != 3 {
                return Err(format!("{key}: expected 3 elements"));
            }
            Ok((arr[0].as_usize()?, arr[1].as_usize()?, arr[2].as_usize()?))
        };
        let mut tasks = Vec::new();
        for t in d.get_arr("tasks")? {
            let wait = match t.get("wait") {
                Err(_) => None,
                Ok(w) if w.is_null() => None,
                Ok(w) => Some(match w.get_str("kind")?.as_str() {
                    "sem" => BlockedOn::Sem {
                        dep_tb: w.get_usize("dep_tb")?,
                        target: w.get_u64("target")?,
                        current: w.get_u64("current")?,
                    },
                    "recv" => BlockedOn::Recv {
                        src: w.get_usize("src")?,
                        channel: w.get_usize("channel")?,
                    },
                    "send" => BlockedOn::Send {
                        dst: w.get_usize("dst")?,
                        channel: w.get_usize("channel")?,
                    },
                    "gate" => BlockedOn::Gate {
                        boundary: w.get_usize("boundary")?,
                    },
                    "sleep" => BlockedOn::Sleep,
                    other => return Err(format!("unknown wait kind {other:?}")),
                }),
            };
            let peer = |key: &str| -> Result<Option<(usize, usize)>, String> {
                match t.get(key) {
                    Err(_) => Ok(None),
                    Ok(p) if p.is_null() => Ok(None),
                    Ok(p) => {
                        let arr = p.as_arr()?;
                        if arr.len() != 2 {
                            return Err(format!("{key}: expected 2 elements"));
                        }
                        Ok(Some((arr[0].as_usize()?, arr[1].as_usize()?)))
                    }
                }
            };
            tasks.push(TaskStall {
                rank: t.get_usize("rank")?,
                tb: t.get_usize("tb")?,
                tile: t.get_usize("tile")?,
                step: t.get_usize("step")?,
                done: t.get_bool("done")?,
                dead: t.get_bool("dead")?,
                completed: t.get_u64("completed")?,
                wait,
                send_peer: peer("send_peer")?,
                recv_peer: peer("recv_peer")?,
                recent: t.get_str_list("recent")?,
            });
        }
        let mut edges = Vec::new();
        for e in d.get_arr("edges")? {
            edges.push(WaitEdge {
                from: e.get_usize("from")?,
                resource: e.get_str("resource")?,
                to: match e.get("to") {
                    Ok(t) if !t.is_null() => Some(t.as_usize()?),
                    _ => None,
                },
            });
        }
        let diagnosis = StallDiagnosis {
            kind: StallKind::from_label(&d.get_str("kind")?),
            origin: triple(d, "origin")?,
            root: triple(d, "root")?,
            root_what: d.get_str("root_what")?,
            chain: d.get_str_list("chain")?,
            graph: WaitForGraph { tasks, edges },
            fired_faults: d.get_str_list("fired_faults")?,
            dump: None,
        };
        let sc = v.get("sched")?;
        let mut waits = Vec::new();
        for w in sc.get_arr("waits")? {
            let pair = w.as_arr()?;
            if pair.len() != 2 {
                return Err("sched.waits: expected [key, tasks] pairs".to_string());
            }
            let mut idxs = Vec::new();
            for t in pair[1].as_arr()? {
                idxs.push(t.as_usize()?);
            }
            waits.push((pair[0].as_str()?, idxs));
        }
        let sched = BlackboxSched {
            steals: sc.get_u64("steals")?,
            parks: sc.get_u64("parks")?,
            park_ns: sc.get_u64("park_ns")?,
            waits,
        };
        let mut conns = Vec::new();
        for c in v.get_arr("conns")? {
            conns.push(BlackboxConn {
                src: c.get_usize("src")?,
                dst: c.get_usize("dst")?,
                channel: c.get_usize("channel")?,
                occupancy: c.get_usize("occupancy")?,
                capacity: c.get_usize("capacity")?,
            });
        }
        let mut flight = Vec::new();
        for r in v.get_arr("flight")? {
            flight.push(FlightRecord {
                worker: r.get_usize("w")?,
                seq: r.get_u64("s")?,
                kind: FlightRecord::kind_from_name(&r.get_str("k")?),
                rank: match r.get("r") {
                    Ok(x) if !x.is_null() => Some(x.as_usize()?),
                    _ => None,
                },
                tb: match r.get("t") {
                    Ok(x) if !x.is_null() => Some(x.as_usize()?),
                    _ => None,
                },
                a: r.get_u64("a")?,
                b: r.get_u64("b")?,
            });
        }
        let mut metrics = Vec::new();
        for m in v.get_arr("metrics")? {
            let pair = m.as_arr()?;
            if pair.len() != 2 {
                return Err("metrics: expected [name, value] pairs".to_string());
            }
            metrics.push((pair[0].as_str()?, pair[1].as_u64()?));
        }
        Ok(Self {
            version,
            program: v.get_str("program")?,
            failure,
            diagnosis,
            sched,
            conns,
            flight,
            metrics,
        })
    }

    /// Renders the human-readable diagnosis (`msccl doctor`'s default
    /// output).
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "black box: {} ({})", self.program, self.version);
        let f = &self.failure;
        let detail = if f.detail.is_empty() {
            String::new()
        } else {
            format!(": {}", f.detail)
        };
        let _ = writeln!(
            s,
            "failure:   {} at rank {} tb {} step {}{} (drained in {}us)",
            f.cause, f.rank, f.tb, f.step, detail, f.drain_us
        );
        let d = &self.diagnosis;
        let _ = writeln!(s, "diagnosis: {}", d.kind.label());
        let _ = writeln!(
            s,
            "root cause: rank {} tb {} step {} — {}",
            d.root.0, d.root.1, d.root.2, d.root_what
        );
        if !d.chain.is_empty() {
            let _ = writeln!(s, "wait chain:");
            for hop in &d.chain {
                let _ = writeln!(s, "  {hop}");
            }
        }
        if !d.fired_faults.is_empty() {
            let _ = writeln!(s, "injected faults that struck:");
            for fault in &d.fired_faults {
                let _ = writeln!(s, "  {fault}");
            }
        }
        let _ = writeln!(s, "tasks:");
        for t in &d.graph.tasks {
            let _ = writeln!(
                s,
                "  rank {} tb {} tile {} step {} ({} instr done): {}",
                t.rank,
                t.tb,
                t.tile,
                t.step,
                t.completed,
                describe_task(t)
            );
        }
        let sc = &self.sched;
        let _ = writeln!(
            s,
            "scheduler: {} steals, {} parks, {}ns parked",
            sc.steals, sc.parks, sc.park_ns
        );
        if !sc.waits.is_empty() {
            let _ = writeln!(s, "wait table at cancellation:");
            for (key, tasks) in &sc.waits {
                let _ = writeln!(s, "  {key} <- tasks {tasks:?}");
            }
        }
        let stuck: Vec<&BlackboxConn> = self.conns.iter().filter(|c| c.occupancy > 0).collect();
        if !stuck.is_empty() {
            let _ = writeln!(s, "connections with undelivered tiles:");
            for c in stuck {
                let _ = writeln!(
                    s,
                    "  {} -> {} ch {}: {}/{} slots occupied",
                    c.src, c.dst, c.channel, c.occupancy, c.capacity
                );
            }
        }
        if !self.flight.is_empty() {
            let _ = writeln!(s, "flight recorder (last {} records):", self.flight.len());
            for r in &self.flight {
                let _ = writeln!(s, "  [w{} #{}] {}", r.worker, r.seq, r.describe());
            }
        }
        s
    }

    /// Re-exports the flight rings through the shared trace model so
    /// `msccl doctor --format chrome` can reuse the Chrome exporter.
    /// Timestamps are *ordinal* (each worker's record sequence number),
    /// not wall-clock: the recorder deliberately takes no clock reads on
    /// the hot path, so only within-worker order is meaningful.
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        let mut events = vec![TraceEvent {
            ts_us: 0.0,
            rank: self.failure.rank,
            tb: self.failure.tb,
            kind: EventKind::KernelLaunch,
        }];
        for r in &self.flight {
            let (rank, tb) = (r.rank.unwrap_or(0), r.tb.unwrap_or(r.worker));
            #[allow(clippy::cast_precision_loss)]
            let ts_us = r.seq as f64 + 1.0;
            let kind =
                match r.kind {
                    FK_BLOCK => match r.a >> 28 {
                        KEY_RECV => self.conns.get((r.a & 0x0FFF_FFFF) as usize).map(|c| {
                            EventKind::RecvBlock {
                                src: c.src,
                                channel: c.channel,
                            }
                        }),
                        KEY_SEND => self.conns.get((r.a & 0x0FFF_FFFF) as usize).map(|c| {
                            EventKind::SendBlock {
                                dst: c.dst,
                                channel: c.channel,
                            }
                        }),
                        _ => None,
                    },
                    FK_SEM_SET => Some(EventKind::SemSet { value: r.b }),
                    FK_RUN => Some(EventKind::TileBegin { tile: 0 }),
                    _ => None,
                };
            if let Some(kind) = kind {
                events.push(TraceEvent {
                    ts_us,
                    rank,
                    tb,
                    kind,
                });
            }
        }
        Trace::from_buffers(ClockDomain::Wall, vec![events])
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_list(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (std-only; enough for our own dumps)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are unsigned integers — that is all the
/// black-box format uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_obj(),
            b'[' => self.parse_arr(),
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b't' => self.parse_lit("true", Json::Bool(true)),
            b'f' => self.parse_lit("false", Json::Bool(false)),
            b'n' => self.parse_lit("null", Json::Null),
            b'0'..=b'9' => self.parse_num(),
            other => Err(format!(
                "unexpected byte {:?} at {}",
                char::from(other),
                self.pos
            )),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (dump strings are UTF-8 by
                    // construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    fn get<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}")),
            _ => Err(format!("expected object looking for {key:?}")),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err("expected number".to_string()),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        Ok(self.as_u64()? as usize)
    }

    fn as_str(&self) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            _ => Err("expected string".to_string()),
        }
    }

    fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err("expected array".to_string()),
        }
    }

    fn get_str(&self, key: &str) -> Result<String, String> {
        self.get(key)?.as_str()
    }

    fn get_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)?.as_u64()
    }

    fn get_usize(&self, key: &str) -> Result<usize, String> {
        self.get(key)?.as_usize()
    }

    fn get_bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("{key}: expected bool")),
        }
    }

    fn get_arr<'a>(&'a self, key: &str) -> Result<&'a [Json], String> {
        self.get(key)?.as_arr()
    }

    fn get_str_list(&self, key: &str) -> Result<Vec<String>, String> {
        self.get_arr(key)?.iter().map(Json::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(rank: usize, tb: usize, wait: Option<BlockedOn>) -> TaskStall {
        TaskStall {
            rank,
            tb,
            tile: 0,
            step: 1,
            done: false,
            dead: false,
            completed: 3,
            wait,
            send_peer: None,
            recv_peer: None,
            recent: vec![format!("rank {rank} tb {tb} tile 0 step 1 (r): started")],
        }
    }

    /// Two ranks each blocked receiving from the other: a textbook cycle.
    #[test]
    fn classifies_recv_cycle_as_deadlock() {
        let mut a = task(0, 0, Some(BlockedOn::Recv { src: 1, channel: 0 }));
        a.send_peer = Some((1, 0));
        a.recv_peer = Some((1, 0));
        let mut b = task(1, 0, Some(BlockedOn::Recv { src: 0, channel: 0 }));
        b.send_peer = Some((0, 0));
        b.recv_peer = Some((0, 0));
        let g = WaitForGraph::build(vec![a, b]);
        assert_eq!(g.edges.len(), 2);
        assert_eq!(g.edges[0].to, Some(1));
        assert_eq!(g.edges[1].to, Some(0));
        let d = g.classify(0, Vec::new());
        assert_eq!(d.kind, StallKind::DeadlockCycle);
        assert_eq!(d.origin, (0, 0, 1));
        // The chain revisits the origin: the cycle closes there.
        assert_eq!(d.root, (0, 0, 1));
        assert!(d.chain.len() >= 3, "chain: {:?}", d.chain);
    }

    /// A semaphore wait on a task that already finished (and will never
    /// signal again) is orphaned, not deadlocked.
    #[test]
    fn classifies_wait_on_finished_task_as_orphaned() {
        let waiter = task(
            0,
            1,
            Some(BlockedOn::Sem {
                dep_tb: 0,
                target: 5,
                current: 3,
            }),
        );
        let mut dep = task(0, 0, None);
        dep.done = true;
        let g = WaitForGraph::build(vec![dep, waiter]);
        let d = g.classify(1, Vec::new());
        assert_eq!(d.kind, StallKind::OrphanedWait);
        assert_eq!(d.root, (0, 0, 1));
        assert!(d.root_what.contains("finished"), "{}", d.root_what);
    }

    /// A wait chain that ends at a sleeping task (injected stall) is a
    /// straggler — the root names the stalled block, i.e. the fault site.
    #[test]
    fn classifies_wait_on_sleeping_task_as_straggler() {
        let mut waiter = task(0, 0, Some(BlockedOn::Recv { src: 1, channel: 0 }));
        waiter.recv_peer = Some((1, 0));
        let mut stalled = task(1, 0, Some(BlockedOn::Sleep));
        stalled.send_peer = Some((0, 0));
        let g = WaitForGraph::build(vec![waiter, stalled]);
        let d = g.classify(0, Vec::new());
        assert_eq!(d.kind, StallKind::Straggler);
        assert_eq!(d.root, (1, 0, 1));
        assert!(d.root_what.contains("sleep"), "{}", d.root_what);
    }

    /// A dead origin (injected kill) diagnoses as a self-fault at the
    /// origin itself.
    #[test]
    fn classifies_dead_origin_as_self_fault() {
        let mut killed = task(1, 0, None);
        killed.dead = true;
        let g = WaitForGraph::build(vec![task(0, 0, None), killed]);
        let d = g.classify(1, vec!["kill block r1 tb0 step0".to_string()]);
        assert_eq!(d.kind, StallKind::SelfFault);
        assert_eq!(d.root, (1, 0, 1));
        assert_eq!(d.fired_faults.len(), 1);
    }

    /// A wait on a *dead* peer (killed mid-protocol) is orphaned and
    /// roots at the dead task, not the waiter.
    #[test]
    fn classifies_wait_on_dead_peer_as_orphaned() {
        let mut waiter = task(0, 0, Some(BlockedOn::Recv { src: 1, channel: 0 }));
        waiter.recv_peer = Some((1, 0));
        let mut dead = task(1, 0, None);
        dead.dead = true;
        dead.send_peer = Some((0, 0));
        let g = WaitForGraph::build(vec![waiter, dead]);
        let d = g.classify(0, Vec::new());
        assert_eq!(d.kind, StallKind::OrphanedWait);
        assert_eq!(d.root, (1, 0, 1));
    }

    #[test]
    fn context_lines_keep_ring_format_and_add_diagnosis() {
        let mut a = task(0, 0, Some(BlockedOn::Recv { src: 1, channel: 0 }));
        a.recv_peer = Some((1, 0));
        let mut b = task(1, 0, Some(BlockedOn::Sleep));
        b.send_peer = Some((0, 0));
        let g = WaitForGraph::build(vec![a, b]);
        let d = g.classify(0, vec!["stall block r1 tb0 step0 us 5000000".to_string()]);
        let lines = d.context_lines();
        assert!(lines.iter().any(|l| l.starts_with("rank 0 tb 0")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("injected fault struck: stall block r1 tb0")));
        assert!(lines.iter().any(|l| l.starts_with("diagnosis: straggler")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("root cause: rank 1 tb 0")));
    }

    #[test]
    fn flight_ring_wraps_and_keeps_newest() {
        let rec = FlightRecorder::new(1);
        for i in 0..(FLIGHT_CAPACITY + 10) {
            rec.run(0, 0, 0, i, i as u64);
        }
        let records = rec.drain();
        assert_eq!(records.len(), FLIGHT_CAPACITY);
        assert_eq!(records[0].seq, 10);
        assert_eq!(records.last().unwrap().a, (FLIGHT_CAPACITY + 9) as u64);
        rec.reset();
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn flight_records_round_trip_payloads() {
        let rec = FlightRecorder::new(2);
        rec.block(1, 3, 7, encode_key(KEY_TAG_RECV, 5), 2, 9);
        rec.park(0, 1234);
        rec.sem_set(0, 1, 2, 4, 42);
        let records = rec.drain();
        assert_eq!(records.len(), 3);
        let block = records.iter().find(|r| r.kind_name() == "block").unwrap();
        assert_eq!((block.rank, block.tb), (Some(3), Some(7)));
        assert_eq!(block.a, encode_key(KEY_TAG_RECV, 5));
        assert_eq!((block.b >> 16, block.b & 0xFFFF), (2, 9));
        let park = records.iter().find(|r| r.kind_name() == "park").unwrap();
        assert_eq!((park.rank, park.tb), (None, None));
        assert_eq!(park.a, 1234);
        assert!(records
            .iter()
            .any(|r| r.kind_name() == "sem_set" && r.b == 42));
    }

    fn sample_blackbox() -> Blackbox {
        let mut a = task(0, 0, Some(BlockedOn::Recv { src: 1, channel: 0 }));
        a.recv_peer = Some((1, 0));
        a.send_peer = Some((1, 0));
        let mut b = task(1, 0, Some(BlockedOn::Recv { src: 0, channel: 0 }));
        b.recv_peer = Some((0, 0));
        b.send_peer = Some((0, 0));
        let g = WaitForGraph::build(vec![a, b]);
        let diagnosis = g.classify(0, vec!["fault \"quoted\"".to_string()]);
        let rec = FlightRecorder::new(1);
        rec.run(0, 0, 0, 0, 0);
        // Task (0, 0) blocks receiving on conn 1, the 1 -> 0 connection.
        rec.block(0, 0, 0, encode_key(KEY_TAG_RECV, 1), 0, 1);
        Blackbox {
            version: BLACKBOX_VERSION.to_string(),
            program: "allgather".to_string(),
            failure: BlackboxFailure {
                cause: "hang".to_string(),
                detail: String::new(),
                rank: 0,
                tb: 0,
                step: 1,
                drain_us: 1500,
            },
            diagnosis,
            sched: BlackboxSched {
                steals: 2,
                parks: 5,
                park_ns: 90_000,
                waits: vec![("recv(0)".to_string(), vec![0, 1])],
            },
            conns: vec![
                BlackboxConn {
                    src: 0,
                    dst: 1,
                    channel: 0,
                    occupancy: 1,
                    capacity: 8,
                },
                BlackboxConn {
                    src: 1,
                    dst: 0,
                    channel: 0,
                    occupancy: 0,
                    capacity: 8,
                },
            ],
            flight: rec.drain(),
            metrics: vec![("msccl_sched_steals_total".to_string(), 2)],
        }
    }

    #[test]
    fn blackbox_json_round_trips() {
        let bb = sample_blackbox();
        let json = bb.to_json();
        let parsed = Blackbox::from_json(&json).expect("parse own dump");
        assert_eq!(parsed, bb);
        // Byte-stable writer: serialize(parse(x)) == x.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn blackbox_rejects_wrong_version() {
        let json = sample_blackbox().to_json().replace("-v1", "-v9");
        let err = Blackbox::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported dump version"), "{err}");
    }

    #[test]
    fn blackbox_renders_human_diagnosis() {
        let text = sample_blackbox().render_human();
        assert!(text.contains("diagnosis: deadlock_cycle"), "{text}");
        assert!(text.contains("root cause: rank 0 tb 0"), "{text}");
        assert!(text.contains("flight recorder"), "{text}");
    }

    #[test]
    fn blackbox_exports_trace_events() {
        let trace = sample_blackbox().to_trace();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::RecvBlock { src: 1, channel: 0 })));
        // Ordinal timestamps are monotone per worker by construction.
        assert!(trace.len() >= 2);
    }
}
