//! Chunked, auto-vectorizable element-wise kernels for every [`ReduceOp`].
//!
//! The naive reduction loop calls `ReduceOp::apply` per element, which
//! re-dispatches on the operator inside the innermost loop and keeps LLVM
//! from vectorizing it. Here the operator match happens **once**, outside
//! the loop, and each specialization runs a fixed-width chunked loop over
//! `chunks_exact` slices — a shape LLVM reliably turns into SIMD for
//! `f32` add/mul/min/max. The `reduce_kernels` criterion bench in
//! `msccl-bench` measures the resulting speedup over the per-element
//! dispatch loop.
//!
//! Operand order matters for float reproducibility: every kernel computes
//! `acc[i] = op(acc[i], src[i])`, the same order the scalar runtime used,
//! so pooled execution stays bit-identical to the reference semantics.

use mscclang::ReduceOp;

/// Elements per unrolled chunk. 8 `f32`s = one AVX2 register; narrower
/// ISAs just see a 2–4× unrolled loop, which still vectorizes.
const LANES: usize = 8;

#[inline(always)]
fn lanewise(acc: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32 + Copy) {
    let n = acc.len().min(src.len());
    let (acc, src) = (&mut acc[..n], &src[..n]);
    let mut a_chunks = acc.chunks_exact_mut(LANES);
    let mut s_chunks = src.chunks_exact(LANES);
    for (a, s) in a_chunks.by_ref().zip(s_chunks.by_ref()) {
        for i in 0..LANES {
            a[i] = f(a[i], s[i]);
        }
    }
    for (a, &s) in a_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *a = f(*a, s);
    }
}

/// `acc[i] = op(acc[i], src[i])` over the common prefix of both slices.
#[inline]
pub fn reduce_into_slice(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    match op {
        ReduceOp::Sum => lanewise(acc, src, |a, b| a + b),
        ReduceOp::Max => lanewise(acc, src, f32::max),
        ReduceOp::Min => lanewise(acc, src, f32::min),
        ReduceOp::Prod => lanewise(acc, src, |a, b| a * b),
    }
}

/// `acc[i] = op(src[i], acc[i])` — the receive-side merge order: the
/// runtime folds *local memory* (left operand) into a *received tile*
/// (right operand), and the operand order is part of the bit-exact
/// reproducibility contract (`f32::max` is not symmetric under NaN).
#[inline]
pub fn reduce_from_slice(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    match op {
        ReduceOp::Sum => lanewise(acc, src, |a, b| b + a),
        ReduceOp::Max => lanewise(acc, src, |a, b| b.max(a)),
        ReduceOp::Min => lanewise(acc, src, |a, b| b.min(a)),
        ReduceOp::Prod => lanewise(acc, src, |a, b| b * a),
    }
}

/// The per-element dispatch loop the vectorized kernels replace; kept as
/// the oracle for equivalence tests and as the bench's scalar baseline.
#[inline]
pub fn reduce_into_slice_scalar(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    for (a, &b) in acc.iter_mut().zip(src) {
        *a = op.apply(*a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod];

    fn pseudo(seed: u32, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2_654_435_761).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                ((state % 2048) as f32 - 1024.0) / 8.0
            })
            .collect()
    }

    /// Vectorized kernels are bit-identical to the scalar dispatch loop
    /// for every operator, across lengths that exercise chunk remainders.
    #[test]
    fn matches_scalar_oracle_bitwise() {
        for op in OPS {
            for n in [0, 1, 7, 8, 9, 64, 100, 1023] {
                let src = pseudo(n as u32 + 1, n);
                let mut fast = pseudo(7, n);
                let mut slow = fast.clone();
                reduce_into_slice(op, &mut fast, &src);
                reduce_into_slice_scalar(op, &mut slow, &src);
                let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
                let slow_bits: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fast_bits, slow_bits, "{op:?} n={n}");
            }
        }
    }

    /// The receive-side order mirrors a scalar `op(src, acc)` fold.
    #[test]
    fn reduce_from_slice_uses_src_as_left_operand() {
        for op in OPS {
            let src = pseudo(3, 100);
            let mut fast = pseudo(4, 100);
            let mut slow = fast.clone();
            reduce_from_slice(op, &mut fast, &src);
            for (a, &b) in slow.iter_mut().zip(&src) {
                *a = op.apply(b, *a);
            }
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let slow_bits: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "{op:?}");
        }
    }

    /// Mismatched lengths reduce only the common prefix.
    #[test]
    fn common_prefix_only() {
        let mut acc = vec![1.0; 4];
        reduce_into_slice(ReduceOp::Sum, &mut acc, &[1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 2.0, 1.0, 1.0]);
        let mut acc = vec![1.0; 2];
        reduce_into_slice(ReduceOp::Sum, &mut acc, &[1.0; 10]);
        assert_eq!(acc, vec![2.0, 2.0]);
    }

    /// NaN / max semantics follow `f32::max` exactly in both paths.
    #[test]
    fn nan_handling_matches_apply() {
        let mut fast = vec![f32::NAN, 1.0];
        let mut slow = fast.clone();
        let src = [2.0, f32::NAN];
        reduce_into_slice(ReduceOp::Max, &mut fast, &src);
        reduce_into_slice_scalar(ReduceOp::Max, &mut slow, &src);
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
