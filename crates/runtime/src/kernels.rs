//! Explicit SIMD element-wise kernels for every [`ReduceOp`], behind
//! runtime feature dispatch.
//!
//! The naive reduction loop calls `ReduceOp::apply` per element, which
//! re-dispatches on the operator inside the innermost loop. The first
//! generation of this module hoisted the dispatch and relied on LLVM's
//! auto-vectorizer; this one writes the vector bodies down explicitly —
//! AVX2 (8 lanes) and SSE2 (4 lanes) on `x86_64`, NEON (4 lanes) on
//! `aarch64` — so the hot loop's shape no longer depends on vectorizer
//! mood. The widest ISA the CPU actually has is picked **once** per
//! process ([`simd_level`], a cached `is_x86_feature_detected!`) and can
//! be pinned down with `MSCCL_SIMD=scalar|sse2|avx2|neon` for
//! differential testing. Everything funnels through the same two entry
//! points as before, so callers are oblivious.
//!
//! Bit-exactness is a hard contract, not an aspiration, and floats make
//! it subtle in two places:
//!
//! * **Operand order.** Every kernel computes `acc[i] = op(acc[i],
//!   src[i])` (or the mirrored `op(src[i], acc[i])` for the receive-side
//!   merge) in exactly the order the scalar runtime used — `f32::max` is
//!   not symmetric under NaN, and float add/mul are not associative.
//! * **max/min lowering.** `ReduceOp::apply` pins IEEE maxNum/minNum
//!   with an exact operand selection — ties (including `-0.0` vs
//!   `+0.0`) take the first operand, a NaN in the first takes the
//!   second — because `f32::max` leaves the tie choice to codegen and
//!   two inlinings of it can disagree bitwise. The `MAXPS`/`MINPS`
//!   instructions alone return the *second* operand on NaN or tie,
//!   which is not that function: the x86 kernels swap the operands and
//!   add an unordered-compare blend, and NEON's `FMAXNM`/`FMINNM` get
//!   tie and NaN-payload blends, so every vector body reproduces
//!   `apply` operand-for-operand.
//!
//! The per-element dispatch loop survives as
//! [`reduce_into_slice_scalar`], the oracle every SIMD path is tested
//! bitwise against (including single-NaN lanes and signed-zero ties) and
//! the baseline the `reduce_kernels` criterion bench measures speedups
//! over.

use mscclang::ReduceOp;

/// Elements per unrolled chunk of the portable fallback. 8 `f32`s = one
/// AVX2 register; narrower ISAs just see a 2–4× unrolled loop, which
/// still auto-vectorizes.
const LANES: usize = 8;

/// The instruction set the reduce kernels dispatch to, picked once per
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable chunked loop (auto-vectorized at best).
    Scalar,
    /// 128-bit SSE2 — the `x86_64` baseline, always available there.
    Sse2,
    /// 256-bit AVX2, when the CPU reports it.
    Avx2,
    /// 128-bit NEON — the `aarch64` baseline, always available there.
    Neon,
}

impl SimdLevel {
    /// Stable lowercase name (`scalar`/`sse2`/`avx2`/`neon`), matching
    /// what the `MSCCL_SIMD` override accepts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

/// The widest level this CPU supports.
fn detected_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// Whether this build can execute `level` (never above what the CPU
/// reports).
fn supported(level: SimdLevel) -> bool {
    match level {
        SimdLevel::Scalar => true,
        SimdLevel::Sse2 => cfg!(target_arch = "x86_64"),
        SimdLevel::Avx2 => detected_level() == SimdLevel::Avx2,
        SimdLevel::Neon => cfg!(target_arch = "aarch64"),
    }
}

/// The level every reduce call dispatches to: the widest the CPU
/// supports, unless the `MSCCL_SIMD` environment variable pins a lower
/// one (unknown or unsupported values fall back to detection). Resolved
/// once and cached for the life of the process.
pub fn simd_level() -> SimdLevel {
    static LEVEL: std::sync::OnceLock<SimdLevel> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| {
        let pinned =
            std::env::var("MSCCL_SIMD")
                .ok()
                .and_then(|v| match v.to_ascii_lowercase().as_str() {
                    "scalar" => Some(SimdLevel::Scalar),
                    "sse2" => Some(SimdLevel::Sse2),
                    "avx2" => Some(SimdLevel::Avx2),
                    "neon" => Some(SimdLevel::Neon),
                    _ => None,
                });
        match pinned {
            Some(l) if supported(l) => l,
            _ => detected_level(),
        }
    })
}

/// `acc[i] = op(acc[i], src[i])` over the common prefix of both slices.
#[inline]
pub fn reduce_into_slice(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the level is at or below what the CPU reported.
        SimdLevel::Avx2 => unsafe { x86::avx2::reduce(op, acc, src, false) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::sse2::reduce(op, acc, src, false) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is the aarch64 baseline.
        SimdLevel::Neon => unsafe { arm::reduce(op, acc, src, false) },
        _ => reduce_into_portable(op, acc, src),
    }
}

/// `acc[i] = op(src[i], acc[i])` — the receive-side merge order: the
/// runtime folds *local memory* (left operand) into a *received tile*
/// (right operand), and the operand order is part of the bit-exact
/// reproducibility contract (`ReduceOp::apply` max/min are not
/// symmetric under NaN).
#[inline]
pub fn reduce_from_slice(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the level is at or below what the CPU reported.
        SimdLevel::Avx2 => unsafe { x86::avx2::reduce(op, acc, src, true) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { x86::sse2::reduce(op, acc, src, true) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is the aarch64 baseline.
        SimdLevel::Neon => unsafe { arm::reduce(op, acc, src, true) },
        _ => reduce_from_portable(op, acc, src),
    }
}

/// The per-element dispatch loop the SIMD kernels replace; kept as the
/// oracle for equivalence tests and as the bench's scalar baseline.
#[inline]
pub fn reduce_into_slice_scalar(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    for (a, &b) in acc.iter_mut().zip(src) {
        *a = op.apply(*a, b);
    }
}

#[inline(always)]
fn lanewise(acc: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32 + Copy) {
    let n = acc.len().min(src.len());
    let (acc, src) = (&mut acc[..n], &src[..n]);
    let mut a_chunks = acc.chunks_exact_mut(LANES);
    let mut s_chunks = src.chunks_exact(LANES);
    for (a, s) in a_chunks.by_ref().zip(s_chunks.by_ref()) {
        for i in 0..LANES {
            a[i] = f(a[i], s[i]);
        }
    }
    for (a, &s) in a_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *a = f(*a, s);
    }
}

/// Portable `acc = op(acc, src)`, the non-SIMD-arch fallback.
fn reduce_into_portable(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    match op {
        ReduceOp::Sum => lanewise(acc, src, |a, b| a + b),
        ReduceOp::Max => lanewise(acc, src, |a, b| ReduceOp::Max.apply(a, b)),
        ReduceOp::Min => lanewise(acc, src, |a, b| ReduceOp::Min.apply(a, b)),
        ReduceOp::Prod => lanewise(acc, src, |a, b| a * b),
    }
}

/// Portable `acc = op(src, acc)`, the non-SIMD-arch fallback.
fn reduce_from_portable(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    match op {
        ReduceOp::Sum => lanewise(acc, src, |a, b| b + a),
        ReduceOp::Max => lanewise(acc, src, |a, b| ReduceOp::Max.apply(b, a)),
        ReduceOp::Min => lanewise(acc, src, |a, b| ReduceOp::Min.apply(b, a)),
        ReduceOp::Prod => lanewise(acc, src, |a, b| b * a),
    }
}

/// Stamps out one ISA's four kernels plus its dispatcher. Every vector
/// body lives syntactically inside a `#[target_feature]` function, so
/// the intrinsic calls inline (a closure without the attribute would
/// block inlining and turn each lane op into a function call).
///
/// Each kernel computes `acc[i] = op(x, y)` where `(x, y)` is
/// `(acc, src)` normally and `(src, acc)` when `from` is set — the two
/// public operand orders — with a scalar tail for the last `< W` lanes
/// using the exact scalar function, so tails and bodies agree bitwise.
#[cfg(target_arch = "x86_64")]
macro_rules! x86_isa {
    ($mod_name:ident, $feature:literal, $w:expr, $vec:ty,
     load: $load:ident, store: $store:ident,
     add: $add:ident, mul: $mul:ident,
     max: $max:ident, min: $min:ident, unord: $unord:path,
     blend: |$m:ident, $take_y:ident, $y:ident| $blend:expr) => {
        pub mod $mod_name {
            use std::arch::x86_64::*;

            use mscclang::ReduceOp;

            /// IEEE maxNum with `ReduceOp::apply`'s exact operand
            /// selection: a NaN in `x` yields `y`; ties (±0.0) yield `x`
            /// (`MAXPS(y, x)` returns its second operand on tie or NaN).
            #[inline]
            #[target_feature(enable = $feature)]
            unsafe fn vmaxnum(x: $vec, y: $vec) -> $vec {
                let $m = $max(y, x);
                let $take_y = $unord(x, x);
                let $y = y;
                $blend
            }

            /// IEEE minNum, mirroring [`vmaxnum`].
            #[inline]
            #[target_feature(enable = $feature)]
            unsafe fn vminnum(x: $vec, y: $vec) -> $vec {
                let $m = $min(y, x);
                let $take_y = $unord(x, x);
                let $y = y;
                $blend
            }

            macro_rules! kernel {
                ($name:ident, $vop:ident, $sop:expr) => {
                    #[target_feature(enable = $feature)]
                    unsafe fn $name(acc: &mut [f32], src: &[f32], from: bool) {
                        let n = acc.len().min(src.len());
                        let a_ptr = acc.as_mut_ptr();
                        let s_ptr = src.as_ptr();
                        let mut i = 0;
                        while i + $w <= n {
                            let a = $load(a_ptr.add(i));
                            let s = $load(s_ptr.add(i));
                            let r = if from { $vop(s, a) } else { $vop(a, s) };
                            $store(a_ptr.add(i), r);
                            i += $w;
                        }
                        let f: fn(f32, f32) -> f32 = $sop;
                        while i < n {
                            let a = *a_ptr.add(i);
                            let s = *s_ptr.add(i);
                            *a_ptr.add(i) = if from { f(s, a) } else { f(a, s) };
                            i += 1;
                        }
                    }
                };
            }

            kernel!(sum, $add, |a, b| a + b);
            kernel!(prod, $mul, |a, b| a * b);
            kernel!(max, vmaxnum, |a, b| ReduceOp::Max.apply(a, b));
            kernel!(min, vminnum, |a, b| ReduceOp::Min.apply(a, b));

            /// # Safety
            /// The caller must have verified the CPU supports this ISA.
            pub unsafe fn reduce(op: ReduceOp, acc: &mut [f32], src: &[f32], from: bool) {
                match op {
                    ReduceOp::Sum => sum(acc, src, from),
                    ReduceOp::Max => max(acc, src, from),
                    ReduceOp::Min => min(acc, src, from),
                    ReduceOp::Prod => prod(acc, src, from),
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    x86_isa!(avx2, "avx2", 8, __m256,
        load: _mm256_loadu_ps, store: _mm256_storeu_ps,
        add: _mm256_add_ps, mul: _mm256_mul_ps,
        max: _mm256_max_ps, min: _mm256_min_ps, unord: super::cmp_unord_avx,
        blend: |m, take_y, y| _mm256_blendv_ps(m, y, take_y));

    /// `_mm256_cmp_ps::<_CMP_UNORD_Q>` behind a two-argument name so the
    /// macro can treat every ISA's unordered compare uniformly.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmp_unord_avx(
        x: std::arch::x86_64::__m256,
        y: std::arch::x86_64::__m256,
    ) -> std::arch::x86_64::__m256 {
        use std::arch::x86_64::{_mm256_cmp_ps, _CMP_UNORD_Q};
        _mm256_cmp_ps::<_CMP_UNORD_Q>(x, y)
    }

    x86_isa!(sse2, "sse2", 4, __m128,
        load: _mm_loadu_ps, store: _mm_storeu_ps,
        add: _mm_add_ps, mul: _mm_mul_ps,
        max: _mm_max_ps, min: _mm_min_ps, unord: _mm_cmpunord_ps,
        // SSE2 has no blendv; select via and/andnot/or.
        blend: |m, take_y, y| _mm_or_ps(_mm_and_ps(take_y, y), _mm_andnot_ps(take_y, m)));
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use std::arch::aarch64::*;

    use mscclang::ReduceOp;

    macro_rules! kernel {
        ($name:ident, $vop:ident, $sop:expr) => {
            #[target_feature(enable = "neon")]
            unsafe fn $name(acc: &mut [f32], src: &[f32], from: bool) {
                let n = acc.len().min(src.len());
                let a_ptr = acc.as_mut_ptr();
                let s_ptr = src.as_ptr();
                let mut i = 0;
                while i + 4 <= n {
                    let a = vld1q_f32(a_ptr.add(i));
                    let s = vld1q_f32(s_ptr.add(i));
                    let r = if from { $vop(s, a) } else { $vop(a, s) };
                    vst1q_f32(a_ptr.add(i), r);
                    i += 4;
                }
                let f: fn(f32, f32) -> f32 = $sop;
                while i < n {
                    let a = *a_ptr.add(i);
                    let s = *s_ptr.add(i);
                    *a_ptr.add(i) = if from { f(s, a) } else { f(a, s) };
                    i += 1;
                }
            }
        };
    }

    kernel!(sum, vaddq_f32, |a, b| a + b);
    kernel!(prod, vmulq_f32, |a, b| a * b);

    /// `ReduceOp::Max.apply`'s pinned selection on NEON. FMAXNM is IEEE
    /// maxNum, which covers the NaN cases (a NaN in `x` yields `y` and
    /// vice versa) but resolves a ±0.0 tie to +0.0, where `apply` pins
    /// the *first* operand — so equal lanes (true only for ties; the
    /// compare is false for NaN) are blended back to `x`. Both-NaN
    /// lanes must carry the operand `apply` picks, not FMAXNM's default
    /// NaN, hence the blends on `y != y` (a NaN `y` yields `x`) and
    /// `x != x` (a NaN `x` yields `y`, applied last so both-NaN lanes
    /// carry `y`'s payload).
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn vmaxnum(x: float32x4_t, y: float32x4_t) -> float32x4_t {
        let m = vmaxnmq_f32(x, y);
        let m = vbslq_f32(vceqq_f32(x, y), x, m);
        let m = vbslq_f32(vceqq_f32(y, y), m, x);
        vbslq_f32(vceqq_f32(x, x), m, y)
    }

    /// IEEE minNum with `apply`'s pinned selection, mirroring
    /// [`vmaxnum`].
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn vminnum(x: float32x4_t, y: float32x4_t) -> float32x4_t {
        let m = vminnmq_f32(x, y);
        let m = vbslq_f32(vceqq_f32(x, y), x, m);
        let m = vbslq_f32(vceqq_f32(y, y), m, x);
        vbslq_f32(vceqq_f32(x, x), m, y)
    }

    kernel!(max, vmaxnum, |a, b| ReduceOp::Max.apply(a, b));
    kernel!(min, vminnum, |a, b| ReduceOp::Min.apply(a, b));

    /// # Safety
    /// NEON is the aarch64 baseline, so this is always safe to call
    /// there; the signature stays `unsafe` for uniformity with the x86
    /// dispatchers.
    pub unsafe fn reduce(op: ReduceOp, acc: &mut [f32], src: &[f32], from: bool) {
        match op {
            ReduceOp::Sum => sum(acc, src, from),
            ReduceOp::Max => max(acc, src, from),
            ReduceOp::Min => min(acc, src, from),
            ReduceOp::Prod => prod(acc, src, from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod];
    const SIZES: [usize; 8] = [0, 1, 7, 8, 9, 64, 100, 1023];

    fn pseudo(seed: u32, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2_654_435_761).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                ((state % 2048) as f32 - 1024.0) / 8.0
            })
            .collect()
    }

    /// Adversarial lanes on top of `pseudo`: NaNs and signed-zero ties
    /// scattered so every vector lane position sees each at least once.
    fn spiked(seed: u32, n: usize) -> Vec<f32> {
        let mut v = pseudo(seed, n);
        for (i, x) in v.iter_mut().enumerate() {
            match i % 13 {
                3 => *x = f32::NAN,
                5 => *x = 0.0,
                7 => *x = -0.0,
                _ => {}
            }
        }
        v
    }

    fn assert_bits_eq(fast: &[f32], slow: &[f32], what: &str) {
        let fast: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
        let slow: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fast, slow, "{what}");
    }

    /// A reduce entry point under test: `(op, acc, src, from)` where
    /// `from` selects the `reduce_from` direction.
    type Path = fn(ReduceOp, &mut [f32], &[f32], bool);

    /// Every kernel path this host can execute, by name: the dispatched
    /// entry points plus each ISA invoked directly, so a machine with
    /// AVX2 still covers its SSE2 kernels.
    fn paths() -> Vec<(&'static str, Path)> {
        fn dispatched(op: ReduceOp, acc: &mut [f32], src: &[f32], from: bool) {
            if from {
                reduce_from_slice(op, acc, src);
            } else {
                reduce_into_slice(op, acc, src);
            }
        }
        fn portable(op: ReduceOp, acc: &mut [f32], src: &[f32], from: bool) {
            if from {
                reduce_from_portable(op, acc, src);
            } else {
                reduce_into_portable(op, acc, src);
            }
        }
        let mut all: Vec<(&'static str, Path)> =
            vec![("dispatched", dispatched), ("portable", portable)];
        #[cfg(target_arch = "x86_64")]
        {
            fn sse2(op: ReduceOp, acc: &mut [f32], src: &[f32], from: bool) {
                // SAFETY: SSE2 is the x86_64 baseline.
                unsafe { x86::sse2::reduce(op, acc, src, from) }
            }
            all.push(("sse2", sse2));
            if std::arch::is_x86_feature_detected!("avx2") {
                fn avx2(op: ReduceOp, acc: &mut [f32], src: &[f32], from: bool) {
                    // SAFETY: gated on the feature check above.
                    unsafe { x86::avx2::reduce(op, acc, src, from) }
                }
                all.push(("avx2", avx2));
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            fn neon(op: ReduceOp, acc: &mut [f32], src: &[f32], from: bool) {
                // SAFETY: NEON is the aarch64 baseline.
                unsafe { arm::reduce(op, acc, src, from) }
            }
            all.push(("neon", neon));
        }
        all
    }

    /// Every executable SIMD path is bit-identical to the scalar
    /// dispatch loop for every operator and both operand orders, across
    /// lengths that exercise vector bodies and scalar tails, on inputs
    /// spiked with NaNs and signed-zero ties.
    #[test]
    fn matches_scalar_oracle_bitwise() {
        for (name, path) in paths() {
            for op in OPS {
                for n in SIZES {
                    for from in [false, true] {
                        let src = spiked(n as u32 + 1, n);
                        let mut fast = spiked(7, n);
                        let mut slow = fast.clone();
                        path(op, &mut fast, &src, from);
                        for (a, &b) in slow.iter_mut().zip(&src) {
                            *a = if from {
                                op.apply(b, *a)
                            } else {
                                op.apply(*a, b)
                            };
                        }
                        assert_bits_eq(&fast, &slow, &format!("{name} {op:?} n={n} from={from}"));
                    }
                }
            }
        }
    }

    /// Mismatched lengths reduce only the common prefix.
    #[test]
    fn common_prefix_only() {
        let mut acc = vec![1.0; 4];
        reduce_into_slice(ReduceOp::Sum, &mut acc, &[1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 2.0, 1.0, 1.0]);
        let mut acc = vec![1.0; 2];
        reduce_into_slice(ReduceOp::Sum, &mut acc, &[1.0; 10]);
        assert_eq!(acc, vec![2.0, 2.0]);
    }

    /// NaN / max semantics follow `f32::max` exactly in both operand
    /// orders, at every lane position of every available path.
    #[test]
    fn nan_handling_matches_apply() {
        for (name, path) in paths() {
            for lane in 0..9 {
                let mut fast = pseudo(11, 9);
                fast[lane] = f32::NAN;
                let mut src = pseudo(12, 9);
                src[8 - lane] = f32::NAN;
                let mut slow = fast.clone();
                path(ReduceOp::Max, &mut fast, &src, false);
                reduce_into_slice_scalar(ReduceOp::Max, &mut slow, &src);
                assert_bits_eq(&fast, &slow, &format!("{name} lane={lane}"));
            }
        }
    }

    /// Signed-zero ties pick the same operand as the scalar lowering.
    #[test]
    fn signed_zero_ties_match_scalar() {
        for (name, path) in paths() {
            for op in [ReduceOp::Max, ReduceOp::Min] {
                for from in [false, true] {
                    let mut fast = vec![-0.0f32, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0];
                    let src = vec![0.0f32, -0.0, -0.0, 0.0, 0.0, -0.0, 0.0, -0.0, 0.0];
                    let mut slow = fast.clone();
                    path(op, &mut fast, &src, from);
                    for (a, &b) in slow.iter_mut().zip(&src) {
                        *a = if from {
                            op.apply(b, *a)
                        } else {
                            op.apply(*a, b)
                        };
                    }
                    assert_bits_eq(&fast, &slow, &format!("{name} {op:?} from={from}"));
                }
            }
        }
    }

    /// The dispatcher never picks a level the build can't execute, and
    /// the level is stable across calls.
    #[test]
    fn simd_level_is_supported_and_stable() {
        let l = simd_level();
        assert!(supported(l), "{l:?}");
        assert_eq!(l, simd_level());
        assert!(!l.name().is_empty());
    }
}
