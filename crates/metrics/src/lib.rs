//! Always-on, low-overhead metrics for the MSCCL runtime and simulator.
//!
//! The runtime interpreter dedicates one OS thread per IR thread block, so
//! a single shared atomic per metric would bounce its cache line between
//! every worker on every instruction. Instead each [`Counter`] and
//! [`Histogram`] is *sharded*: one cache-line-padded slot per worker
//! thread, written with a relaxed `fetch_add` (no contention, no fences on
//! x86), and summed only when a [`Registry::snapshot`] is taken. The
//! simulator reuses the same vocabulary with a single shard and virtual
//! timestamps, which is what lets `msccl profile` compare measured and
//! modeled runs sample-for-sample.
//!
//! Metrics are identified by a name plus a sorted label set, Prometheus
//! style. Registration (name lookup, allocation) happens once at run
//! setup behind a mutex; workers hold `Arc` handles and never touch the
//! registry on the hot path. Snapshots are plain data — deterministically
//! ordered, mergeable, and exportable as JSON or Prometheus text
//! exposition (see [`MetricsSnapshot`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

mod snapshot;

pub use snapshot::{HistogramSnapshot, MetricsSnapshot, Sample, SampleValue};

/// The shared metric vocabulary. The runtime, the simulator and the
/// offline trace analyzer all register these exact names, which is what
/// makes their snapshots comparable sample-for-sample: logical counters
/// (bytes, sends, receives per channel) must agree between executors,
/// while time-valued metrics differ only in clock domain (wall vs.
/// virtual nanoseconds).
pub mod names {
    /// Counter, labels `src`/`dst`/`channel`: payload bytes deposited.
    pub const BYTES_SENT: &str = "msccl_bytes_sent_total";
    /// Counter, labels `src`/`dst`/`channel`: payload bytes consumed.
    pub const BYTES_RECEIVED: &str = "msccl_bytes_received_total";
    /// Counter, labels `src`/`dst`/`channel`: tiles deposited.
    pub const SENDS: &str = "msccl_sends_total";
    /// Counter, labels `src`/`dst`/`channel`: tiles consumed.
    pub const RECVS: &str = "msccl_recvs_total";
    /// Counter, no labels: nanoseconds blocked on semaphore waits.
    pub const SEM_WAIT_NS: &str = "msccl_sem_wait_ns_total";
    /// Counter, no labels: nanoseconds blocked on full send FIFOs.
    pub const FIFO_SEND_BLOCK_NS: &str = "msccl_fifo_send_block_ns_total";
    /// Counter, no labels: nanoseconds blocked on empty receive FIFOs.
    pub const FIFO_RECV_BLOCK_NS: &str = "msccl_fifo_recv_block_ns_total";
    /// Gauge, labels `src`/`dst`/`channel`: peak FIFO occupancy (slots).
    pub const FIFO_PEAK_OCCUPANCY: &str = "msccl_fifo_peak_occupancy";
    /// Histogram, label `op`: per-instruction busy latency, nanoseconds.
    /// The live runtime samples observations (one in eight per worker) —
    /// clock reads are the expensive part of its instrumentation — so
    /// the histogram's `count` is below the exact [`INSTRUCTIONS`]
    /// counter; the simulator and trace-derived snapshots record every
    /// instruction, virtual time being free.
    pub const INSTR_LATENCY_NS: &str = "msccl_instr_latency_ns";
    /// Counter, label `op`: instructions completed.
    pub const INSTRUCTIONS: &str = "msccl_instructions_total";
    /// Counter, no labels: fresh tile-buffer allocations (pool misses).
    pub const POOL_ALLOCATED: &str = "msccl_pool_tiles_allocated_total";
    /// Counter, no labels: takes served from recycled buffers (hits).
    pub const POOL_REUSED: &str = "msccl_pool_tiles_reused_total";
    /// Counter, no labels: execution attempts made by the recovery layer.
    pub const RECOVERY_ATTEMPTS: &str = "msccl_recovery_attempts_total";
    /// Counter, no labels: transient failures that triggered a retry.
    pub const RECOVERY_RETRIES: &str = "msccl_recovery_retries_total";
    /// Counter, no labels: switches to the fallback algorithm.
    pub const RECOVERY_FALLBACKS: &str = "msccl_recovery_fallbacks_total";
    /// Counter, no labels: attempts cancelled by a worker failure.
    pub const RECOVERY_CANCELLATIONS: &str = "msccl_recovery_cancellations_total";
    /// Counter, no labels: transient failures recovered by resuming from
    /// the last published epoch checkpoint instead of a full retry.
    pub const RECOVERY_RESUMES: &str = "msccl_recovery_resumes_total";
    /// Counter, no labels: epoch checkpoints published (one per rank per
    /// epoch boundary crossed without a fault).
    pub const EPOCHS_COMPLETED: &str = "msccl_epochs_completed_total";
    /// Counter, no labels: instruction executions skipped by epoch
    /// resume (the per-block watermarks the resumed attempt started at).
    pub const STEPS_RESUMED: &str = "msccl_steps_resumed_total";
    /// Counter, no labels: instruction executions redone after a failure
    /// (work the failed attempt had completed past its resume point).
    pub const STEPS_REDONE: &str = "msccl_steps_redone_total";
    /// Counter, no labels: tasks taken from another worker's deque by the
    /// work-stealing scheduler.
    pub const SCHED_STEALS: &str = "msccl_sched_steals_total";
    /// Counter, no labels: times a worker parked with nothing runnable.
    pub const SCHED_PARKS: &str = "msccl_sched_parks_total";
    /// Gauge, no labels: peak number of simultaneously runnable tasks
    /// (queue depth high-watermark across all deques and the injector).
    pub const SCHED_RUNNABLE_PEAK: &str = "msccl_sched_runnable_peak";
    /// Histogram, no labels: nanoseconds per worker park episode. Read
    /// together with [`SCHED_PARKS`], it distinguishes "parked often"
    /// (many short observations) from "parked long" (few buckets far to
    /// the right) — the two look identical in the bare counter.
    pub const SCHED_PARK_NS: &str = "msccl_sched_park_ns";
    /// Counter, label `tenant`: requests admitted by the service daemon.
    pub const SERVICE_ADMITTED: &str = "msccl_service_admitted_total";
    /// Counter, label `tenant`: admitted requests completed successfully.
    pub const SERVICE_SERVED: &str = "msccl_service_served_total";
    /// Counter, labels `tenant`/`reason`: requests shed at admission
    /// (`rate_limited`, `queue_full`, `draining`).
    pub const SERVICE_SHED: &str = "msccl_service_shed_total";
    /// Counter, label `tenant`: admitted requests that failed in
    /// execution (deadline, fault, verification).
    pub const SERVICE_FAILED: &str = "msccl_service_failed_total";
    /// Counter, no labels: compile-cache hits on admission.
    pub const SERVICE_CACHE_HITS: &str = "msccl_service_cache_hits_total";
    /// Counter, no labels: compile-cache misses (fresh compiles).
    pub const SERVICE_CACHE_MISSES: &str = "msccl_service_cache_misses_total";
    /// Counter, no labels: cache entries evicted by LRU pressure.
    pub const SERVICE_CACHE_EVICTIONS: &str = "msccl_service_cache_evictions_total";
    /// Gauge, no labels: requests queued across all tenants right now.
    pub const SERVICE_QUEUE_DEPTH: &str = "msccl_service_queue_depth";
    /// Gauge, no labels: requests executing right now.
    pub const SERVICE_INFLIGHT: &str = "msccl_service_inflight";
    /// Histogram, no labels: admitted-request end-to-end latency
    /// (queue wait + execution), microseconds.
    pub const SERVICE_LATENCY_US: &str = "msccl_service_latency_us";
}

/// Number of log2 buckets in every [`Histogram`]. Bucket `0` holds the
/// value `0`; bucket `b >= 1` holds values in `[2^(b-1), 2^b)`; the last
/// bucket absorbs everything from `2^(BUCKETS-2)` up.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value (see [`BUCKETS`]).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket, or `None` for the open-ended last
/// bucket (rendered `+Inf` in expositions).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    match index {
        0 => Some(0),
        b if b < BUCKETS - 1 => Some((1u64 << b) - 1),
        _ => None,
    }
}

/// One cache line worth of counter slot, so two workers' shards never
/// share a line. 128 bytes covers adjacent-line prefetchers.
#[repr(align(128))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotonic sharded counter. `add` is a relaxed atomic add on the
/// caller's own shard; `value` folds all shards at read time.
pub struct Counter {
    shards: Box<[PaddedU64]>,
}

impl Counter {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| PaddedU64::default()).collect(),
        }
    }

    /// Adds `v` on the given worker shard (wrapped into range, so any
    /// thread index is safe to pass).
    #[inline]
    pub fn add(&self, shard: usize, v: u64) {
        self.shards[shard % self.shards.len()]
            .0
            .fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one on the given worker shard.
    #[inline]
    pub fn inc(&self, shard: usize) {
        self.add(shard, 1);
    }

    /// Sum over all shards. Concurrent adds may or may not be included.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard. Only meaningful between runs, with no
    /// concurrent writers.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// Zeroes one worker's shard. Safe concurrently with *other* shards'
    /// writers: each worker can reset its own slice at startup while its
    /// peers are already counting.
    pub fn reset_shard(&self, shard: usize) {
        self.shards[shard % self.shards.len()]
            .0
            .store(0, Ordering::Relaxed);
    }
}

/// Last-write or high-watermark value. Unsharded: gauges are updated at
/// instrumentation points that already hold a lock (FIFO enqueue) or are
/// rare (run setup), so a single relaxed atomic is cheap enough.
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high watermark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge. Only meaningful between runs, with no
    /// concurrent writers.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Per-shard histogram state: fixed log2 buckets plus count and sum.
/// Aligned so shards of the same histogram never share a cache line; a
/// shard has a single writer, so its three relaxed adds never contend.
#[repr(align(128))]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Sharded fixed-bucket log2 histogram (e.g. instruction latency in
/// nanoseconds). Same sharding discipline as [`Counter`].
pub struct Histogram {
    shards: Box<[HistShard]>,
}

impl Histogram {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| HistShard::new()).collect(),
        }
    }

    /// Records one observation on the given worker shard.
    #[inline]
    pub fn record(&self, shard: usize, value: u64) {
        let s = &self.shards[shard % self.shards.len()];
        s.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Merges `count` pre-bucketed observations summing to `sum` into
    /// `bucket` on the given shard. This is the bulk-import path for
    /// subsystems that keep their own bucket arrays on the hot path (the
    /// scheduler's park-time buckets) and fold them into the registry
    /// once per run.
    pub fn record_bucketed(&self, shard: usize, bucket: usize, count: u64, sum: u64) {
        let s = &self.shards[shard % self.shards.len()];
        s.buckets[bucket.min(BUCKETS - 1)].fetch_add(count, Ordering::Relaxed);
        s.count.fetch_add(count, Ordering::Relaxed);
        s.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Total observations across shards.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values across shards.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.sum.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard's buckets, count and sum. Only meaningful
    /// between runs, with no concurrent writers.
    pub fn reset(&self) {
        for s in &self.shards {
            Self::reset_one(s);
        }
    }

    /// Zeroes one worker's shard (see [`Counter::reset_shard`]).
    pub fn reset_shard(&self, shard: usize) {
        Self::reset_one(&self.shards[shard % self.shards.len()]);
    }

    fn reset_one(s: &HistShard) {
        // An untouched shard costs one load instead of 66 stores.
        if s.count.load(Ordering::Relaxed) == 0 {
            return;
        }
        for b in &s.buckets {
            b.store(0, Ordering::Relaxed);
        }
        s.count.store(0, Ordering::Relaxed);
        s.sum.store(0, Ordering::Relaxed);
    }

    fn merged_buckets(&self) -> Vec<(u8, u64)> {
        let mut out = Vec::new();
        for b in 0..BUCKETS {
            let total: u64 = self
                .shards
                .iter()
                .map(|s| s.buckets[b].load(Ordering::Relaxed))
                .sum();
            if total > 0 {
                out.push((b as u8, total));
            }
        }
        out
    }
}

/// A metric's identity: name plus sorted `(label, value)` pairs.
type MetricKey = (String, Vec<(String, String)>);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The per-run metric store. Created with the run's worker count so every
/// sharded metric gets one slot per worker; handed out as `Arc` handles
/// at setup time so the hot path never locks.
pub struct Registry {
    shards: usize,
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

impl Registry {
    /// A registry whose sharded metrics have `shards` slots (at least 1;
    /// pass the worker-thread count).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Shard count sharded metrics are created with.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Returns the counter with this name and label set, creating it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the same name and labels were already registered as a
    /// different metric type.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new(self.shards))))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Returns the gauge with this name and label set, creating it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the same name and labels were already registered as a
    /// different metric type.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Returns the histogram with this name and label set, creating it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the same name and labels were already registered as a
    /// different metric type.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(self.shards))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Folds every metric's shards into a deterministic, plain-data
    /// snapshot ordered by `(name, labels)`.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let samples = inner
            .iter()
            .map(|((name, labels), metric)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.value()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.value()),
                    Metric::Histogram(h) => SampleValue::Histogram(HistogramSnapshot {
                        buckets: h.merged_buckets(),
                        count: h.count(),
                        sum: h.sum(),
                    }),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Zeroes every registered metric in place, keeping all handles
    /// valid. This is what lets a long-lived registry (resolved once at
    /// setup) serve per-run snapshots without re-registering: reset at
    /// run start, snapshot at run end. Only meaningful with no
    /// concurrent writers.
    pub fn reset(&self) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for metric in inner.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_folds_shards() {
        let c = Counter::new(4);
        c.add(0, 5);
        c.add(3, 7);
        c.inc(9); // wraps to shard 1
        assert_eq!(c.value(), 13);
    }

    #[test]
    fn gauge_set_and_watermark() {
        let g = Gauge::new();
        g.set(4);
        g.set_max(2);
        assert_eq!(g.value(), 4);
        g.set_max(9);
        assert_eq!(g.value(), 9);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_their_indices() {
        for b in 0..BUCKETS - 1 {
            let hi = bucket_upper_bound(b).unwrap();
            assert_eq!(bucket_index(hi), b, "upper bound of bucket {b}");
            assert_eq!(bucket_index(hi + 1), b + 1, "first value past bucket {b}");
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::new(2);
        h.record(0, 0);
        h.record(1, 1000);
        h.record(0, 1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 2000);
        let buckets = h.merged_buckets();
        assert_eq!(buckets, vec![(0, 1), (bucket_index(1000) as u8, 2)]);
    }

    #[test]
    fn registry_reuses_handles_and_sorts_labels() {
        let r = Registry::new(2);
        let a = r.counter("x_total", &[("b", "2"), ("a", "1")]);
        let b = r.counter("x_total", &[("a", "1"), ("b", "2")]);
        a.inc(0);
        b.inc(1);
        assert_eq!(a.value(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(
            snap.samples[0].labels,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string())
            ]
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn registry_rejects_type_confusion() {
        let r = Registry::new(1);
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }
}
