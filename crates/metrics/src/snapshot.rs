//! Plain-data snapshots of a [`Registry`](crate::Registry): merged shard
//! values with deterministic ordering, a commutative merge, and JSON /
//! Prometheus text expositions.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{bucket_upper_bound, BUCKETS};

/// Folded state of one histogram: non-empty `(bucket index, count)` pairs
/// sorted by index, plus total count and value sum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(log2 bucket index, observation count)`.
    pub buckets: Vec<(u8, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    fn merged(&self, other: &Self) -> Self {
        let mut buckets: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(b, n) in &other.buckets {
            *buckets.entry(b).or_default() += n;
        }
        Self {
            buckets: buckets.into_iter().collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

/// One metric's folded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time or high-watermark value.
    Gauge(u64),
    /// Folded histogram.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    fn type_name(&self) -> &'static str {
        match self {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        }
    }

    fn merged(&self, other: &Self) -> Self {
        match (self, other) {
            (SampleValue::Counter(a), SampleValue::Counter(b)) => SampleValue::Counter(a + b),
            (SampleValue::Gauge(a), SampleValue::Gauge(b)) => SampleValue::Gauge(*a.max(b)),
            (SampleValue::Histogram(a), SampleValue::Histogram(b)) => {
                SampleValue::Histogram(a.merged(b))
            }
            (a, b) => panic!(
                "cannot merge {} sample with {} sample",
                a.type_name(),
                b.type_name()
            ),
        }
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (Prometheus conventions: `msccl_*_total`, `_ns`, …).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Folded value.
    pub value: SampleValue,
}

/// A deterministic, mergeable fold of every metric in a registry at one
/// point in time. Samples are sorted by `(name, labels)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// All samples, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Merges two snapshots: counters and histograms add, gauges keep the
    /// maximum (they are high watermarks in this codebase). Commutative
    /// and associative, so multi-attempt or multi-run folds are
    /// order-independent.
    ///
    /// # Panics
    ///
    /// Panics if the same `(name, labels)` appears with different metric
    /// types in the two snapshots.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let mut merged: BTreeMap<(String, Vec<(String, String)>), SampleValue> = self
            .samples
            .iter()
            .map(|s| ((s.name.clone(), s.labels.clone()), s.value.clone()))
            .collect();
        for s in &other.samples {
            let key = (s.name.clone(), s.labels.clone());
            match merged.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(s.value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let v = e.get().merged(&s.value);
                    e.insert(v);
                }
            }
        }
        Self {
            samples: merged
                .into_iter()
                .map(|((name, labels), value)| Sample {
                    name,
                    labels,
                    value,
                })
                .collect(),
        }
    }

    /// Looks up one sample by exact name and label set (labels in any
    /// order).
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| &s.value)
    }

    /// Counter value by name and labels, `0` if absent.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Sum of all counter samples with this name, across label sets.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// All samples whose name equals `name`, in label order.
    pub fn with_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> + 'a {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// JSON exposition: one object per sample with `name`, `labels`,
    /// `type`, and a type-appropriate value. Field order and float-free
    /// formatting are stable, so equal snapshots serialize byte-equal.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"samples\": [");
        for (i, sample) in self.samples.iter().enumerate() {
            let comma = if i + 1 == self.samples.len() { "" } else { "," };
            let mut labels = String::new();
            for (j, (k, v)) in sample.labels.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(labels, "{sep}\"{}\": \"{}\"", escape(k), escape(v));
            }
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"labels\": {{{labels}}}, \"type\": \"{}\", ",
                escape(&sample.name),
                sample.value.type_name()
            );
            match &sample.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    let _ = writeln!(s, "\"value\": {v}}}{comma}");
                }
                SampleValue::Histogram(h) => {
                    let mut buckets = String::new();
                    for (j, (b, n)) in h.buckets.iter().enumerate() {
                        let sep = if j == 0 { "" } else { ", " };
                        let _ = write!(
                            buckets,
                            "{sep}{{\"le\": \"{}\", \"count\": {n}}}",
                            le_label(*b as usize)
                        );
                    }
                    let _ = writeln!(
                        s,
                        "\"count\": {}, \"sum\": {}, \"buckets\": [{buckets}]}}{comma}",
                        h.count, h.sum
                    );
                }
            }
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Prometheus text exposition format. Histogram buckets are emitted
    /// cumulatively with `le` labels, ending in `+Inf`, per convention.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &self.samples {
            if last_name != Some(sample.name.as_str()) {
                let _ = writeln!(s, "# TYPE {} {}", sample.name, sample.value.type_name());
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    let _ = writeln!(s, "{}{} {v}", sample.name, label_set(&sample.labels, &[]));
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for &(b, n) in &h.buckets {
                        cumulative += n;
                        let le = le_label(b as usize);
                        let _ = writeln!(
                            s,
                            "{}_bucket{} {cumulative}",
                            sample.name,
                            label_set(&sample.labels, &[("le", &le)])
                        );
                    }
                    if h.buckets.last().map(|&(b, _)| b as usize) != Some(BUCKETS - 1) {
                        let _ = writeln!(
                            s,
                            "{}_bucket{} {}",
                            sample.name,
                            label_set(&sample.labels, &[("le", "+Inf")]),
                            h.count
                        );
                    }
                    let _ = writeln!(
                        s,
                        "{}_sum{} {}",
                        sample.name,
                        label_set(&sample.labels, &[]),
                        h.sum
                    );
                    let _ = writeln!(
                        s,
                        "{}_count{} {}",
                        sample.name,
                        label_set(&sample.labels, &[]),
                        h.count
                    );
                }
            }
        }
        s
    }
}

fn le_label(bucket: usize) -> String {
    match bucket_upper_bound(bucket) {
        Some(v) => v.to_string(),
        None => "+Inf".to_string(),
    }
}

fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{k}=\"{}\"", escape(v));
    }
    s.push('}');
    s
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new(2);
        r.counter("msccl_sends_total", &[("src", "0"), ("dst", "1")])
            .add(0, 3);
        r.gauge("msccl_fifo_peak_occupancy", &[("channel", "0")])
            .set_max(2);
        let h = r.histogram("msccl_instr_latency_ns", &[("op", "s")]);
        h.record(0, 0);
        h.record(1, 900);
        r
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let a = sample_registry().snapshot().to_json();
        let b = sample_registry().snapshot().to_json();
        assert_eq!(a, b);
        let fifo = a.find("msccl_fifo_peak_occupancy").unwrap();
        let hist = a.find("msccl_instr_latency_ns").unwrap();
        let ctr = a.find("msccl_sends_total").unwrap();
        assert!(fifo < hist && hist < ctr, "samples sorted by name");
        assert!(a.contains("\"type\": \"histogram\""));
        assert!(a.contains("\"le\": \"0\""));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE msccl_sends_total counter"));
        assert!(text.contains("msccl_sends_total{dst=\"1\",src=\"0\"} 3"));
        assert!(text.contains("# TYPE msccl_instr_latency_ns histogram"));
        assert!(text.contains("msccl_instr_latency_ns_bucket{op=\"s\",le=\"0\"} 1"));
        assert!(text.contains("msccl_instr_latency_ns_bucket{op=\"s\",le=\"+Inf\"} 2"));
        assert!(text.contains("msccl_instr_latency_ns_sum{op=\"s\"} 900"));
        assert!(text.contains("msccl_instr_latency_ns_count{op=\"s\"} 2"));
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        let m = a.merge(&b);
        assert_eq!(
            m.counter("msccl_sends_total", &[("src", "0"), ("dst", "1")]),
            6
        );
        match m.get("msccl_instr_latency_ns", &[("op", "s")]).unwrap() {
            SampleValue::Histogram(h) => {
                assert_eq!(h.count, 4);
                assert_eq!(h.sum, 1800);
            }
            other => panic!("unexpected {other:?}"),
        }
        match m
            .get("msccl_fifo_peak_occupancy", &[("channel", "0")])
            .unwrap()
        {
            SampleValue::Gauge(v) => assert_eq!(*v, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
