//! Property and stress tests for the sharded metric primitives.
//!
//! The always-on instrumentation only earns its keep if it is *exact*:
//! a relaxed-ordering bug that drops or double-counts an increment would
//! silently corrupt every profile the tooling above it produces. These
//! tests pin the three load-bearing guarantees:
//!
//! * sharded counters and histograms lose nothing under genuine
//!   multi-thread contention, including deliberately colliding shard
//!   indices (the wrap-around path);
//! * the log2 bucket layout is a partition of `u64` — every value lands
//!   in exactly one bucket and the published bucket bounds agree with
//!   the indexing function;
//! * snapshot merging is commutative and associative, so folding
//!   per-attempt or per-run snapshots in any order yields one answer.

use std::sync::Arc;

use msccl_metrics::{bucket_index, bucket_upper_bound, MetricsSnapshot, Registry, BUCKETS};
use proptest::prelude::*;

/// Many threads hammering the same counters through shared handles must
/// lose nothing. Half the threads use their own shard, half deliberately
/// alias onto shard `t % shards` via out-of-range indices, so both the
/// uncontended fast path and the contended wrap-around path are covered.
#[test]
fn concurrent_counter_increments_are_exact() {
    const THREADS: usize = 8;
    const OPS: u64 = 20_000;

    let registry = Registry::new(THREADS / 2); // force shard aliasing
    let by_one = registry.counter("stress_inc_total", &[]);
    let by_val = registry.counter("stress_add_total", &[]);
    let labeled: Vec<_> = (0..4)
        .map(|i| registry.counter("stress_labeled_total", &[("lane", &i.to_string())]))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let by_one = Arc::clone(&by_one);
            let by_val = Arc::clone(&by_val);
            let labeled = labeled.clone();
            scope.spawn(move || {
                for i in 0..OPS {
                    by_one.inc(t);
                    by_val.add(t, i % 7);
                    labeled[t % labeled.len()].inc(t);
                }
            });
        }
    });

    assert_eq!(by_one.value(), THREADS as u64 * OPS);
    assert_eq!(
        by_val.value(),
        THREADS as u64 * (0..OPS).map(|i| i % 7).sum::<u64>()
    );
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_total("stress_labeled_total"),
        THREADS as u64 * OPS
    );
    assert_eq!(snap.counter("stress_inc_total", &[]), by_one.value());
}

/// Histograms keep exact counts and sums under the same contention, and
/// the merged bucket counts sum back to the total observation count.
#[test]
fn concurrent_histogram_records_are_exact() {
    const THREADS: usize = 6;
    const OPS: u64 = 10_000;

    let registry = Registry::new(THREADS);
    let hist = registry.histogram("stress_latency_ns", &[]);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = Arc::clone(&hist);
            // A per-thread value pattern whose total we can state in
            // closed form: thread t records t, t+1, t+2, ...
            scope.spawn(move || {
                for i in 0..OPS {
                    hist.record(t, t as u64 + i);
                }
            });
        }
    });

    assert_eq!(hist.count(), THREADS as u64 * OPS);
    let expect_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..OPS).map(|i| t + i).sum::<u64>())
        .sum();
    assert_eq!(hist.sum(), expect_sum);

    let snap = registry.snapshot();
    match snap.get("stress_latency_ns", &[]).unwrap() {
        msccl_metrics::SampleValue::Histogram(h) => {
            assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), h.count);
            assert_eq!(h.count, hist.count());
            assert_eq!(h.sum, hist.sum());
        }
        other => panic!("unexpected sample {other:?}"),
    }
}

/// Builds a snapshot from `(name kind, lane, value)` triples. Counters
/// add, gauges high-watermark, histograms record — the same mixed
/// vocabulary the runtime registers.
fn snapshot_of(entries: &[(u8, u8, u64)]) -> MetricsSnapshot {
    let r = Registry::new(2);
    for (i, &(kind, lane, value)) in entries.iter().enumerate() {
        let lane = (lane % 3).to_string();
        let labels = [("lane", lane.as_str())];
        match kind % 3 {
            0 => r.counter("prop_counter_total", &labels).add(i, value),
            1 => r.gauge("prop_gauge", &labels).set_max(value),
            _ => r.histogram("prop_hist_ns", &labels).record(i, value),
        }
    }
    r.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The log2 buckets partition `u64`: every value falls inside its
    /// bucket's bounds, strictly above the previous bucket's upper bound,
    /// and the index function is monotone.
    #[test]
    fn bucket_layout_partitions_u64(value in 0u64..u64::MAX, delta in 1u64..1 << 20) {
        let b = bucket_index(value);
        prop_assert!(b < BUCKETS);

        // Within the claimed bounds of its own bucket.
        if let Some(hi) = bucket_upper_bound(b) {
            prop_assert!(value <= hi, "value {value} above bucket {b} bound {hi}");
        } else {
            prop_assert_eq!(b, BUCKETS - 1);
        }
        if b > 0 {
            let below = bucket_upper_bound(b - 1).expect("only the last bucket is unbounded");
            prop_assert!(value > below, "value {value} not above bucket {}'s bound {below}", b - 1);
        }

        // Monotone: a larger value never lands in an earlier bucket.
        prop_assert!(bucket_index(value.saturating_add(delta)) >= b);
    }

    /// A recorded observation lands in exactly the bucket the public
    /// indexing function names, with count and sum exact.
    #[test]
    fn histogram_routes_values_to_indexed_bucket(
        values in proptest::collection::vec(0u64..1 << 40, 1..40),
        shard in 0usize..8,
    ) {
        let r = Registry::new(4);
        let h = r.histogram("prop_route_ns", &[]);
        for &v in &values {
            h.record(shard, v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());

        let mut want: Vec<(u8, u64)> = Vec::new();
        let mut sorted: Vec<usize> = values.iter().map(|&v| bucket_index(v)).collect();
        sorted.sort_unstable();
        for b in sorted {
            match want.last_mut() {
                Some((last, n)) if *last as usize == b => *n += 1,
                _ => want.push((b as u8, 1)),
            }
        }
        match r.snapshot().get("prop_route_ns", &[]).unwrap() {
            msccl_metrics::SampleValue::Histogram(hs) => {
                prop_assert_eq!(&hs.buckets, &want);
            }
            other => prop_assert!(false, "unexpected sample {:?}", other),
        }
    }

    /// Merging snapshots is commutative and associative, and merging with
    /// the empty snapshot is the identity — so folding any number of
    /// per-run snapshots gives one deterministic total regardless of
    /// order or grouping.
    #[test]
    fn snapshot_merge_is_order_independent(
        a in proptest::collection::vec((0u8..3, 0u8..3, 0u64..1 << 30), 0..12),
        b in proptest::collection::vec((0u8..3, 0u8..3, 0u64..1 << 30), 0..12),
        c in proptest::collection::vec((0u8..3, 0u8..3, 0u64..1 << 30), 0..12),
    ) {
        let (a, b, c) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        prop_assert_eq!(a.merge(&MetricsSnapshot::default()), a.clone());

        // Equal snapshots serialize byte-equal, so order independence
        // extends through the JSON exposition.
        prop_assert_eq!(a.merge(&b).to_json(), b.merge(&a).to_json());
    }
}
