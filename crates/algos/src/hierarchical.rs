//! Hierarchical AllReduce — the paper's running example (Figure 3, §2).
//!
//! For `N` nodes with `G` GPUs each, the input splits into `N × G` chunks
//! and the algorithm proceeds in four phases: an intra-node ReduceScatter,
//! an inter-node ReduceScatter, an inter-node AllGather and an intra-node
//! AllGather, all expressed with the Ring helpers of Figure 3b.
//!
//! Scheduling follows §5.1: the intra-node ReduceScatters run on channel 0,
//! the inter-node phases on channel 1, and the intra-node AllGathers on
//! channel 2; the intra-node phases are chunk-parallelized by `N`.

use mscclang::{Collective, Program, Result};

use crate::ring::{ring_all_gather, ring_reduce_scatter};

/// Builds the hierarchical AllReduce for `num_nodes` nodes of
/// `gpus_per_node` GPUs (Figure 3a).
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics unless both dimensions are at least 2 (a single node has no
/// inter-node phase; a single GPU per node has no intra-node phase).
pub fn hierarchical_all_reduce(num_nodes: usize, gpus_per_node: usize) -> Result<Program> {
    let (n, g) = (num_nodes, gpus_per_node);
    assert!(
        n >= 2 && g >= 2,
        "hierarchical allreduce needs >= 2 nodes and >= 2 GPUs per node"
    );
    let coll = Collective::all_reduce(n * g, n * g, true);
    let mut p = Program::new("hierarchical_allreduce", coll);

    // Intra-node ReduceScatter (channel 0, parallelized by N).
    for node in 0..n {
        let local_ranks: Vec<usize> = (0..g).map(|i| i + node * g).collect();
        p.parallelize(n, |p| ring_reduce_scatter(p, &local_ranks, 0, n, 0))?;
    }

    // Inter-node ReduceScatter + AllGather (channel 1).
    for gpu in 0..g {
        let cross_ranks: Vec<usize> = (0..n).map(|i| i * g + gpu).collect();
        ring_reduce_scatter(&mut p, &cross_ranks, gpu * n, 1, 1)?;
        ring_all_gather_scattered(&mut p, &cross_ranks, gpu * n, 1, 1)?;
    }

    // Intra-node AllGather (channel 2, parallelized by N).
    for node in 0..n {
        let local_ranks: Vec<usize> = (0..g).map(|i| i + node * g).collect();
        p.parallelize(n, |p| ring_all_gather_scattered(p, &local_ranks, 0, n, 2))?;
    }
    Ok(p)
}

/// Ring AllGather matching the data placement a ring ReduceScatter leaves
/// behind: block `r` starts on ring member `r` (where the ReduceScatter
/// finished) instead of being that member's original data.
fn ring_all_gather_scattered(
    p: &mut Program,
    ranks: &[usize],
    offset: usize,
    count: usize,
    channel: usize,
) -> Result<()> {
    ring_all_gather(p, ranks, offset, count, channel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, verify, CompileOptions, OpCode};

    #[test]
    fn validates_for_paper_example_dimensions() {
        // Figure 1 uses N = 2 nodes and G = 3 GPUs.
        let p = hierarchical_all_reduce(2, 3).unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn compiles_and_verifies() {
        for (n, g) in [(2, 2), (2, 3), (3, 2)] {
            let p = hierarchical_all_reduce(n, g).unwrap();
            let ir = compile(&p, &CompileOptions::default()).unwrap();
            assert_eq!(ir.num_ranks(), n * g);
            // Channel directives 0..2 are honored (plus instance shifts
            // from the parallelize scopes).
            assert!(ir.num_channels >= 3);
        }
    }

    #[test]
    fn intra_node_phases_are_parallelized() {
        let p = hierarchical_all_reduce(2, 2).unwrap();
        // Intra ops carry fragment factor 2, inter ops factor 1.
        let intra = p.ops().iter().filter(|o| o.fragment_factor == 2).count();
        let inter = p.ops().iter().filter(|o| o.fragment_factor == 1).count();
        assert!(intra > 0 && inter > 0);
    }

    #[test]
    fn uses_fused_reductions() {
        let p = hierarchical_all_reduce(2, 3).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let fused = ir
            .gpus
            .iter()
            .flat_map(|g| &g.threadblocks)
            .flat_map(|t| &t.instructions)
            .filter(|i| {
                matches!(
                    i.op,
                    OpCode::RecvReduceCopySend | OpCode::RecvReduceSend | OpCode::RecvCopySend
                )
            })
            .count();
        assert!(
            fused > 0,
            "hierarchical allreduce should contain fused instructions"
        );
    }

    #[test]
    fn verifies_with_extra_instances() {
        let p = hierarchical_all_reduce(2, 2).unwrap();
        let ir = compile(&p, &CompileOptions::default().with_instances(2)).unwrap();
        verify::check(&ir, &verify::VerifyOptions::default()).unwrap();
    }
}
