//! Rooted collectives: Broadcast, Reduce, Gather and Scatter.
//!
//! These are not part of the paper's evaluation, but they complete the MPI
//! surface the DSL supports (§3.2 defines collectives purely by pre- and
//! postconditions, so nothing new is needed in the compiler) and exercise
//! postconditions with unconstrained entries.

use mscclang::{BufferKind, Collective, Program, Result};

/// Binomial-tree Broadcast from `root`: at step `k` every rank that
/// already holds the data forwards it to the rank `2^k` positions away
/// (in root-relative numbering), reaching all ranks in `ceil(log2 R)`
/// steps.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if dimensions are zero or `root` is out of range.
pub fn binomial_broadcast(num_ranks: usize, chunk_factor: usize, root: usize) -> Result<Program> {
    assert!(num_ranks >= 2 && chunk_factor >= 1 && root < num_ranks);
    let coll = Collective::broadcast(num_ranks, chunk_factor, root);
    let mut p = Program::new("binomial_broadcast", coll);
    // Root seeds its own output.
    let c = p.chunk(root, BufferKind::Input, 0, chunk_factor)?;
    let _ = p.copy(&c, root, BufferKind::Output, 0)?;
    let mut covered = 1usize;
    while covered < num_ranks {
        for offset in 0..covered.min(num_ranks - covered) {
            let from = (root + offset) % num_ranks;
            let to = (root + covered + offset) % num_ranks;
            let c = p.chunk(from, BufferKind::Output, 0, chunk_factor)?;
            let _ = p.copy(&c, to, BufferKind::Output, 0)?;
        }
        covered *= 2;
    }
    Ok(p)
}

/// Binomial-tree Reduce to `root`: the mirror image of the broadcast —
/// partial sums combine pairwise until everything lands on the root.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if dimensions are zero or `root` is out of range.
pub fn binomial_reduce(num_ranks: usize, chunk_factor: usize, root: usize) -> Result<Program> {
    assert!(num_ranks >= 2 && chunk_factor >= 1 && root < num_ranks);
    let coll = Collective::reduce(num_ranks, chunk_factor, root);
    let mut p = Program::new("binomial_reduce", coll);
    // Work in the input buffers (root-relative rank `i` is
    // `(root + i) % R`), then publish the root's total.
    let mut stride = 1usize;
    while stride < num_ranks {
        let mut offset = 0;
        while offset + stride < num_ranks {
            let dst_rank = (root + offset) % num_ranks;
            let src_rank = (root + offset + stride) % num_ranks;
            let dst = p.chunk(dst_rank, BufferKind::Input, 0, chunk_factor)?;
            let src = p.chunk(src_rank, BufferKind::Input, 0, chunk_factor)?;
            let _ = p.reduce(&dst, &src)?;
            offset += stride * 2;
        }
        stride *= 2;
    }
    let total = p.chunk(root, BufferKind::Input, 0, chunk_factor)?;
    let _ = p.copy(&total, root, BufferKind::Output, 0)?;
    Ok(p)
}

/// Linear Gather to `root`: every rank sends its buffer directly.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if dimensions are zero or `root` is out of range.
pub fn linear_gather(num_ranks: usize, chunk_factor: usize, root: usize) -> Result<Program> {
    assert!(num_ranks >= 1 && chunk_factor >= 1 && root < num_ranks);
    let coll = Collective::gather(num_ranks, chunk_factor, root);
    let mut p = Program::new("linear_gather", coll);
    for r in 0..num_ranks {
        let c = p.chunk(r, BufferKind::Input, 0, chunk_factor)?;
        let _ = p.copy(&c, root, BufferKind::Output, r * chunk_factor)?;
    }
    Ok(p)
}

/// Linear Scatter from `root`: the root sends block `r` to rank `r`.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if dimensions are zero or `root` is out of range.
pub fn linear_scatter(num_ranks: usize, chunk_factor: usize, root: usize) -> Result<Program> {
    assert!(num_ranks >= 1 && chunk_factor >= 1 && root < num_ranks);
    let coll = Collective::scatter(num_ranks, chunk_factor, root);
    let mut p = Program::new("linear_scatter", coll);
    for r in 0..num_ranks {
        let c = p.chunk(root, BufferKind::Input, r * chunk_factor, chunk_factor)?;
        let _ = p.copy(&c, r, BufferKind::Output, 0)?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions};

    #[test]
    fn broadcast_validates_for_all_roots_and_sizes() {
        for n in [2, 3, 5, 8] {
            for root in [0, n - 1] {
                let p = binomial_broadcast(n, 2, root).unwrap();
                p.validate().unwrap();
                let _ = compile(&p, &CompileOptions::default()).unwrap();
            }
        }
    }

    #[test]
    fn broadcast_depth_is_logarithmic() {
        // 8 ranks: 1 seed copy + 7 forwards, longest chain 3 hops.
        let p = binomial_broadcast(8, 1, 0).unwrap();
        assert_eq!(p.ops().len(), 8);
    }

    #[test]
    fn reduce_validates_for_all_roots_and_sizes() {
        for n in [2, 3, 5, 8] {
            for root in [0, n / 2] {
                let p = binomial_reduce(n, 2, root).unwrap();
                p.validate().unwrap();
                let _ = compile(&p, &CompileOptions::default()).unwrap();
            }
        }
    }

    #[test]
    fn gather_and_scatter_validate() {
        for n in [1, 2, 4, 6] {
            let g = linear_gather(n, 2, 0).unwrap();
            g.validate().unwrap();
            let s = linear_scatter(n, 2, n - 1).unwrap();
            s.validate().unwrap();
        }
        let _ = compile(&linear_gather(4, 1, 2).unwrap(), &CompileOptions::default()).unwrap();
        let _ = compile(
            &linear_scatter(4, 1, 2).unwrap(),
            &CompileOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn scatter_then_gather_compose_via_scratch_free_programs() {
        // Both compile with instances to confirm refinement works on
        // rooted postconditions (unconstrained entries refine too).
        let p = binomial_broadcast(4, 1, 1).unwrap();
        let _ = compile(&p, &CompileOptions::default().with_instances(3)).unwrap();
    }
}
