//! AllToAll algorithms (§7.3, Figure 9).
//!
//! AllToAll transposes data between GPUs: chunk `i` on GPU `j` ends up on
//! GPU `i` at index `j`. The naive one-step algorithm sends one (small)
//! chunk between every pair of GPUs — expensive over InfiniBand, whose per
//! message overhead is high. The Two-Step algorithm first gathers, on each
//! GPU `(m, g)`, the chunks every GPU of node `m` wants to send to node
//! `n`'s GPU index `g`... more precisely it stages chunks in scratch so
//! that each cross-node transfer is a single **aggregated** send of `G`
//! chunks, cutting the number of IB messages from `(N·G)²` to `N²·G`.

use mscclang::{BufferKind, Collective, Program, Result};

/// Naive one-step AllToAll: a direct copy between every pair of GPUs.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn one_step_all_to_all(num_nodes: usize, gpus_per_node: usize) -> Result<Program> {
    let (n, g) = (num_nodes, gpus_per_node);
    assert!(n > 0 && g > 0);
    let num_ranks = n * g;
    let coll = Collective::all_to_all(num_ranks, 1);
    let mut p = Program::new("one_step_alltoall", coll);
    for src in 0..num_ranks {
        for dst in 0..num_ranks {
            let c = p.chunk(src, BufferKind::Input, dst, 1)?;
            let _ = p.copy(&c, dst, BufferKind::Output, src)?;
        }
    }
    Ok(p)
}

/// Two-Step AllToAll (Figure 9): scatter into per-destination scratch
/// blocks, then one aggregated IB send per (source GPU, destination node)
/// pair.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn two_step_all_to_all(num_nodes: usize, gpus_per_node: usize) -> Result<Program> {
    let (n_dim, g_dim) = (num_nodes, gpus_per_node);
    assert!(n_dim > 0 && g_dim > 0);
    let rank = |node: usize, gpu: usize| node * g_dim + gpu;
    let coll = Collective::all_to_all(n_dim * g_dim, 1);
    let mut p = Program::new("two_step_alltoall", coll);
    for n in 0..n_dim {
        for g in 0..g_dim {
            for m in 0..n_dim {
                for i in 0..g_dim {
                    let c = p.chunk(rank(m, i), BufferKind::Input, rank(n, g), 1)?;
                    if n == m {
                        // Intra-node chunks go straight to their output.
                        let _ = p.copy(&c, rank(n, g), BufferKind::Output, rank(m, i))?;
                    } else {
                        // Stage on (m, g) so the IB send can aggregate.
                        let _ = p.copy(&c, rank(m, g), BufferKind::Scratch, rank(n, i))?;
                    }
                }
                if n != m {
                    // Coalesced IB send of G chunks.
                    let c = p.chunk(rank(m, g), BufferKind::Scratch, n * g_dim, g_dim)?;
                    let _ = p.copy(&c, rank(n, g), BufferKind::Output, m * g_dim)?;
                }
            }
        }
    }
    Ok(p)
}

/// Three-Step AllToAll: the successor of Figure 9's Two-Step that
/// msccl-tools ships for very large clusters. Chunks bound for node `n`
/// first gather on the local *port GPU* `n % G`, cross InfiniBand as one
/// transfer of `G × G` chunks per node pair, and scatter to their final
/// GPUs on the destination node — cutting the IB message count from
/// `N²·G` (Two-Step) to `N·(N−1)` at the cost of an extra intra-node hop.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_nodes < 2` or `gpus_per_node == 0`.
pub fn three_step_all_to_all(num_nodes: usize, gpus_per_node: usize) -> Result<Program> {
    let (n_dim, g_dim) = (num_nodes, gpus_per_node);
    assert!(n_dim >= 2, "three-step alltoall targets multi-node systems");
    assert!(g_dim >= 1);
    let rank = |node: usize, gpu: usize| node * g_dim + gpu;
    let coll = Collective::all_to_all(n_dim * g_dim, 1);
    let mut p = Program::new("three_step_alltoall", coll);
    // Scratch layout on the port GPU (m, n % G) for destination node n:
    // slot (i, j) = chunk from source GPU i bound for destination GPU j,
    // at scratch index n*G*G + i*G + j (contiguous G*G block per node).
    for m in 0..n_dim {
        for n in 0..n_dim {
            if n == m {
                // Intra-node traffic goes direct.
                for i in 0..g_dim {
                    for j in 0..g_dim {
                        let c = p.chunk(rank(m, i), BufferKind::Input, rank(n, j), 1)?;
                        let _ = p.copy(&c, rank(n, j), BufferKind::Output, rank(m, i))?;
                    }
                }
                continue;
            }
            let port = n % g_dim;
            // Step 1: gather the G*G chunks onto the port GPU.
            for i in 0..g_dim {
                for j in 0..g_dim {
                    let c = p.chunk(rank(m, i), BufferKind::Input, rank(n, j), 1)?;
                    let _ = p.copy(
                        &c,
                        rank(m, port),
                        BufferKind::Scratch,
                        n * g_dim * g_dim + i * g_dim + j,
                    )?;
                }
            }
            // Step 2: one aggregated IB transfer for the whole node pair.
            let block = p.chunk(
                rank(m, port),
                BufferKind::Scratch,
                n * g_dim * g_dim,
                g_dim * g_dim,
            )?;
            let landing = rank(n, m % g_dim);
            let staged = p.copy(&block, landing, BufferKind::Scratch, m * g_dim * g_dim)?;
            let _ = staged;
            // Step 3: scatter to the destination GPUs.
            for i in 0..g_dim {
                for j in 0..g_dim {
                    let c = p.chunk(
                        landing,
                        BufferKind::Scratch,
                        m * g_dim * g_dim + i * g_dim + j,
                        1,
                    )?;
                    let _ = p.copy(&c, rank(n, j), BufferKind::Output, rank(m, i))?;
                }
            }
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions};

    #[test]
    fn one_step_validates() {
        for (n, g) in [(1, 4), (2, 2), (3, 2)] {
            let p = one_step_all_to_all(n, g).unwrap();
            p.validate().unwrap();
            let _ = compile(&p, &CompileOptions::default()).unwrap();
        }
    }

    #[test]
    fn two_step_validates() {
        for (n, g) in [(2, 2), (2, 3), (3, 2)] {
            let p = two_step_all_to_all(n, g).unwrap();
            p.validate().unwrap();
            let _ = compile(&p, &CompileOptions::default()).unwrap();
        }
    }

    #[test]
    fn two_step_aggregates_cross_node_sends() {
        let (n, g) = (2, 4);
        let p = two_step_all_to_all(n, g).unwrap();
        // Cross-node sends carry G chunks each.
        let aggregated = p
            .ops()
            .iter()
            .filter(|o| o.count == g && o.src.rank / g != o.dst.rank / g)
            .count();
        assert_eq!(aggregated, n * (n - 1) * g);
    }

    #[test]
    fn two_step_uses_fewer_cross_node_messages() {
        let (n, g) = (2, 4);
        let one = one_step_all_to_all(n, g).unwrap();
        let two = two_step_all_to_all(n, g).unwrap();
        let cross = |p: &mscclang::Program| {
            p.ops()
                .iter()
                .filter(|o| o.src.rank / g != o.dst.rank / g)
                .count()
        };
        // One-step: (n*g)^2 - n*g^2 cross messages; two-step: n*(n-1)*g.
        assert_eq!(cross(&one), (n * g) * (n * g) - n * g * g);
        assert_eq!(cross(&two), n * (n - 1) * g);
        assert!(cross(&two) < cross(&one));
    }

    #[test]
    fn three_step_validates() {
        for (n, g) in [(2, 2), (2, 3), (3, 2)] {
            let p = three_step_all_to_all(n, g).unwrap();
            p.validate().unwrap();
            let _ = compile(&p, &CompileOptions::default()).unwrap();
        }
    }

    #[test]
    fn three_step_respects_fifo_slots_at_scale() {
        // Regression: the gather phase piles many sends onto the port
        // GPU's connections; the scheduler must keep the outstanding
        // count within the FIFO budget or the runtime deadlocks (§6.1).
        let p = three_step_all_to_all(4, 8).unwrap();
        let ir = compile(
            &p,
            &CompileOptions::default()
                .with_verify(false)
                .with_max_tbs_per_rank(108),
        )
        .unwrap();
        let report = mscclang::verify::check(
            &ir,
            &mscclang::verify::VerifyOptions {
                slots: 8,
                check_races: false,
            },
        )
        .unwrap();
        assert!(report.max_queue_depth <= 8);
    }

    #[test]
    fn three_step_minimizes_ib_messages() {
        let (n, g) = (3, 4);
        let two = two_step_all_to_all(n, g).unwrap();
        let three = three_step_all_to_all(n, g).unwrap();
        let cross = |p: &mscclang::Program| {
            p.ops()
                .iter()
                .filter(|o| o.src.rank / g != o.dst.rank / g)
                .count()
        };
        assert_eq!(cross(&three), n * (n - 1));
        assert!(cross(&three) < cross(&two));
        // And each IB transfer carries G*G chunks.
        let max_count = three
            .ops()
            .iter()
            .filter(|o| o.src.rank / g != o.dst.rank / g)
            .map(|o| o.count)
            .max();
        assert_eq!(max_count, Some(g * g));
    }

    #[test]
    fn two_step_program_is_succinct() {
        // §7.3: the MSCCLang implementation is ~15 lines; ours traces the
        // same loop nest. Sanity-check the op count is the expected
        // closed form rather than something quadratic in chunks.
        let (n, g) = (2, 2);
        let p = two_step_all_to_all(n, g).unwrap();
        // scatter+direct ops: (n*g)^2, aggregated sends: n*(n-1)*g
        assert_eq!(p.ops().len(), (n * g) * (n * g) + n * (n - 1) * g);
    }
}
