//! Ring algorithms (Figure 3b, §7.1.1).
//!
//! A Ring AllReduce over `R` ranks divides each input buffer into `R`
//! chunks; every chunk traverses the logical ring twice — once reducing
//! (ReduceScatter) and once copying (AllGather). The MSCCLang
//! implementation from the paper distributes the single logical ring
//! across multiple channels by varying the channel of copy and reduce
//! operations, which lets transfers of different chunks overlap.

use mscclang::{BufferKind, Collective, Program, Result};

/// Ring ReduceScatter over `ranks` (Figure 3b).
///
/// Routes, for each position `r` in the ring, the chunks at
/// `offset + r*count` around the ring, reducing at every hop. The
/// reduction for position `r` starts at ring member `r + 1` and ends at
/// member `r`, leaving member `r` with the reduced block. The transfers
/// use `channel`.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
pub fn ring_reduce_scatter(
    p: &mut Program,
    ranks: &[usize],
    offset: usize,
    count: usize,
    channel: usize,
) -> Result<()> {
    let r_len = ranks.len();
    for r in 0..r_len {
        let index = offset + r * count;
        let mut c = p.chunk(ranks[(r + 1) % r_len], BufferKind::Input, index, count)?;
        for step in 1..r_len {
            let next = ranks[(step + r + 1) % r_len];
            let dst = p.chunk(next, BufferKind::Input, index, count)?;
            c = p.reduce_on(&dst, &c, channel)?;
        }
    }
    Ok(())
}

/// Ring AllGather over `ranks` (Figure 3b).
///
/// Routes each ring member's block at `offset + r*count` around the ring,
/// copying at every hop, on `channel`.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
pub fn ring_all_gather(
    p: &mut Program,
    ranks: &[usize],
    offset: usize,
    count: usize,
    channel: usize,
) -> Result<()> {
    let r_len = ranks.len();
    for r in 0..r_len {
        let index = offset + r * count;
        let mut c = p.chunk(ranks[r], BufferKind::Input, index, count)?;
        for step in 1..r_len {
            let next = ranks[(step + r) % r_len];
            c = p.copy_on(&c, next, BufferKind::Input, index, channel)?;
        }
    }
    Ok(())
}

/// In-place Ring AllReduce over `num_ranks` ranks: a ReduceScatter
/// followed by an AllGather, with the logical ring distributed across
/// `channels` channels (§7.1.1).
///
/// Chunk `r`'s ring runs entirely on channel `r % channels`, so with
/// `channels > 1` the rings for different chunks proceed in parallel on
/// redundant connections.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_ranks < 2` or `channels == 0`.
pub fn ring_all_reduce(num_ranks: usize, channels: usize) -> Result<Program> {
    assert!(num_ranks >= 2, "a ring needs at least two ranks");
    assert!(channels >= 1, "need at least one channel");
    let coll = Collective::all_reduce(num_ranks, num_ranks, true);
    let mut p = Program::new(format!("ring_allreduce_ch{channels}"), coll);
    let ranks: Vec<usize> = (0..num_ranks).collect();
    for r in 0..num_ranks {
        let ch = r % channels;
        // ReduceScatter leg for chunk r.
        let mut c = p.chunk(ranks[(r + 1) % num_ranks], BufferKind::Input, r, 1)?;
        for step in 1..num_ranks {
            let next = ranks[(step + r + 1) % num_ranks];
            let dst = p.chunk(next, BufferKind::Input, r, 1)?;
            c = p.reduce_on(&dst, &c, ch)?;
        }
        // AllGather leg for chunk r (starts at the rank holding the sum).
        for step in 0..(num_ranks - 1) {
            let next = ranks[(r + 1 + step) % num_ranks];
            c = p.copy_on(&c, next, BufferKind::Input, r, ch)?;
        }
    }
    Ok(p)
}

/// Standalone in-place Ring ReduceScatter program over `num_ranks` ranks
/// (`chunk_factor` chunks land on each rank).
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_ranks < 2` or `chunk_factor == 0`.
pub fn ring_reduce_scatter_program(num_ranks: usize, chunk_factor: usize) -> Result<Program> {
    assert!(num_ranks >= 2 && chunk_factor >= 1);
    let coll = Collective::reduce_scatter(num_ranks, chunk_factor, true);
    let mut p = Program::new("ring_reduce_scatter", coll);
    let ranks: Vec<usize> = (0..num_ranks).collect();
    // Block r (chunk_factor chunks) must end, fully reduced, on rank r:
    // start the lap at rank r+1 so it terminates at r.
    ring_reduce_scatter(&mut p, &ranks, 0, chunk_factor, 0)?;
    Ok(p)
}

/// Standalone in-place Ring AllGather program over `num_ranks` ranks
/// (each rank contributes `chunk_factor` chunks).
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_ranks < 2` or `chunk_factor == 0`.
pub fn ring_all_gather_program(num_ranks: usize, chunk_factor: usize) -> Result<Program> {
    assert!(num_ranks >= 2 && chunk_factor >= 1);
    let coll = Collective::all_gather(num_ranks, chunk_factor, true);
    let mut p = Program::new("ring_allgather", coll);
    for r in 0..num_ranks {
        let mut c = p.chunk(r, BufferKind::Input, 0, chunk_factor)?;
        for step in 1..num_ranks {
            let next = (r + step) % num_ranks;
            c = p.copy(&c, next, BufferKind::Output, r * chunk_factor)?;
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, verify, CompileOptions};

    #[test]
    fn ring_allreduce_validates_and_compiles() {
        for n in [2, 4, 8] {
            let p = ring_all_reduce(n, 1).unwrap();
            p.validate().unwrap();
            let ir = compile(&p, &CompileOptions::default()).unwrap();
            assert_eq!(ir.num_ranks(), n);
        }
    }

    #[test]
    fn multi_channel_ring_uses_more_channels() {
        let p1 = ring_all_reduce(8, 1).unwrap();
        let p4 = ring_all_reduce(8, 4).unwrap();
        let ir1 = compile(&p1, &CompileOptions::default()).unwrap();
        let ir4 = compile(&p4, &CompileOptions::default()).unwrap();
        assert_eq!(ir1.num_channels, 1);
        assert_eq!(ir4.num_channels, 4);
        // More channels means more thread blocks per rank.
        assert!(ir4.max_threadblocks_per_rank() > ir1.max_threadblocks_per_rank());
    }

    #[test]
    fn ring_with_instances_verifies() {
        let p = ring_all_reduce(4, 2).unwrap();
        let ir = compile(&p, &CompileOptions::default().with_instances(3)).unwrap();
        verify::check(&ir, &verify::VerifyOptions::default()).unwrap();
    }

    #[test]
    fn reduce_scatter_and_allgather_helpers_compose() {
        // Compose the Fig. 3b helpers directly into an AllReduce.
        let n = 4;
        let coll = Collective::all_reduce(n, n, true);
        let mut p = Program::new("composed", coll);
        let ranks: Vec<usize> = (0..n).collect();
        ring_reduce_scatter(&mut p, &ranks, 0, 1, 0).unwrap();
        ring_all_gather_from_scatter(&mut p, &ranks).unwrap();
        p.validate().unwrap();
    }

    /// AllGather step matching the state `ring_reduce_scatter` leaves: the
    /// reduced block `r` sits on ring member `r`.
    fn ring_all_gather_from_scatter(p: &mut Program, ranks: &[usize]) -> Result<()> {
        let n = ranks.len();
        for r in 0..n {
            let mut c = p.chunk(ranks[r], BufferKind::Input, r, 1)?;
            for step in 1..n {
                let next = ranks[(r + step) % n];
                c = p.copy(&c, next, BufferKind::Input, r)?;
            }
        }
        Ok(())
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn rejects_single_rank() {
        let _ = ring_all_reduce(1, 1);
    }

    #[test]
    fn standalone_reduce_scatter_validates() {
        for n in [2, 4, 5] {
            let p = ring_reduce_scatter_program(n, 2).unwrap();
            p.validate().unwrap();
            let _ = compile(&p, &CompileOptions::default()).unwrap();
        }
    }

    #[test]
    fn standalone_all_gather_validates() {
        for n in [2, 4, 5] {
            let p = ring_all_gather_program(n, 2).unwrap();
            p.validate().unwrap();
            let _ = compile(&p, &CompileOptions::default()).unwrap();
        }
    }
}
