//! AllToNext — the paper's custom collective (§7.4, Figure 10).
//!
//! GPU `i` sends a buffer to GPU `i + 1`; the last GPU sends nothing. A
//! naive implementation bottlenecks on the single InfiniBand connection at
//! each node boundary. AllToNext instead splits the buffer into `G` chunks
//! at every boundary, scatters them over the sending node's GPUs via
//! NVLink, crosses the boundary on **all** `G` IB connections in parallel,
//! and gathers on the receiving side.

use mscclang::{BufferKind, Collective, Program, Result};

/// Builds AllToNext for `num_nodes` nodes of `gpus_per_node` GPUs, with
/// one chunk per local GPU (`chunk_factor = G`) so boundary transfers can
/// use every IB link.
///
/// Scratch layout per rank: index 0 stages the outgoing boundary scatter,
/// index 1 stages the incoming boundary gather.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_nodes < 2` or `gpus_per_node == 0`.
pub fn all_to_next(num_nodes: usize, gpus_per_node: usize) -> Result<Program> {
    let (n_dim, g_dim) = (num_nodes, gpus_per_node);
    assert!(
        n_dim >= 2,
        "alltonext across nodes needs at least two nodes"
    );
    assert!(g_dim >= 1, "need at least one GPU per node");
    let rank = |node: usize, gpu: usize| node * g_dim + gpu;
    let num_ranks = n_dim * g_dim;
    let coll = Collective::all_to_next(num_ranks, g_dim);
    let mut p = Program::new("alltonext", coll);

    for src in 0..num_ranks - 1 {
        let dst = src + 1;
        if src / g_dim == dst / g_dim {
            // Same node: one direct NVLink copy of the whole buffer.
            let c = p.chunk(src, BufferKind::Input, 0, g_dim)?;
            let _ = p.copy(&c, dst, BufferKind::Output, 0)?;
        } else {
            // Node boundary: src = (n, G-1), dst = (n+1, 0).
            let node = src / g_dim;
            for g in 0..g_dim {
                let c = p.chunk(src, BufferKind::Input, g, 1)?;
                // Scatter chunk g onto GPU (node, g) over NVLink.
                let c = if rank(node, g) != src {
                    p.copy(&c, rank(node, g), BufferKind::Scratch, 0)?
                } else {
                    c
                };
                // Cross the boundary on GPU pair (node, g) -> (node+1, g).
                if rank(node + 1, g) == dst {
                    let _ = p.copy(&c, dst, BufferKind::Output, g)?;
                } else {
                    let c = p.copy(&c, rank(node + 1, g), BufferKind::Scratch, 1)?;
                    // Gather on the destination over NVLink.
                    let _ = p.copy(&c, dst, BufferKind::Output, g)?;
                }
            }
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions};

    #[test]
    fn validates_and_compiles() {
        for (n, g) in [(2, 2), (2, 3), (3, 4)] {
            let p = all_to_next(n, g).unwrap();
            p.validate().unwrap();
            let ir = compile(&p, &CompileOptions::default()).unwrap();
            assert_eq!(ir.num_ranks(), n * g);
        }
    }

    #[test]
    fn boundary_uses_all_gpu_pairs() {
        let (n, g) = (2, 4);
        let p = all_to_next(n, g).unwrap();
        // Cross-node ops: exactly g transfers over the boundary, one per
        // GPU pair.
        let cross: Vec<_> = p
            .ops()
            .iter()
            .filter(|o| o.src.rank / g != o.dst.rank / g)
            .collect();
        assert_eq!(cross.len(), g);
        let pairs: std::collections::HashSet<_> = cross
            .iter()
            .map(|o| (o.src.rank % g, o.dst.rank % g))
            .collect();
        assert_eq!(
            pairs.len(),
            g,
            "each boundary transfer uses a distinct GPU pair"
        );
    }

    #[test]
    fn intra_node_hops_are_whole_buffer() {
        let (n, g) = (2, 3);
        let p = all_to_next(n, g).unwrap();
        let whole = p.ops().iter().filter(|o| o.count == g).count();
        // G-1 intra-node hops per node.
        assert_eq!(whole, n * (g - 1));
    }

    #[test]
    fn works_with_instances() {
        let p = all_to_next(2, 2).unwrap();
        let _ = compile(&p, &CompileOptions::default().with_instances(4)).unwrap();
    }

    #[test]
    fn single_gpu_nodes_degenerate_to_direct_sends() {
        let p = all_to_next(3, 1).unwrap();
        p.validate().unwrap();
        assert_eq!(p.ops().len(), 2);
    }
}
