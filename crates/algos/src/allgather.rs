//! AllGather algorithms, including the hybrid-cube-mesh variant used for
//! the SCCL comparison (§7.5, Figure 11).
//!
//! Both algorithms here are *exchange* algorithms: in `log2(R)` steps each
//! rank swaps everything it holds with a partner, doubling its data. On a
//! switched fabric any partner order works (recursive doubling); on the
//! DGX-1 hybrid cube mesh the order `[4, 1, 2]` keeps every exchange on a
//! directly-wired NVLink pair, which is the structure of the SCCL
//! synthesized `(1,2,2)` AllGather this reproduction stands in for.

use mscclang::{BufferKind, Collective, Program, Result};

/// Exchange-pattern AllGather: at step `k`, rank `r` exchanges all blocks
/// it holds with rank `r ^ dists[k]`. Requires `dists` to be a
/// permutation-free basis covering `0..R` (e.g. powers of two).
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if the distances don't multiply out to the rank count or any
/// distance is zero.
fn exchange_all_gather(name: &str, num_ranks: usize, dists: &[usize]) -> Result<Program> {
    assert!(dists.iter().all(|&d| d > 0));
    assert_eq!(
        dists.iter().map(|_| 2usize).product::<usize>(),
        num_ranks,
        "each exchange step doubles coverage; need log2(R) steps"
    );
    let coll = Collective::all_gather(num_ranks, 1, true);
    let mut p = Program::new(name, coll);
    // Blocks each rank currently holds; starts with its own (the input
    // chunk aliases output block r in the in-place layout).
    let mut held: Vec<Vec<usize>> = (0..num_ranks).map(|r| vec![r]).collect();
    for &d in dists {
        let snapshot = held.clone();
        for r in 0..num_ranks {
            let partner = r ^ d;
            for &b in &snapshot[r] {
                let c = if snapshot[r].len() == 1 && b == r {
                    p.chunk(r, BufferKind::Input, 0, 1)?
                } else {
                    p.chunk(r, BufferKind::Output, b, 1)?
                };
                let _ = p.copy(&c, partner, BufferKind::Output, b)?;
            }
            held[r].extend(snapshot[partner].iter().copied());
        }
    }
    Ok(p)
}

/// Recursive-doubling AllGather over a power-of-two rank count: partners
/// at distance 1, 2, 4, ….
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_ranks` is not a power of two greater than 1.
pub fn recursive_doubling_all_gather(num_ranks: usize) -> Result<Program> {
    assert!(num_ranks.is_power_of_two() && num_ranks >= 2);
    let dists: Vec<usize> = (0..num_ranks.trailing_zeros())
        .map(|k| 1usize << k)
        .collect();
    exchange_all_gather("recursive_doubling_allgather", num_ranks, &dists)
}

/// The 3-step AllGather for the DGX-1 hybrid cube mesh (§7.5): exchange
/// across the boards first (distance 4, the double-width cross-board
/// links), then within each quad (distances 1 and 2). Every transfer runs
/// over a directly-connected NVLink pair.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
pub fn hcm_allgather() -> Result<Program> {
    exchange_all_gather("hcm_allgather", 8, &[4, 1, 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use msccl_topology::Machine;
    use mscclang::{compile, CompileOptions};

    #[test]
    fn recursive_doubling_validates() {
        for n in [2, 4, 8, 16] {
            let p = recursive_doubling_all_gather(n).unwrap();
            p.validate().unwrap();
            let _ = compile(&p, &CompileOptions::default()).unwrap();
        }
    }

    #[test]
    fn hcm_validates_and_compiles() {
        let p = hcm_allgather().unwrap();
        p.validate().unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        assert_eq!(ir.num_ranks(), 8);
    }

    #[test]
    fn hcm_only_uses_wired_pairs() {
        let machine = Machine::dgx1();
        let p = hcm_allgather().unwrap();
        for op in p.ops() {
            if op.src.rank != op.dst.rank {
                assert!(
                    machine.nvlink_lanes(op.src.rank, op.dst.rank) > 0,
                    "transfer {} -> {} has no direct NVLink on DGX-1",
                    op.src.rank,
                    op.dst.rank
                );
            }
        }
    }

    #[test]
    fn hcm_is_three_steps() {
        // Each rank sends 1 + 2 + 4 = 7 blocks total.
        let p = hcm_allgather().unwrap();
        assert_eq!(p.ops().len(), 8 * 7);
    }

    #[test]
    #[should_panic]
    fn recursive_doubling_rejects_non_power_of_two() {
        let _ = recursive_doubling_all_gather(6);
    }
}
