//! All Pairs AllReduce (§7.1.2).
//!
//! An algorithm the paper's authors developed while exploring algorithmic
//! optimizations for small buffers: each rank owns one chunk, gathers the
//! corresponding chunk from every other rank while summing, then broadcasts
//! the result back to everyone. All Pairs moves the same volume as Ring but
//! needs only **2 communication steps** instead of `2R − 2`, so it wins
//! when latency (α) dominates.

use mscclang::{BufferKind, Collective, Program, Result};

/// Builds the All Pairs AllReduce over `num_ranks` ranks (one chunk per
/// rank, in place).
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_ranks < 2`.
pub fn allpairs_all_reduce(num_ranks: usize) -> Result<Program> {
    assert!(num_ranks >= 2, "allpairs needs at least two ranks");
    let coll = Collective::all_reduce(num_ranks, num_ranks, true);
    let mut p = Program::new("allpairs_allreduce", coll);
    for r in 0..num_ranks {
        // Step 1: gather-and-sum chunk r from every rank onto rank r.
        let mut acc = p.chunk(r, BufferKind::Input, r, 1)?;
        for q in 0..num_ranks {
            if q == r {
                continue;
            }
            let c = p.chunk(q, BufferKind::Input, r, 1)?;
            acc = p.reduce(&acc, &c)?;
        }
        // Step 2: broadcast the sum to every other rank.
        for q in 0..num_ranks {
            if q == r {
                continue;
            }
            let _ = p.copy(&acc, q, BufferKind::Input, r)?;
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions, OpCode};

    #[test]
    fn validates_and_compiles() {
        for n in [2, 4, 8] {
            let p = allpairs_all_reduce(n).unwrap();
            p.validate().unwrap();
            let ir = compile(&p, &CompileOptions::default()).unwrap();
            assert_eq!(ir.num_ranks(), n);
        }
    }

    #[test]
    fn is_two_steps_deep() {
        // Each chunk's dependency chain is: R-1 reductions into the owner
        // (which serialize on the owner) followed by independent broadcast
        // copies. No chunk travels more than 2 hops.
        let p = allpairs_all_reduce(4).unwrap();
        for op in p.ops() {
            // Every op either ends at the owner (gather) or starts at the
            // owner (broadcast): no chained forwarding.
            assert!(op.src.rank == op.src.index || op.dst.rank == op.dst.index || op.count > 1);
        }
    }

    #[test]
    fn broadcast_fuses_with_final_reduction() {
        // The last rrc on the owner feeds R-1 sends; one fuses (rrcs).
        let p = allpairs_all_reduce(4).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let has_rrcs = ir
            .gpus
            .iter()
            .flat_map(|g| &g.threadblocks)
            .flat_map(|t| &t.instructions)
            .any(|i| i.op == OpCode::RecvReduceCopySend);
        assert!(has_rrcs);
    }

    #[test]
    fn instances_verify() {
        let p = allpairs_all_reduce(4).unwrap();
        let _ = compile(&p, &CompileOptions::default().with_instances(2)).unwrap();
    }
}
