//! Collective communication algorithms written in the MSCCLang DSL.
//!
//! Every algorithm the paper implements or evaluates is here:
//!
//! * [`ring`] — Ring ReduceScatter / AllGather / AllReduce (Figure 3b and
//!   §7.1.1), with the logical ring distributable across multiple channels;
//! * [`hierarchical`] — the hierarchical AllReduce running example
//!   (Figure 3a, §2 and §7.2);
//! * [`allpairs`] — the All Pairs AllReduce developed for small buffers
//!   (§7.1.2);
//! * [`alltoall`] — the naive one-step and the Two-Step AllToAll
//!   (Figure 9, §7.3);
//! * [`alltonext`] — the custom AllToNext collective (Figure 10, §7.4);
//! * [`allgather`] — AllGather variants, including the 3-step
//!   hybrid-cube-mesh algorithm used for the SCCL comparison (§7.5) and a
//!   recursive-doubling variant;
//! * [`tree`] — a binary tree AllReduce (the shape NCCL uses for small
//!   multi-node buffers);
//! * [`rooted`] — Broadcast, Reduce, Gather and Scatter, completing the
//!   MPI surface.
//!
//! All programs are written in the paper's chunk-oriented style — a few
//! dozen lines of routing logic each — and validate against their
//! collective's postcondition.

pub mod allgather;
pub mod allpairs;
pub mod alltoall;
pub mod alltonext;
pub mod hierarchical;
pub mod rabenseifner;
pub mod registry;
pub mod ring;
pub mod rooted;
pub mod tree;

pub use allgather::{hcm_allgather, recursive_doubling_all_gather};
pub use allpairs::allpairs_all_reduce;
pub use alltoall::{one_step_all_to_all, three_step_all_to_all, two_step_all_to_all};
pub use alltonext::all_to_next;
pub use hierarchical::hierarchical_all_reduce;
pub use rabenseifner::rabenseifner_all_reduce;
pub use registry::{build_by_name, AlgoSpec, RegistryError};
pub use ring::{
    ring_all_gather, ring_all_gather_program, ring_all_reduce, ring_reduce_scatter,
    ring_reduce_scatter_program,
};
pub use rooted::{binomial_broadcast, binomial_reduce, linear_gather, linear_scatter};
pub use tree::{binary_tree_all_reduce, double_binary_tree_all_reduce};

/// Counts the `copy`/`reduce` statements a program traced — the paper
/// reports all its algorithms need fewer than 30 lines of DSL code (§7).
#[must_use]
pub fn routing_op_count(program: &mscclang::Program) -> usize {
    program.ops().len()
}
