//! Rabenseifner's AllReduce: recursive-halving ReduceScatter followed by
//! recursive-doubling AllGather.
//!
//! The classic bandwidth-optimal algorithm for power-of-two rank counts
//! (Thakur, Rabenseifner & Gropp, 2005 — reference \[41\] of the MSCCLang
//! paper): `log2 R` exchange steps in each phase, each moving half the
//! data of the previous step, for a total transfer of `2·(R−1)/R · B`
//! with only `2·log2 R` latency steps — Ring's bandwidth at Tree-like
//! latency.

use mscclang::{BufferKind, Collective, Program, Result};

/// In-place Rabenseifner AllReduce over a power-of-two `num_ranks`.
/// The buffer splits into `num_ranks` chunks.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics unless `num_ranks` is a power of two ≥ 2.
pub fn rabenseifner_all_reduce(num_ranks: usize) -> Result<Program> {
    assert!(
        num_ranks.is_power_of_two() && num_ranks >= 2,
        "rabenseifner needs a power-of-two rank count"
    );
    let coll = Collective::all_reduce(num_ranks, num_ranks, true);
    let mut p = Program::new("rabenseifner_allreduce", coll);
    let log = num_ranks.trailing_zeros() as usize;

    // Phase 1 — recursive halving ReduceScatter.
    //
    // Invariant: before step k, rank r is responsible for the contiguous
    // block of `R >> k` chunks starting at `r & !(block - 1)` (the high
    // bits of r fixed so far pick the block). Step k pairs r with
    // `r ^ (block/2)`; each rank keeps the half of its block selected by
    // that same bit of its own rank and reduces the partner's copy of it.
    for k in 0..log {
        let block = num_ranks >> k;
        let half = block / 2;
        for r in 0..num_ranks {
            let partner = r ^ half;
            let base = r & !(block - 1);
            let keep_low = (r & half) == 0;
            let send_base = if keep_low { base + half } else { base };
            // Partner reduces our half into its buffer.
            let src = p.chunk(r, BufferKind::Input, send_base, half)?;
            let dst = p.chunk(partner, BufferKind::Input, send_base, half)?;
            let _ = p.reduce(&dst, &src)?;
        }
    }

    // Phase 2 — recursive doubling AllGather: reverse the exchanges,
    // copying instead of reducing, with owned blocks growing back.
    for k in (0..log).rev() {
        let block = num_ranks >> k;
        let half = block / 2;
        for r in 0..num_ranks {
            let partner = r ^ half;
            let base = r & !(block - 1);
            let keep_low = (r & half) == 0;
            // Send the half this rank OWNS (fully reduced) to the partner.
            let own_base = if keep_low { base } else { base + half };
            let src = p.chunk(r, BufferKind::Input, own_base, half)?;
            let _ = p.copy(&src, partner, BufferKind::Input, own_base)?;
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions, IrStats};

    #[test]
    fn validates_for_powers_of_two() {
        for n in [2usize, 4, 8, 16] {
            let p = rabenseifner_all_reduce(n).unwrap();
            p.validate().unwrap_or_else(|e| panic!("{n} ranks: {e}"));
            let _ = compile(&p, &CompileOptions::default()).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = rabenseifner_all_reduce(6);
    }

    #[test]
    fn latency_is_logarithmic_bandwidth_is_ring_like() {
        let n = 8;
        let p = rabenseifner_all_reduce(n).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        let stats = IrStats::compute(&ir);
        // 2*log2(8) = 6 communication steps on the critical path.
        assert_eq!(stats.critical_hops, 2 * 3);
        // Total chunks sent per rank = 2*(R-1) across all ranks:
        // (4+2+1) down + (1+2+4) up = 14 per rank -> 112 total.
        assert_eq!(stats.chunks_sent, 2 * (n - 1) * n);
    }

    #[test]
    fn beats_ring_on_hops_matches_on_volume() {
        let n = 16;
        let rab = rabenseifner_all_reduce(n).unwrap();
        let ring = crate::ring::ring_all_reduce(n, 1).unwrap();
        let rab_stats = IrStats::compute(&compile(&rab, &CompileOptions::default()).unwrap());
        let ring_stats = IrStats::compute(&compile(&ring, &CompileOptions::default()).unwrap());
        assert!(rab_stats.critical_hops < ring_stats.critical_hops);
        assert_eq!(rab_stats.chunks_sent, ring_stats.chunks_sent);
    }
}
