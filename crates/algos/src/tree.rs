//! Binary tree AllReduce.
//!
//! NCCL switches from Ring to Tree for small buffers on multi-node
//! systems: the tree halves the latency exponent (`2·log R` hops instead
//! of `2R − 2`). This implementation reduces every rank's buffer up a
//! binary tree into rank 0 and broadcasts the result back down, and serves
//! as part of the NCCL baseline model.

use mscclang::{BufferKind, Collective, Program, Result};

/// In-place binary tree AllReduce over `num_ranks` ranks with
/// `chunk_factor` chunks (each chunk follows the same tree; multi-count
/// operations keep it a single aggregated transfer per edge).
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_ranks < 2` or `chunk_factor == 0`.
pub fn binary_tree_all_reduce(num_ranks: usize, chunk_factor: usize) -> Result<Program> {
    assert!(num_ranks >= 2, "a tree needs at least two ranks");
    assert!(chunk_factor >= 1);
    let coll = Collective::all_reduce(num_ranks, chunk_factor, true);
    let mut p = Program::new("tree_allreduce", coll);
    // Reduce up: process children in decreasing rank so every subtree is
    // complete before its root forwards.
    for child in (1..num_ranks).rev() {
        let parent = (child - 1) / 2;
        let src = p.chunk(child, BufferKind::Input, 0, chunk_factor)?;
        let dst = p.chunk(parent, BufferKind::Input, 0, chunk_factor)?;
        let _ = p.reduce(&dst, &src)?;
    }
    // Broadcast down in increasing rank.
    for child in 1..num_ranks {
        let parent = (child - 1) / 2;
        let c = p.chunk(parent, BufferKind::Input, 0, chunk_factor)?;
        let _ = p.copy(&c, child, BufferKind::Input, 0)?;
    }
    Ok(p)
}

/// Double binary tree AllReduce — the structure NCCL actually uses at
/// scale: two complementary binary trees, each reducing and broadcasting
/// half of the buffer, so that (almost) every rank is an interior node in
/// one tree and a leaf in the other, balancing the per-rank load.
///
/// Tree A is the binary tree over ranks in natural order; tree B is the
/// same shape over ranks shifted by one (mirror construction), which makes
/// the two parent-child link sets (nearly) disjoint.
///
/// # Errors
///
/// Propagates DSL errors from the traced operations.
///
/// # Panics
///
/// Panics if `num_ranks < 2` or `chunk_factor` is not even (each tree
/// needs its own half of the chunks).
pub fn double_binary_tree_all_reduce(num_ranks: usize, chunk_factor: usize) -> Result<Program> {
    assert!(num_ranks >= 2, "a tree needs at least two ranks");
    assert!(
        chunk_factor >= 2 && chunk_factor.is_multiple_of(2),
        "double binary tree splits chunks across two trees"
    );
    let half = chunk_factor / 2;
    let coll = Collective::all_reduce(num_ranks, chunk_factor, true);
    let mut p = Program::new("double_binary_tree_allreduce", coll);
    for tree in 0..2usize {
        // Tree 1 relabels rank r as (r + 1) % R, rotating every rank's
        // role; offsets select this tree's half of the buffer.
        let relabel = |logical: usize| (logical + tree) % num_ranks;
        let offset = tree * half;
        let channel = tree;
        // Reduce up (children before parents: descending logical rank).
        for child in (1..num_ranks).rev() {
            let parent = (child - 1) / 2;
            let src = p.chunk(relabel(child), BufferKind::Input, offset, half)?;
            let dst = p.chunk(relabel(parent), BufferKind::Input, offset, half)?;
            let _ = p.reduce_on(&dst, &src, channel)?;
        }
        // Broadcast down.
        for child in 1..num_ranks {
            let parent = (child - 1) / 2;
            let c = p.chunk(relabel(parent), BufferKind::Input, offset, half)?;
            let _ = p.copy_on(&c, relabel(child), BufferKind::Input, offset, channel)?;
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscclang::{compile, CompileOptions};

    #[test]
    fn validates_for_various_sizes() {
        for n in [2, 3, 5, 8, 16] {
            let p = binary_tree_all_reduce(n, 1).unwrap();
            p.validate().unwrap();
        }
    }

    #[test]
    fn compiles_and_verifies() {
        let p = binary_tree_all_reduce(7, 2).unwrap();
        let ir = compile(&p, &CompileOptions::default()).unwrap();
        assert_eq!(ir.num_ranks(), 7);
    }

    #[test]
    fn double_tree_validates_and_compiles() {
        for n in [2, 4, 7, 12] {
            let p = double_binary_tree_all_reduce(n, 2).unwrap();
            p.validate().unwrap();
            let ir = compile(&p, &CompileOptions::default()).unwrap();
            assert_eq!(ir.num_ranks(), n);
            // The two trees occupy separate channels.
            assert!(ir.num_channels >= 2);
        }
    }

    #[test]
    fn double_tree_balances_load_against_single_tree() {
        // In a single tree, rank 0 (the root) receives 2 chunks and leaves
        // receive 1; in the double tree every rank's totals are closer.
        let n = 8;
        let single = binary_tree_all_reduce(n, 2).unwrap();
        let double = double_binary_tree_all_reduce(n, 2).unwrap();
        let spread = |p: &Program| {
            let mut recv = vec![0usize; n];
            for op in p.ops() {
                if op.src.rank != op.dst.rank {
                    recv[op.dst.rank] += op.count;
                }
            }
            recv.iter().max().unwrap() - recv.iter().min().unwrap()
        };
        assert!(
            spread(&double) <= spread(&single),
            "double tree should not be less balanced than the single tree"
        );
    }

    #[test]
    #[should_panic(expected = "splits chunks")]
    fn double_tree_rejects_odd_chunk_factor() {
        let _ = double_binary_tree_all_reduce(4, 3);
    }

    #[test]
    fn depth_is_logarithmic() {
        // The longest chain of dependent transfers is 2*ceil(log2(R)).
        let n = 8;
        let p = binary_tree_all_reduce(n, 1).unwrap();
        // Reduce ops: n-1, copy ops: n-1.
        assert_eq!(p.ops().len(), 2 * (n - 1));
    }
}
