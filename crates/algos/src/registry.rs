//! Name-indexed construction of every buildable algorithm.
//!
//! The CLI and the scenario runner both need to turn a string like
//! `"ring-allreduce"` plus a few dimensions into a [`Program`]; this
//! registry is the single place that mapping lives.

use mscclang::Program;
use std::fmt;

/// Dimensions for building an algorithm by name. Fields an algorithm
/// does not use are ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoSpec {
    /// Total ranks, for flat algorithms (`None` when only `nodes`/`gpus`
    /// are given).
    pub ranks: Option<usize>,
    /// Nodes, for hierarchical algorithms.
    pub nodes: usize,
    /// GPUs per node, for hierarchical algorithms.
    pub gpus: usize,
    /// Channels the ring variants distribute over.
    pub channels: usize,
    /// Chunk split for the tree/rooted variants (`None` = per-algorithm
    /// default).
    pub chunks: Option<usize>,
    /// Root rank for the rooted collectives.
    pub root: usize,
}

impl Default for AlgoSpec {
    fn default() -> Self {
        Self {
            ranks: None,
            nodes: 2,
            gpus: 8,
            channels: 1,
            chunks: None,
            root: 0,
        }
    }
}

/// Why a registry build failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No algorithm under that name.
    UnknownAlgorithm(String),
    /// The algorithm needs `--ranks` and the spec has none.
    MissingRanks(&'static str),
    /// The algorithm constructor itself rejected the dimensions.
    Build(mscclang::Error),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownAlgorithm(name) => write!(f, "unknown algorithm '{name}'"),
            RegistryError::MissingRanks(name) => write!(f, "algorithm '{name}' needs ranks"),
            RegistryError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<mscclang::Error> for RegistryError {
    fn from(e: mscclang::Error) -> Self {
        RegistryError::Build(e)
    }
}

/// Every name [`build_by_name`] accepts.
pub const NAMES: &[&str] = &[
    "ring-allreduce",
    "allpairs-allreduce",
    "hierarchical-allreduce",
    "two-step-alltoall",
    "one-step-alltoall",
    "alltonext",
    "hcm-allgather",
    "recursive-doubling-allgather",
    "tree-allreduce",
    "double-tree-allreduce",
    "rabenseifner-allreduce",
    "broadcast",
    "reduce",
    "gather",
    "scatter",
];

/// Builds the named algorithm with the given dimensions.
///
/// # Errors
///
/// Returns [`RegistryError`] for unknown names, missing ranks, or
/// dimensions the constructor rejects.
pub fn build_by_name(name: &str, spec: &AlgoSpec) -> Result<Program, RegistryError> {
    let need_ranks = |what: &'static str| spec.ranks.ok_or(RegistryError::MissingRanks(what));
    let program = match name {
        "ring-allreduce" => crate::ring_all_reduce(need_ranks("ring-allreduce")?, spec.channels)?,
        "allpairs-allreduce" => crate::allpairs_all_reduce(need_ranks("allpairs-allreduce")?)?,
        "hierarchical-allreduce" => crate::hierarchical_all_reduce(spec.nodes, spec.gpus)?,
        "two-step-alltoall" => crate::two_step_all_to_all(spec.nodes, spec.gpus)?,
        "one-step-alltoall" => crate::one_step_all_to_all(spec.nodes, spec.gpus)?,
        "alltonext" => crate::all_to_next(spec.nodes, spec.gpus)?,
        "hcm-allgather" => crate::hcm_allgather()?,
        "recursive-doubling-allgather" => {
            crate::recursive_doubling_all_gather(need_ranks("recursive-doubling-allgather")?)?
        }
        "tree-allreduce" => {
            crate::binary_tree_all_reduce(need_ranks("tree-allreduce")?, spec.chunks.unwrap_or(1))?
        }
        "double-tree-allreduce" => crate::double_binary_tree_all_reduce(
            need_ranks("double-tree-allreduce")?,
            spec.chunks.unwrap_or(2),
        )?,
        "rabenseifner-allreduce" => {
            crate::rabenseifner_all_reduce(need_ranks("rabenseifner-allreduce")?)?
        }
        "broadcast" => crate::binomial_broadcast(
            need_ranks("broadcast")?,
            spec.chunks.unwrap_or(1),
            spec.root,
        )?,
        "reduce" => {
            crate::binomial_reduce(need_ranks("reduce")?, spec.chunks.unwrap_or(1), spec.root)?
        }
        "gather" => {
            crate::linear_gather(need_ranks("gather")?, spec.chunks.unwrap_or(1), spec.root)?
        }
        "scatter" => {
            crate::linear_scatter(need_ranks("scatter")?, spec.chunks.unwrap_or(1), spec.root)?
        }
        other => return Err(RegistryError::UnknownAlgorithm(other.to_owned())),
    };
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        let spec = AlgoSpec {
            ranks: Some(8),
            nodes: 2,
            gpus: 4,
            ..AlgoSpec::default()
        };
        for name in NAMES {
            build_by_name(name, &spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn unknown_name_is_rejected() {
        assert!(matches!(
            build_by_name("warp-drive", &AlgoSpec::default()),
            Err(RegistryError::UnknownAlgorithm(_))
        ));
    }

    #[test]
    fn missing_ranks_is_named() {
        let err = build_by_name("ring-allreduce", &AlgoSpec::default()).unwrap_err();
        assert!(matches!(err, RegistryError::MissingRanks("ring-allreduce")));
    }
}
