//! Criterion benchmarks for the discrete-event simulator: events-per-second
//! on representative programs and cluster sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use msccl_sim::{simulate, SimConfig};
use msccl_topology::{Machine, Protocol};
use mscclang::{compile, CompileOptions};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    let ring = msccl_algos::ring_all_reduce(8, 1).expect("builds");
    let ring_ir = compile(
        &ring,
        &CompileOptions::default()
            .with_verify(false)
            .with_instances(8),
    )
    .expect("compiles");
    let ndv4 = SimConfig::new(Machine::ndv4(1)).with_protocol(Protocol::Simple);
    group.bench_function("ring_8r_r8_64MB", |b| {
        b.iter(|| simulate(black_box(&ring_ir), &ndv4, 64 << 20).unwrap())
    });

    let hier = msccl_algos::hierarchical_all_reduce(2, 8).expect("builds");
    let hier_ir = compile(
        &hier,
        &CompileOptions::default()
            .with_verify(false)
            .with_instances(4),
    )
    .expect("compiles");
    let two_node = SimConfig::new(Machine::ndv4(2)).with_protocol(Protocol::Simple);
    group.bench_function("hierarchical_2x8_r4_256MB", |b| {
        b.iter(|| simulate(black_box(&hier_ir), &two_node, 256 << 20).unwrap())
    });

    let a2a = msccl_algos::two_step_all_to_all(4, 8).expect("builds");
    let a2a_ir = compile(&a2a, &CompileOptions::default().with_verify(false)).expect("compiles");
    let four_node = SimConfig::new(Machine::ndv4(4)).with_protocol(Protocol::Simple);
    group.bench_function("two_step_alltoall_4x8_256MB", |b| {
        b.iter(|| simulate(black_box(&a2a_ir), &four_node, 256 << 20).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
