//! Criterion benchmarks for the MSCCLang compiler: tracing, lowering,
//! fusion and scheduling throughput on the paper's algorithms.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mscclang::{compile, CompileOptions};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);

    let ring = msccl_algos::ring_all_reduce(8, 4).expect("builds");
    group.bench_function("ring_allreduce_8r_ch4", |b| {
        b.iter(|| {
            compile(
                black_box(&ring),
                &CompileOptions::default().with_verify(false),
            )
            .unwrap()
        })
    });

    let hier = msccl_algos::hierarchical_all_reduce(2, 8).expect("builds");
    group.bench_function("hierarchical_2x8", |b| {
        b.iter(|| {
            compile(
                black_box(&hier),
                &CompileOptions::default().with_verify(false),
            )
            .unwrap()
        })
    });

    let a2a = msccl_algos::two_step_all_to_all(4, 8).expect("builds");
    group.bench_function("two_step_alltoall_4x8", |b| {
        b.iter(|| {
            compile(
                black_box(&a2a),
                &CompileOptions::default().with_verify(false),
            )
            .unwrap()
        })
    });

    group.bench_function("ring_with_8_instances", |b| {
        b.iter(|| {
            compile(
                black_box(&ring),
                &CompileOptions::default()
                    .with_verify(false)
                    .with_instances(8),
            )
            .unwrap()
        })
    });

    group.finish();

    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    let ir = compile(&ring, &CompileOptions::default().with_verify(false)).unwrap();
    group.bench_function("symbolic_executor_ring_8r", |b| {
        b.iter_batched(
            || ir.clone(),
            |ir| mscclang::verify::check(&ir, &mscclang::verify::VerifyOptions::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
