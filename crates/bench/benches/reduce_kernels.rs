//! Criterion microbenchmarks for the in-place reduce kernels: the
//! vectorizable chunked loops (`reduce_into_slice`) against the scalar
//! per-element dispatch (`reduce_into_slice_scalar`) they replaced.
//!
//! The chunked loops hoist the operator match out of the loop and walk
//! the slices in fixed-width lanes so LLVM can emit SIMD; the scalar
//! oracle dispatches on the operator per element. The gap between the
//! two is the speedup the runtime's combine path inherits.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use msccl_runtime::kernels::{reduce_into_slice, reduce_into_slice_scalar};
use mscclang::ReduceOp;

fn bench_reduce_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_kernels");

    // 128 Ki f32 = 512 KiB, one Simple-protocol tile.
    for len in [4096usize, 131_072] {
        let src: Vec<f32> = (0..len).map(|i| (i % 97) as f32 * 0.5).collect();
        let base: Vec<f32> = (0..len).map(|i| (i % 89) as f32 * 0.25).collect();
        group.throughput(Throughput::Bytes((len * 4) as u64));
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
            let tag = match op {
                ReduceOp::Sum => "sum",
                ReduceOp::Max => "max",
                ReduceOp::Min => "min",
                ReduceOp::Prod => "prod",
            };
            group.bench_function(format!("vectorized_{tag}_{len}"), |b| {
                let mut acc = base.clone();
                b.iter(|| {
                    reduce_into_slice(op, black_box(&mut acc), black_box(&src));
                })
            });
            group.bench_function(format!("scalar_{tag}_{len}"), |b| {
                let mut acc = base.clone();
                b.iter(|| {
                    reduce_into_slice_scalar(op, black_box(&mut acc), black_box(&src));
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_reduce_kernels);
criterion_main!(benches);
