//! Criterion benchmarks for the multi-threaded functional interpreter
//! (the Figure 5 analog): end-to-end AllReduce execution over real data.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use msccl_runtime::{execute, execute_traced, reference, RunOptions};
use mscclang::{compile, CompileOptions};

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_interpreter");
    group.sample_size(10);

    let ring = msccl_algos::ring_all_reduce(4, 1).expect("builds");
    let ir = compile(&ring, &CompileOptions::default().with_verify(false)).expect("compiles");

    for chunk_elems in [256usize, 4096] {
        let inputs = reference::random_inputs(&ir, chunk_elems, 9);
        let bytes = (ir.collective.in_chunks() * chunk_elems * 4) as u64;
        group.throughput(Throughput::Bytes(bytes * ir.num_ranks() as u64));
        group.bench_function(format!("ring_allreduce_4r_{chunk_elems}elems"), |b| {
            b.iter(|| {
                execute(
                    black_box(&ir),
                    black_box(&inputs),
                    chunk_elems,
                    &RunOptions::default(),
                )
                .unwrap()
            })
        });
    }

    // Tracing overhead: the same workload with event recording on. The
    // untraced path above shares `execute_impl` with this one (recording
    // disabled), so comparing the two bounds the cost of the trace hooks.
    {
        let chunk_elems = 4096usize;
        let inputs = reference::random_inputs(&ir, chunk_elems, 9);
        let bytes = (ir.collective.in_chunks() * chunk_elems * 4) as u64;
        group.throughput(Throughput::Bytes(bytes * ir.num_ranks() as u64));
        group.bench_function(
            format!("ring_allreduce_4r_{chunk_elems}elems_traced"),
            |b| {
                b.iter(|| {
                    execute_traced(
                        black_box(&ir),
                        black_box(&inputs),
                        chunk_elems,
                        &RunOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
    }

    let allpairs = msccl_algos::allpairs_all_reduce(4).expect("builds");
    let ir2 = compile(&allpairs, &CompileOptions::default().with_verify(false)).expect("compiles");
    let inputs2 = reference::random_inputs(&ir2, 1024, 10);
    group.bench_function("allpairs_allreduce_4r_1024elems", |b| {
        b.iter(|| {
            execute(
                black_box(&ir2),
                black_box(&inputs2),
                1024,
                &RunOptions::default(),
            )
            .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
