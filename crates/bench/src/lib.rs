//! Benchmark harness reproducing every figure of the MSCCLang paper's
//! evaluation (§7).
//!
//! Each function in [`figures`] regenerates one figure or table: it builds
//! the MSCCLang programs and baselines involved, sweeps the paper's buffer
//! sizes through the simulator, and returns a [`Figure`] whose rows mirror
//! the published series (speedups over the figure's baseline, or raw
//! latencies for Figure 11).
//!
//! Binaries under `src/bin/` print individual figures;
//! `all_experiments` runs the whole evaluation and emits the content of
//! `EXPERIMENTS.md`.
//!
//! Scale control: setting `MSCCL_BENCH_QUICK=1` shrinks cluster sizes and
//! sweeps so the full suite finishes in seconds (used by tests); the
//! default reproduces the paper's dimensions.

pub mod figures;
mod table;

pub use table::{Figure, Mode};

use std::fmt;

/// Errors from figure generation.
#[derive(Debug)]
pub enum BenchError {
    /// Program construction or compilation failed.
    Compile(mscclang::Error),
    /// Simulation failed.
    Sim(msccl_sim::SimError),
    /// Baseline model failed.
    Baseline(msccl_baselines::BaselineError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Compile(e) => write!(f, "compile: {e}"),
            BenchError::Sim(e) => write!(f, "sim: {e}"),
            BenchError::Baseline(e) => write!(f, "baseline: {e}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<mscclang::Error> for BenchError {
    fn from(e: mscclang::Error) -> Self {
        BenchError::Compile(e)
    }
}
impl From<msccl_sim::SimError> for BenchError {
    fn from(e: msccl_sim::SimError) -> Self {
        BenchError::Sim(e)
    }
}
impl From<msccl_baselines::BaselineError> for BenchError {
    fn from(e: msccl_baselines::BaselineError) -> Self {
        BenchError::Baseline(e)
    }
}

/// Whether to run at the paper's dimensions or a fast reduced scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper dimensions.
    Full,
    /// Reduced dimensions/sweeps for tests.
    Quick,
}

impl Scale {
    /// Reads `MSCCL_BENCH_QUICK` from the environment.
    #[must_use]
    pub fn from_env() -> Self {
        if std::env::var("MSCCL_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Whether this is the reduced scale.
    #[must_use]
    pub fn is_quick(self) -> bool {
        self == Scale::Quick
    }
}

/// Formats a byte count the way the paper's axes do.
#[must_use]
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{}GB", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Powers-of-two sweep from `2^from` to `2^to` bytes inclusive.
#[must_use]
pub fn size_sweep(from: u32, to: u32) -> Vec<u64> {
    (from..=to).map(|e| 1u64 << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2KB");
        assert_eq!(human_bytes(3 << 20), "3MB");
        assert_eq!(human_bytes(1 << 30), "1GB");
    }

    #[test]
    fn sweep_is_inclusive() {
        assert_eq!(size_sweep(10, 12), vec![1024, 2048, 4096]);
    }
}
