//! AllReduce figures: 8a (1-node A100), 8b (1-node V100), 8c (2-node
//! A100 hierarchical), 8d (2-node V100 hierarchical).

use msccl_baselines::{Nccl, NcclHierarchical};
use msccl_topology::{Machine, Protocol};
use mscclang::IrProgram;

use crate::figures::{build, sim_us};
use crate::{size_sweep, BenchError, Figure, Mode, Scale};

struct Variant {
    label: String,
    ir: IrProgram,
    protocol: Protocol,
}

fn speedup_figure(
    id: &str,
    title: &str,
    machine: &Machine,
    variants: &[Variant],
    extra: Option<&NcclHierarchical>,
    sizes: &[u64],
    paper_claim: &str,
) -> Result<Figure, BenchError> {
    let nccl = Nccl::new(machine.clone())?;
    let mut series: Vec<String> = variants.iter().map(|v| v.label.clone()).collect();
    if extra.is_some() {
        series.push("NCCL Hierarchical (composed)".into());
    }
    let mut rows = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let base = nccl.all_reduce_us(bytes)?;
        let mut values = Vec::with_capacity(series.len());
        for v in variants {
            values.push(base / sim_us(&v.ir, machine, v.protocol, bytes)?);
        }
        if let Some(h) = extra {
            values.push(base / h.all_reduce_us(bytes)?);
        }
        rows.push((bytes, values));
    }
    Ok(Figure {
        id: id.into(),
        title: title.into(),
        series,
        rows,
        mode: Mode::Speedup,
        paper_claim: paper_claim.into(),
        notes: vec![format!("baseline: NCCL on {}", machine.name())],
    })
}

/// Figure 8a: 1-node 8×A100 AllReduce, speedup over NCCL.
pub fn fig8a(scale: Scale) -> Result<Figure, BenchError> {
    let machine = Machine::ndv4(1);
    let allpairs = msccl_algos::allpairs_all_reduce(8)?;
    let ring4 = msccl_algos::ring_all_reduce(8, 4)?;
    let variants = vec![
        Variant {
            label: "All Pairs r=2 LL".into(),
            ir: build(&allpairs, 2, &machine)?,
            protocol: Protocol::Ll,
        },
        Variant {
            label: "All Pairs r=4 LL".into(),
            ir: build(&allpairs, 4, &machine)?,
            protocol: Protocol::Ll,
        },
        Variant {
            label: "Ring ch=4 r=8 LL".into(),
            ir: build(&ring4, 8, &machine)?,
            protocol: Protocol::Ll,
        },
        Variant {
            label: "Ring ch=4 r=8 LL128".into(),
            ir: build(&ring4, 8, &machine)?,
            protocol: Protocol::Ll128,
        },
    ];
    let sizes = if scale.is_quick() {
        size_sweep(12, 22)
    } else {
        size_sweep(10, 25)
    };
    speedup_figure(
        "fig8a",
        "1-node, 8xA100 AllReduce (speedup over NCCL)",
        &machine,
        &variants,
        None,
        &sizes,
        "MSCCLang Ring up to 1.9x faster for 32KB-3MB; All Pairs up to 1.8x for 1KB-1MB; \
         matches NCCL at >32MB",
    )
}

/// Figure 8b: 1-node 16×V100 AllReduce, speedup over NCCL.
pub fn fig8b(scale: Scale) -> Result<Figure, BenchError> {
    let machine = Machine::dgx2(1);
    let allpairs = msccl_algos::allpairs_all_reduce(16)?;
    let ring4 = msccl_algos::ring_all_reduce(16, 4)?;
    let ring8 = msccl_algos::ring_all_reduce(16, 8)?;
    let variants = vec![
        Variant {
            label: "All Pairs r=2 LL".into(),
            ir: build(&allpairs, 2, &machine)?,
            protocol: Protocol::Ll,
        },
        Variant {
            label: "All Pairs r=4 LL".into(),
            ir: build(&allpairs, 4, &machine)?,
            protocol: Protocol::Ll,
        },
        Variant {
            label: "Ring ch=4 r=8 LL".into(),
            ir: build(&ring4, 8, &machine)?,
            protocol: Protocol::Ll,
        },
        Variant {
            label: "Ring ch=8 r=4 LL128".into(),
            ir: build(&ring8, 4, &machine)?,
            protocol: Protocol::Ll128,
        },
    ];
    let sizes = if scale.is_quick() {
        size_sweep(12, 22)
    } else {
        size_sweep(11, 25)
    };
    speedup_figure(
        "fig8b",
        "1-node, 16xV100 AllReduce (speedup over NCCL)",
        &machine,
        &variants,
        None,
        &sizes,
        "same trends as the A100 system, with larger peak speedups (up to ~3x) at small sizes",
    )
}

fn hierarchical_figure(
    id: &str,
    title: &str,
    machine: Machine,
    instances: [usize; 3],
    sizes: &[u64],
    paper_claim: &str,
) -> Result<Figure, BenchError> {
    let program =
        msccl_algos::hierarchical_all_reduce(machine.num_nodes(), machine.gpus_per_node())?;
    let variants = vec![
        Variant {
            label: format!("MSCCLang LL r={}", instances[0]),
            ir: build(&program, instances[0], &machine)?,
            protocol: Protocol::Ll,
        },
        Variant {
            label: format!("MSCCLang LL128 r={}", instances[1]),
            ir: build(&program, instances[1], &machine)?,
            protocol: Protocol::Ll128,
        },
        Variant {
            label: format!("MSCCLang Simple r={}", instances[2]),
            ir: build(&program, instances[2], &machine)?,
            protocol: Protocol::Simple,
        },
    ];
    let composed = NcclHierarchical::new(machine.clone())?;
    speedup_figure(
        id,
        title,
        &machine,
        &variants,
        Some(&composed),
        sizes,
        paper_claim,
    )
}

/// Figure 8c: 2-node 16×A100 hierarchical AllReduce, speedup over NCCL.
pub fn fig8c(scale: Scale) -> Result<Figure, BenchError> {
    let sizes = if scale.is_quick() {
        size_sweep(14, 24)
    } else {
        size_sweep(10, 32)
    };
    hierarchical_figure(
        "fig8c",
        "2-node, 16xA100 AllReduce (hierarchical; speedup over NCCL)",
        Machine::ndv4(2),
        [1, 2, 4],
        &sizes,
        "up to 1.4x at small sizes, ~1.11x at >=1GB; the NCCL-collective composition is far \
         slower across the range",
    )
}

/// Figure 8d: 2-node 32×V100 hierarchical AllReduce, speedup over NCCL.
pub fn fig8d(scale: Scale) -> Result<Figure, BenchError> {
    let sizes = if scale.is_quick() {
        size_sweep(14, 24)
    } else {
        size_sweep(10, 32)
    };
    hierarchical_figure(
        "fig8d",
        "2-node, 32xV100 AllReduce (hierarchical; speedup over NCCL)",
        Machine::dgx2(2),
        [1, 1, 4],
        &sizes,
        "up to ~2x at small-mid sizes; composition far slower",
    )
}
