//! AllToAll figures: 8e (32-node 256×A100), 8f (4-node 64×V100), plus the
//! send-aggregation ablation (§5.1).

use msccl_baselines::{CudaTwoStep, Nccl};
use msccl_topology::{Machine, Protocol};
use mscclang::{BufferKind, Collective, Program};

use crate::figures::{build, sim_us};
use crate::{size_sweep, BenchError, Figure, Mode, Scale};

/// The protocol the Two-Step implementations select per buffer size (§7.3
/// tunes "the protocol for the buffer size").
fn a2a_protocol(bytes: u64) -> Protocol {
    if bytes <= 16 << 20 {
        Protocol::Ll128
    } else {
        Protocol::Simple
    }
}

fn alltoall_figure(
    id: &str,
    title: &str,
    machine: Machine,
    instances: usize,
    sizes: &[u64],
    paper_claim: &str,
) -> Result<Figure, BenchError> {
    let (n, g) = (machine.num_nodes(), machine.gpus_per_node());
    let two_step = msccl_algos::two_step_all_to_all(n, g)?;
    let ir_ll128 = build(&two_step, instances, &machine)?;
    let cuda = CudaTwoStep::new(machine.clone())?;
    let nccl = Nccl::new(machine.clone())?;

    let series = vec![
        format!("MSCCLang Two-step LL128 r={instances}"),
        format!("MSCCLang Two-step Simple r={instances}"),
        "NCCL".to_owned(),
    ];
    let mut rows = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let base = cuda.all_to_all_us(bytes, a2a_protocol(bytes))?;
        let ll128 = sim_us(&ir_ll128, &machine, Protocol::Ll128, bytes)?;
        let simple = sim_us(&ir_ll128, &machine, Protocol::Simple, bytes)?;
        let nccl_t = nccl.all_to_all_us(bytes)?;
        rows.push((bytes, vec![base / ll128, base / simple, base / nccl_t]));
    }
    Ok(Figure {
        id: id.into(),
        title: title.into(),
        series,
        rows,
        mode: Mode::Speedup,
        paper_claim: paper_claim.into(),
        notes: vec![format!(
            "baseline: hand-written CUDA Two-Step on {}",
            machine.name()
        )],
    })
}

/// Figure 8e: 256×A100 Two-Step AllToAll, speedup over the hand-optimized
/// CUDA implementation.
pub fn fig8e(scale: Scale) -> Result<Figure, BenchError> {
    let (machine, sizes) = if scale.is_quick() {
        (Machine::ndv4(4), size_sweep(20, 26))
    } else {
        (Machine::ndv4(32), size_sweep(18, 32))
    };
    alltoall_figure(
        "fig8e",
        "256xA100 (32 NDv4 nodes) AllToAll (speedup over CUDA Two-Step)",
        machine,
        1,
        &sizes,
        "up to 1.3x over the hand-optimized CUDA Two-Step at large sizes; both Two-Steps \
         far faster than NCCL; at >512MB the CUDA version drops below NCCL while MSCCLang \
         stays ~20% faster",
    )
}

/// Figure 8f: 4-node 64×V100 Two-Step AllToAll.
pub fn fig8f(scale: Scale) -> Result<Figure, BenchError> {
    let (machine, sizes) = if scale.is_quick() {
        (Machine::dgx2(2), size_sweep(20, 26))
    } else {
        (Machine::dgx2(4), size_sweep(20, 32))
    };
    alltoall_figure(
        "fig8f",
        "4-node, 64xV100 AllToAll (speedup over CUDA Two-Step)",
        machine,
        2,
        &sizes,
        "up to ~1.2x over the CUDA Two-Step",
    )
}

/// A Two-Step AllToAll whose cross-node sends are *not* aggregated: the
/// staging copies still happen, but each chunk crosses InfiniBand as its
/// own message. Isolates the benefit of multi-count sends (§5.1).
fn two_step_unaggregated(n_dim: usize, g_dim: usize) -> Result<Program, mscclang::Error> {
    let rank = |node: usize, gpu: usize| node * g_dim + gpu;
    let coll = Collective::all_to_all(n_dim * g_dim, 1);
    let mut p = Program::new("two_step_alltoall_noagg", coll);
    for n in 0..n_dim {
        for g in 0..g_dim {
            for m in 0..n_dim {
                for i in 0..g_dim {
                    let c = p.chunk(rank(m, i), BufferKind::Input, rank(n, g), 1)?;
                    if n == m {
                        let _ = p.copy(&c, rank(n, g), BufferKind::Output, rank(m, i))?;
                    } else {
                        let _ = p.copy(&c, rank(m, g), BufferKind::Scratch, rank(n, i))?;
                    }
                }
                if n != m {
                    for i in 0..g_dim {
                        let c = p.chunk(rank(m, g), BufferKind::Scratch, n * g_dim + i, 1)?;
                        let _ = p.copy(&c, rank(n, g), BufferKind::Output, m * g_dim + i)?;
                    }
                }
            }
        }
    }
    Ok(p)
}

/// Ablation: aggregated versus per-chunk cross-node sends in the Two-Step
/// AllToAll (§5.1 "Aggregation").
pub fn ablation_aggregation(scale: Scale) -> Result<Figure, BenchError> {
    let machine = if scale.is_quick() {
        Machine::ndv4(2)
    } else {
        Machine::ndv4(4)
    };
    let (n, g) = (machine.num_nodes(), machine.gpus_per_node());
    let agg = build(&msccl_algos::two_step_all_to_all(n, g)?, 1, &machine)?;
    let unagg_src = two_step_unaggregated(n, g)?;
    let noagg = build(&unagg_src, 1, &machine)?;
    // The automatic aggregation pass applied to the unaggregated source
    // recovers the multi-count sends.
    let auto = mscclang::compile(
        &unagg_src,
        &mscclang::CompileOptions::default()
            .with_verify(false)
            .with_aggregate(true)
            .with_max_tbs_per_rank(machine.num_sms()),
    )?;
    let sizes = if scale.is_quick() {
        vec![1 << 20, 1 << 24]
    } else {
        vec![1 << 18, 1 << 21, 1 << 24, 1 << 27, 1 << 30]
    };
    let mut rows = Vec::new();
    for bytes in sizes {
        let protocol = a2a_protocol(bytes);
        let base = sim_us(&noagg, &machine, protocol, bytes)?;
        let t_agg = sim_us(&agg, &machine, protocol, bytes)?;
        let t_auto = sim_us(&auto, &machine, protocol, bytes)?;
        rows.push((bytes, vec![base / t_agg, base / t_auto]));
    }
    Ok(Figure {
        id: "ablation_aggregation".into(),
        title: format!(
            "aggregated vs per-chunk IB sends, Two-Step AllToAll, {}",
            machine.name()
        ),
        series: vec![
            "hand-aggregated / unaggregated".into(),
            "auto-aggregation pass / unaggregated".into(),
        ],
        rows,
        mode: Mode::Speedup,
        paper_claim: "aggregating cross-node sends amortizes the per-message IB overhead (§5.1); \
                      gains shrink as messages grow"
            .into(),
        notes: vec![
            "the compiler's automatic pass recovers Figure 9's aggregation from the \
                     per-chunk source"
                .into(),
        ],
    })
}
