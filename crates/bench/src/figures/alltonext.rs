//! AllToNext figures: 8g (3-node 24×A100) and 8h (4-node 64×V100).

use msccl_baselines::CudaNaiveNext;
use msccl_topology::{Machine, Protocol};

use crate::figures::{build, sim_us};
use crate::{size_sweep, BenchError, Figure, Mode, Scale};

fn next_protocol(bytes: u64) -> Protocol {
    if bytes <= 64 << 10 {
        Protocol::Ll
    } else {
        Protocol::Simple
    }
}

fn alltonext_figure(
    id: &str,
    title: &str,
    machine: Machine,
    instance_choices: &[usize],
    sizes: &[u64],
    paper_claim: &str,
) -> Result<Figure, BenchError> {
    let (n, g) = (machine.num_nodes(), machine.gpus_per_node());
    let program = msccl_algos::all_to_next(n, g)?;
    let irs: Vec<_> = instance_choices
        .iter()
        .map(|&r| build(&program, r, &machine))
        .collect::<Result<_, _>>()?;
    let naive = CudaNaiveNext::new(machine.clone())?;

    let series: Vec<String> = instance_choices
        .iter()
        .map(|r| format!("MSCCLang r={r}"))
        .collect();
    let mut rows = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let protocol = next_protocol(bytes);
        let base = naive.all_to_next_us(bytes, protocol)?;
        let mut values = Vec::with_capacity(irs.len());
        for ir in &irs {
            values.push(base / sim_us(ir, &machine, protocol, bytes)?);
        }
        rows.push((bytes, values));
    }
    Ok(Figure {
        id: id.into(),
        title: title.into(),
        series,
        rows,
        mode: Mode::Speedup,
        paper_claim: paper_claim.into(),
        notes: vec![format!(
            "baseline: naive whole-buffer NCCL point-to-point sends on {}",
            machine.name()
        )],
    })
}

/// Figure 8g: 3-node 24×A100 AllToNext, speedup over the naive CUDA
/// baseline.
pub fn fig8g(scale: Scale) -> Result<Figure, BenchError> {
    let sizes = if scale.is_quick() {
        size_sweep(14, 24)
    } else {
        size_sweep(12, 28)
    };
    alltonext_figure(
        "fig8g",
        "3-node, 24xA100 AllToNext (speedup over naive CUDA)",
        Machine::ndv4(3),
        // The paper sweeps r up to 16; under our scheduler the boundary
        // GPU needs 8 thread blocks per instance, so r = 12 is the largest
        // factor that fits the A100's 108-SM cooperative-launch budget.
        &[4, 8, 12],
        &sizes,
        "worse than the baseline at small sizes (extra communication steps); up to 14.5x at \
         large buffers; higher r wins as sizes grow",
    )
}

/// Figure 8h: 4-node 64×V100 AllToNext.
pub fn fig8h(scale: Scale) -> Result<Figure, BenchError> {
    let sizes = if scale.is_quick() {
        size_sweep(14, 24)
    } else {
        size_sweep(12, 28)
    };
    alltonext_figure(
        "fig8h",
        "4-node, 64xV100 AllToNext (speedup over naive CUDA)",
        Machine::dgx2(4),
        // 16 GPUs per node mean 17 thread blocks per instance on the
        // boundary GPU; r = 4 is the largest factor inside the V100's
        // 80-SM budget (the paper sweeps r up to 8).
        &[1, 2, 4],
        &sizes,
        "up to ~5x at large buffers (V100 nodes share one NIC per GPU pair, so the headroom \
         is smaller than on A100 nodes)",
    )
}
