//! Ablations for the design choices DESIGN.md calls out: tile pipelining
//! (Figure 6), instruction fusion (§4.3) and chunk parallelization (§5.1).

use msccl_sim::{simulate, SimConfig};
use msccl_topology::{Machine, Protocol};
use mscclang::{compile, CompileOptions};

use crate::figures::build;
use crate::{BenchError, Figure, Mode, Scale};

/// Figure 6 ablation: pipelined versus sequential tile execution of the
/// hierarchical AllReduce. `max_tiles = 1` processes each chunk as a
/// single monolithic transfer (no overlap between the intra- and
/// inter-node phases); more tiles deepen the pipeline.
pub fn ablation_pipelining(scale: Scale) -> Result<Figure, BenchError> {
    let machine = Machine::ndv4(2);
    let ir = build(&msccl_algos::hierarchical_all_reduce(2, 8)?, 4, &machine)?;
    let tile_choices: &[usize] = &[1, 2, 4, 8, 16, 32];
    let sizes: Vec<u64> = if scale.is_quick() {
        vec![64 << 20]
    } else {
        vec![16 << 20, 64 << 20, 256 << 20, 1 << 30]
    };
    let mut rows = Vec::new();
    for bytes in sizes {
        let mut values = Vec::new();
        for &tiles in tile_choices {
            let cfg = SimConfig::new(machine.clone())
                .with_protocol(Protocol::Simple)
                .with_max_tiles(tiles);
            values.push(simulate(&ir, &cfg, bytes)?.total_us);
        }
        rows.push((bytes, values));
    }
    Ok(Figure {
        id: "ablation_pipelining".into(),
        title: "tile pipelining (Figure 6): hierarchical AllReduce latency vs pipeline depth"
            .into(),
        series: tile_choices
            .iter()
            .map(|t| format!("{t} tile(s)"))
            .collect(),
        rows,
        mode: Mode::LatencyUs,
        paper_claim: "pipelining tiles lets the intra-node and inter-node links work \
                      concurrently (Figure 6); a single tile serializes the phases"
            .into(),
        notes: vec![],
    })
}

/// §4.3 ablation: instruction fusion on versus off for the Ring AllReduce.
/// Values are the speedup of the fused program over the unfused one.
pub fn ablation_fusion(scale: Scale) -> Result<Figure, BenchError> {
    let machine = Machine::ndv4(1);
    let program = msccl_algos::ring_all_reduce(8, 1)?;
    let instances = 8;
    let fused = compile(
        &program,
        &CompileOptions::default()
            .with_verify(false)
            .with_instances(instances),
    )?;
    let unfused = compile(
        &program,
        &CompileOptions::default()
            .with_verify(false)
            .with_instances(instances)
            .with_fuse(false),
    )?;
    let sizes: Vec<u64> = if scale.is_quick() {
        vec![1 << 20]
    } else {
        vec![32 << 10, 1 << 20, 32 << 20, 256 << 20]
    };
    let mut rows = Vec::new();
    for bytes in sizes {
        let mut values = Vec::new();
        for protocol in [Protocol::Ll, Protocol::Simple] {
            let cfg = SimConfig::new(machine.clone()).with_protocol(protocol);
            let t_fused = simulate(&fused, &cfg, bytes)?.total_us;
            let t_unfused = simulate(&unfused, &cfg, bytes)?.total_us;
            values.push(t_unfused / t_fused);
        }
        rows.push((bytes, values));
    }
    Ok(Figure {
        id: "ablation_fusion".into(),
        title: format!(
            "instruction fusion (§4.3): Ring AllReduce, fused {} vs unfused {} instructions",
            fused.num_instructions(),
            unfused.num_instructions()
        ),
        series: vec!["LL".into(), "Simple".into()],
        rows,
        mode: Mode::Speedup,
        paper_claim: "fused rcs/rrcs/rrs instructions remove a global-memory round trip per \
                      hop and halve the instruction count of forwarding chains"
            .into(),
        notes: vec![],
    })
}

/// §5.1 ablation: the chunk-parallelization sweep. Latency of the Ring
/// AllReduce at increasing instance counts shows the trade-off the paper
/// describes: more parallelism saturates fat links at large sizes but
/// wastes start-up cost at small ones.
pub fn ablation_parallelization(scale: Scale) -> Result<Figure, BenchError> {
    let machine = Machine::ndv4(1);
    let program = msccl_algos::ring_all_reduce(8, 1)?;
    let choices: &[usize] = &[1, 2, 4, 8, 16, 24];
    let irs: Vec<_> = choices
        .iter()
        .map(|&r| build(&program, r, &machine))
        .collect::<Result<_, _>>()?;
    let sizes: Vec<u64> = if scale.is_quick() {
        vec![4 << 10, 4 << 20]
    } else {
        vec![4 << 10, 256 << 10, 4 << 20, 128 << 20]
    };
    let mut rows = Vec::new();
    for bytes in sizes {
        let protocol = if bytes <= 64 << 10 {
            Protocol::Ll
        } else {
            Protocol::Simple
        };
        let cfg = SimConfig::new(machine.clone()).with_protocol(protocol);
        let mut values = Vec::new();
        for ir in &irs {
            values.push(simulate(ir, &cfg, bytes)?.total_us);
        }
        rows.push((bytes, values));
    }
    Ok(Figure {
        id: "ablation_parallelization".into(),
        title: "chunk parallelization (§5.1): Ring AllReduce latency vs instance count".into(),
        series: choices.iter().map(|r| format!("r={r}")).collect(),
        rows,
        mode: Mode::LatencyUs,
        paper_claim: "a single thread block cannot saturate an NVLink, so large buffers need \
                      parallelization; beyond a point extra instances only add start-up cost"
            .into(),
        notes: vec![],
    })
}
