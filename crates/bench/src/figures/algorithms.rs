//! Algorithm exploration: the DSL's purpose is making it cheap to compare
//! collective algorithms (§7.1: "one advantage of MSCCLang is the ability
//! to explore different algorithms easily"). This figure races every
//! AllReduce in the library on one 8×A100 node, each at its best protocol
//! per size.

use msccl_topology::{Machine, Protocol};
use mscclang::IrProgram;

use crate::figures::{build, sim_us};
use crate::{size_sweep, BenchError, Figure, Mode, Scale};

/// Latency comparison of the AllToAll generations (one-, two- and
/// three-step) on a multi-node cluster: the message-count/extra-hop
/// trade-off that drives §7.3.
pub fn alltoall_generations(scale: Scale) -> Result<Figure, BenchError> {
    let machine = if scale.is_quick() {
        Machine::ndv4(2)
    } else {
        Machine::ndv4(8)
    };
    let (n, g) = (machine.num_nodes(), machine.gpus_per_node());
    let irs = vec![
        (
            "One-step".to_owned(),
            build(&msccl_algos::one_step_all_to_all(n, g)?, 1, &machine)?,
        ),
        (
            "Two-step".to_owned(),
            build(&msccl_algos::two_step_all_to_all(n, g)?, 1, &machine)?,
        ),
        (
            "Three-step".to_owned(),
            build(&msccl_algos::three_step_all_to_all(n, g)?, 1, &machine)?,
        ),
    ];
    let sizes = if scale.is_quick() {
        size_sweep(16, 22)
    } else {
        size_sweep(14, 28)
    };
    let mut rows = Vec::with_capacity(sizes.len());
    for &bytes in &sizes {
        let mut values = Vec::with_capacity(irs.len());
        for (_, ir) in &irs {
            let best = Protocol::ALL
                .iter()
                .map(|&p| sim_us(ir, &machine, p, bytes))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            values.push(best);
        }
        rows.push((bytes, values));
    }
    Ok(Figure {
        id: "alltoall_generations".into(),
        title: format!(
            "AllToAll generations on {} (latency, best protocol per point)",
            machine.name()
        ),
        series: irs.into_iter().map(|(l, _)| l).collect(),
        rows,
        mode: Mode::LatencyUs,
        paper_claim: "aggregation trades extra intra-node hops for fewer InfiniBand \
                      messages (§7.3); more aggregation wins while per-message overhead \
                      dominates, and load concentrates on port GPUs at small node counts"
            .into(),
        notes: vec![],
    })
}

/// Latency comparison of the library's AllReduce algorithms (best protocol
/// per point) on a single NDv4 node.
pub fn algorithm_comparison(scale: Scale) -> Result<Figure, BenchError> {
    let machine = Machine::ndv4(1);
    let ranks = machine.num_ranks();
    let entries: Vec<(&str, mscclang::Program, usize)> = vec![
        ("Ring ch=4", msccl_algos::ring_all_reduce(ranks, 4)?, 8),
        ("All Pairs", msccl_algos::allpairs_all_reduce(ranks)?, 2),
        (
            "Rabenseifner",
            msccl_algos::rabenseifner_all_reduce(ranks)?,
            4,
        ),
        (
            "Double tree",
            msccl_algos::double_binary_tree_all_reduce(ranks, 2)?,
            4,
        ),
        (
            "Binary tree",
            msccl_algos::binary_tree_all_reduce(ranks, 1)?,
            8,
        ),
    ];
    let irs: Vec<(String, IrProgram)> = entries
        .into_iter()
        .map(|(label, program, instances)| {
            build(&program, instances, &machine).map(|ir| (label.to_owned(), ir))
        })
        .collect::<Result<_, _>>()?;

    let sizes = if scale.is_quick() {
        size_sweep(12, 22)
    } else {
        size_sweep(10, 27)
    };
    let mut rows = Vec::with_capacity(sizes.len());
    for &bytes in &sizes {
        let mut values = Vec::with_capacity(irs.len());
        for (_, ir) in &irs {
            let best = Protocol::ALL
                .iter()
                .map(|&p| sim_us(ir, &machine, p, bytes))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            values.push(best);
        }
        rows.push((bytes, values));
    }
    Ok(Figure {
        id: "algorithm_comparison".into(),
        title: "AllReduce algorithm exploration on 1x NDv4 (latency, best protocol per point)"
            .into(),
        series: irs.into_iter().map(|(l, _)| l).collect(),
        rows,
        mode: Mode::LatencyUs,
        paper_claim: "the DSL makes exploring algorithmic alternatives cheap (§7.1); low-depth \
                      algorithms (All Pairs, trees, Rabenseifner) win small sizes, \
                      bandwidth-optimal ones (Ring, Rabenseifner) win large sizes"
            .into(),
        notes: vec![
            "all algorithms compiled by the same pipeline; instance counts fixed per \
             algorithm, protocol chosen per point"
                .into(),
        ],
    })
}
