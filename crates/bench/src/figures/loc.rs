//! The paper's program-size claim (§7): "All our programs require less
//! than 30 lines of code" — here measured as the number of routing
//! statements (loop bodies) in each DSL program, alongside the chunk
//! operations they trace to.

use crate::BenchError;

/// Renders the program-size table as markdown.
pub fn loc_table() -> Result<String, BenchError> {
    // (name, routing-statement count in the Rust source, program builder)
    let entries: Vec<(&str, usize, mscclang::Program)> = vec![
        (
            "ring_allreduce (8 ranks, 1 ch)",
            10,
            msccl_algos::ring_all_reduce(8, 1)?,
        ),
        (
            "allpairs_allreduce (8 ranks)",
            9,
            msccl_algos::allpairs_all_reduce(8)?,
        ),
        (
            "hierarchical_allreduce (2x8)",
            12,
            msccl_algos::hierarchical_all_reduce(2, 8)?,
        ),
        (
            "two_step_alltoall (4x8)",
            13,
            msccl_algos::two_step_all_to_all(4, 8)?,
        ),
        (
            "one_step_alltoall (4x8)",
            5,
            msccl_algos::one_step_all_to_all(4, 8)?,
        ),
        ("alltonext (3x8)", 17, msccl_algos::all_to_next(3, 8)?),
        ("hcm_allgather (DGX-1)", 9, msccl_algos::hcm_allgather()?),
        (
            "tree_allreduce (16 ranks)",
            9,
            msccl_algos::binary_tree_all_reduce(16, 1)?,
        ),
        (
            "three_step_alltoall (3x4)",
            16,
            msccl_algos::three_step_all_to_all(3, 4)?,
        ),
        (
            "rabenseifner_allreduce (16 ranks)",
            14,
            msccl_algos::rabenseifner_all_reduce(16)?,
        ),
        (
            "double_binary_tree (16 ranks)",
            12,
            msccl_algos::double_binary_tree_all_reduce(16, 2)?,
        ),
    ];
    let mut out = String::new();
    out.push_str("### Program sizes (§7: \"all programs require less than 30 lines\")\n\n");
    out.push_str("| algorithm | routing statements | traced chunk ops |\n|---|---|---|\n");
    for (name, stmts, program) in &entries {
        out.push_str(&format!(
            "| {name} | {stmts} | {} |\n",
            msccl_algos::routing_op_count(program)
        ));
    }
    out.push_str(
        "\n*routing statements = chunk/copy/reduce lines in the algorithm body, matching how \
         the paper counts program size; every algorithm stays well under 30.*\n",
    );
    Ok(out)
}
