//! Generators for every figure in the paper's evaluation (§7).

mod ablations;
mod algorithms;
mod allreduce;
mod alltoall;
mod alltonext;
mod loc;
mod sccl_fig;

pub use ablations::{ablation_fusion, ablation_parallelization, ablation_pipelining};
pub use algorithms::{algorithm_comparison, alltoall_generations};
pub use allreduce::{fig8a, fig8b, fig8c, fig8d};
pub use alltoall::{ablation_aggregation, fig8e, fig8f};
pub use alltonext::{fig8g, fig8h};
pub use loc::loc_table;
pub use sccl_fig::fig11;

use msccl_sim::{simulate, SimConfig};
use msccl_topology::{Machine, Protocol};
use mscclang::{compile, CompileOptions, IrProgram, Program};

use crate::BenchError;

/// Compiles a program without post-verification (figure programs are
/// verified by the unit/integration suites; benchmark compiles skip the
/// symbolic executor for speed). The target machine's SM count bounds the
/// thread block budget, letting the scheduler pack blocks when a high
/// parallelization factor would otherwise exceed the cooperative-launch
/// limit.
pub(crate) fn build(
    program: &Program,
    instances: usize,
    machine: &Machine,
) -> Result<IrProgram, BenchError> {
    Ok(compile(
        program,
        &CompileOptions::default()
            .with_verify(false)
            .with_instances(instances)
            .with_max_tbs_per_rank(machine.num_sms()),
    )?)
}

/// Simulates `ir` on `machine` at `protocol` for one buffer size.
pub(crate) fn sim_us(
    ir: &IrProgram,
    machine: &Machine,
    protocol: Protocol,
    bytes: u64,
) -> Result<f64, BenchError> {
    let cfg = SimConfig::new(machine.clone()).with_protocol(protocol);
    Ok(simulate(ir, &cfg, bytes)?.total_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, Scale};

    /// Every figure generator runs end to end at quick scale and produces
    /// plausible data.
    #[test]
    fn all_figures_generate_at_quick_scale() {
        let figures = [
            fig8a(Scale::Quick).unwrap(),
            fig8b(Scale::Quick).unwrap(),
            fig8c(Scale::Quick).unwrap(),
            fig8d(Scale::Quick).unwrap(),
            fig8e(Scale::Quick).unwrap(),
            fig8f(Scale::Quick).unwrap(),
            fig8g(Scale::Quick).unwrap(),
            fig8h(Scale::Quick).unwrap(),
            fig11(Scale::Quick).unwrap(),
            ablation_pipelining(Scale::Quick).unwrap(),
            ablation_fusion(Scale::Quick).unwrap(),
            ablation_parallelization(Scale::Quick).unwrap(),
            ablation_aggregation(Scale::Quick).unwrap(),
            algorithm_comparison(Scale::Quick).unwrap(),
            alltoall_generations(Scale::Quick).unwrap(),
        ];
        for f in &figures {
            assert!(!f.rows.is_empty(), "{} has no rows", f.id);
            assert!(!f.series.is_empty(), "{} has no series", f.id);
            for (bytes, values) in &f.rows {
                assert!(*bytes > 0);
                assert_eq!(values.len(), f.series.len(), "{} ragged row", f.id);
                for v in values {
                    assert!(v.is_finite() && *v > 0.0, "{} bad value {v}", f.id);
                }
            }
            let md = f.to_markdown();
            assert!(md.contains(&f.id));
        }
    }

    #[test]
    fn fig8a_speedup_shape_holds_at_quick_scale() {
        let f = fig8a(Scale::Quick).unwrap();
        assert_eq!(f.mode, Mode::Speedup);
        // Somewhere in the sweep MSCCLang beats NCCL.
        let peak = (0..f.series.len())
            .map(|s| f.peak(s))
            .fold(f64::NAN, f64::max);
        assert!(peak > 1.0, "no series ever beats NCCL (peak {peak})");
    }

    #[test]
    fn loc_table_lists_algorithms() {
        let t = loc_table().unwrap();
        assert!(t.contains("two_step_alltoall"));
        assert!(t.contains("hierarchical_allreduce"));
    }
}
