//! Figure 11: the SCCL comparison — the `(1,2,2)` AllGather on a DGX-1
//! under the SCCL runtime, MSCCLang Simple, and MSCCLang LL (§7.5).

use msccl_baselines::ScclAllGather;
use msccl_topology::{Machine, Protocol};

use crate::figures::sim_us;
use crate::{BenchError, Figure, Mode, Scale};

/// Figure 11: latency (µs) of the `(1,2,2)` AllGather on a DGX-1. Buffer
/// sizes follow the figure's axis, which reports the AllGather *output*
/// buffer; the per-rank input is 1/8 of it.
pub fn fig11(scale: Scale) -> Result<Figure, BenchError> {
    let machine = Machine::dgx1();
    let sccl = ScclAllGather::new()?;
    let ir = sccl.ir().clone();
    let exps = if scale.is_quick() { 15..=24 } else { 15..=30 };
    let mut rows = Vec::new();
    for e in exps {
        let output_bytes = 1u64 << e;
        let input_bytes = (output_bytes / 8).max(1);
        let t_sccl = sccl.all_gather_us(input_bytes)?;
        let t_simple = sim_us(&ir, &machine, Protocol::Simple, input_bytes)?;
        let t_ll = sim_us(&ir, &machine, Protocol::Ll, input_bytes)?;
        rows.push((output_bytes, vec![t_sccl, t_simple, t_ll]));
    }
    Ok(Figure {
        id: "fig11".into(),
        title: "(1,2,2) AllGather on DGX-1 8xV100: SCCL runtime vs MSCCLang protocols".into(),
        series: vec![
            "SCCL (1,2,2)".into(),
            "MSCCLang Simple (1,2,2)".into(),
            "MSCCLang LL (1,2,2)".into(),
        ],
        rows,
        mode: Mode::LatencyUs,
        paper_claim: "MSCCLang LL fastest at small sizes; SCCL's direct-copy protocol beats \
                      MSCCLang Simple at middle sizes; Simple and SCCL converge at large sizes"
            .into(),
        notes: vec![
            "all three series execute the identical compiled schedule; only the \
             point-to-point protocol differs"
                .into(),
        ],
    })
}
