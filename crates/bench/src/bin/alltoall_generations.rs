//! Races the one-, two- and three-step AllToAll algorithms.
//!
//! Run with `cargo run --release -p msccl-bench --bin alltoall_generations`.

fn main() -> Result<(), msccl_bench::BenchError> {
    let figure = msccl_bench::figures::alltoall_generations(msccl_bench::Scale::from_env())?;
    println!("{figure}");
    Ok(())
}
