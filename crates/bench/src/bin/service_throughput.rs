//! Service throughput tier: drives the in-process collective-as-a-
//! service daemon ([`msccl_service`]) through its real admission path
//! (token buckets, bounded queues, weighted-fair dequeue, shared
//! arenas) and reports request throughput, latency percentiles, cache
//! hit rate and shed rate — emitting `BENCH_SERVICE.json`.
//!
//! Two phases, each its own daemon:
//!
//! * **steady**: a warm, generously-quota'd daemon serving one request
//!   shape from several closed-loop clients. After the first compile
//!   every request must hit the IR cache — the phase *fails* if the hit
//!   rate lands at or below 90%, pinning the compile-or-hit contract.
//! * **overload**: a starved tenant (one-token bucket, glacial refill)
//!   and a shallow queue take a burst far over quota. Most of it must
//!   shed — structurally, with admission counters to show for it — and
//!   the accepted remainder must still meet the latency SLO. The phase
//!   fails when nothing sheds or when accepted p99 blows the budget.
//!
//! Scale: `MSCCL_BENCH_QUICK=1` shrinks clients/requests for CI.
//! Output: `MSCCL_BENCH_OUT` overrides the JSON path (default
//! `BENCH_SERVICE.json`).
//! Regression gate: `--baseline <path>` (or `MSCCL_BENCH_BASELINE`)
//! compares per-phase served-requests-per-second and exits non-zero on
//! a >30% loss (service latency is scheduler-noisier than raw executor
//! throughput, hence the wider band than runtime_throughput's 20%).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use msccl_bench::Scale;
use msccl_service::{start, CollectiveRequest, Reply, ServiceConfig, TenantSpec};

/// Accepted-request p99 budget for the overload phase, µs. Generous —
/// quick mode runs tiny collectives, so a blown budget means requests
/// queued far past their fair share, not a slow machine.
const OVERLOAD_P99_BUDGET_US: f64 = 2_000_000.0;

struct PhaseReport {
    phase: &'static str,
    requests: usize,
    served: usize,
    shed: usize,
    failed: usize,
    wall_s: f64,
    /// Served requests per wall second — the gated figure.
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    cache_hit_rate: f64,
    shed_rate: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs `total` copies of `req` through `cfg`'s daemon from `clients`
/// closed-loop threads; returns the aggregated phase report.
fn run_phase(
    phase: &'static str,
    cfg: ServiceConfig,
    req: &CollectiveRequest,
    clients: usize,
    total: usize,
) -> PhaseReport {
    let handle = start(cfg).expect("daemon starts");
    let core = handle.core();
    // One priming request so the steady phase measures the cached
    // regime, not the first compile.
    let _ = core.call(req.clone());
    let next = AtomicUsize::new(0);
    let latencies = Mutex::new(Vec::with_capacity(total));
    let shed = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let mut r = req.clone();
                r.seed = 1 + i as u64; // vary inputs, not the cache key
                let started = Instant::now();
                match core.call(r) {
                    Reply::Ok(_) => {
                        let us = started.elapsed().as_secs_f64() * 1e6;
                        latencies.lock().expect("latency lock").push(us);
                    }
                    Reply::Shed(_) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Reply::Failed(_) | Reply::BadRequest(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = handle.shutdown();
    let mut lats = latencies.into_inner().expect("latency lock");
    lats.sort_by(f64::total_cmp);
    let served = lats.len();
    PhaseReport {
        phase,
        requests: total,
        served,
        shed: shed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        wall_s,
        rps: if wall_s > 0.0 {
            served as f64 / wall_s
        } else {
            0.0
        },
        p50_us: pct(&lats, 50.0),
        p99_us: pct(&lats, 99.0),
        cache_hit_rate: stats.cache.hit_rate(),
        shed_rate: shed.load(Ordering::Relaxed) as f64 / total as f64,
    }
}

fn to_json(mode: &str, phases: &[PhaseReport]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"service_throughput\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"unit\": \"served requests / wall second\",");
    let _ = writeln!(s, "  \"entries\": [");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 == phases.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"phase\": \"{}\", \"requests\": {}, \"served\": {}, \"shed\": {}, \
             \"failed\": {}, \"rps\": {:.3}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"cache_hit_rate\": {:.4}, \"shed_rate\": {:.4}}}{comma}",
            p.phase,
            p.requests,
            p.served,
            p.shed,
            p.failed,
            p.rps,
            p.p50_us,
            p.p99_us,
            p.cache_hit_rate,
            p.shed_rate,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Pulls `phase -> rps` out of a previously emitted JSON with a
/// line-oriented scan (one entry per line; no JSON parser available).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter(|l| l.contains("\"phase\""))
        .filter_map(|l| Some((field(l, "phase")?, field(l, "rps")?.parse().ok()?)))
        .collect()
}

fn check_regression(phases: &[PhaseReport], baseline: &str, tolerance: f64) -> Result<(), String> {
    let base = parse_baseline(baseline);
    let mut compared = 0usize;
    for p in phases {
        let Some((_, base_rps)) = base.iter().find(|(name, _)| name == p.phase) else {
            continue;
        };
        compared += 1;
        let floor = base_rps * (1.0 - tolerance);
        if p.rps < floor {
            return Err(format!(
                "phase {}: {:.1} req/s is a >{:.0}% regression vs baseline {:.1} req/s",
                p.phase,
                p.rps,
                tolerance * 100.0,
                base_rps,
            ));
        }
    }
    if compared == 0 {
        return Err("baseline shares no phases with this run".into());
    }
    Ok(())
}

fn main() {
    let scale = Scale::from_env();
    let (clients, steady_total, burst_total, ranks, elems) = match scale {
        Scale::Full => (8, 2000, 400, 8, 4096),
        Scale::Quick => (4, 200, 80, 4, 256),
    };
    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let req = CollectiveRequest {
        algorithm: "ring-allreduce".into(),
        chunk_elems: elems,
        tenant: "bench".into(),
        seed: 1,
        ..CollectiveRequest::default()
    };
    let mut spec = req.spec.clone();
    spec.ranks = Some(ranks);
    let req = CollectiveRequest { spec, ..req };

    // Steady phase: quota far above the offered load, deep queue —
    // every request admitted, every request (after priming) a cache hit.
    let steady = run_phase(
        "steady",
        ServiceConfig {
            exec_workers: 2,
            queue_depth: clients * 2,
            default_rate: 1e6,
            default_burst: (steady_total + clients) as f64,
            ..ServiceConfig::default()
        },
        &req,
        clients,
        steady_total,
    );

    // Overload phase: one token, glacial refill, shallow queue — the
    // burst must shed, the accepted remainder must stay fast.
    let overload = run_phase(
        "overload",
        ServiceConfig {
            exec_workers: 2,
            queue_depth: 2,
            tenants: vec![TenantSpec {
                name: "bench".into(),
                rate: 0.001,
                burst: (burst_total / 8).max(2) as f64,
                weight: 1,
            }],
            ..ServiceConfig::default()
        },
        &req,
        clients,
        burst_total,
    );

    for p in [&steady, &overload] {
        println!(
            "{:<9} {} requests: {} served, {} shed, {} failed in {:.2}s — {:>8.1} req/s, \
             p50 {:>9.1} us, p99 {:>9.1} us, cache hit rate {:.1}%, shed rate {:.1}%",
            p.phase,
            p.requests,
            p.served,
            p.shed,
            p.failed,
            p.wall_s,
            p.rps,
            p.p50_us,
            p.p99_us,
            p.cache_hit_rate * 100.0,
            p.shed_rate * 100.0,
        );
    }

    // Contract gates — these are the acceptance criteria of the service
    // PR, enforced on every run, not just against a baseline.
    let mut bad = Vec::new();
    if steady.cache_hit_rate <= 0.90 {
        bad.push(format!(
            "steady cache hit rate {:.1}% must exceed 90% after warmup",
            steady.cache_hit_rate * 100.0
        ));
    }
    if steady.failed > 0 || overload.failed > 0 {
        bad.push(format!(
            "no request may fail outright ({} steady, {} overload did)",
            steady.failed, overload.failed
        ));
    }
    if overload.shed == 0 {
        bad.push("overload phase shed nothing; the quota gate is not engaging".into());
    }
    if overload.served == 0 {
        bad.push("overload phase served nothing; shedding must not starve the tenant".into());
    }
    if overload.p99_us > OVERLOAD_P99_BUDGET_US {
        bad.push(format!(
            "overload accepted p99 {:.0} us blows the {:.0} us SLO budget",
            overload.p99_us, OVERLOAD_P99_BUDGET_US
        ));
    }
    if !bad.is_empty() {
        for b in &bad {
            eprintln!("SERVICE CONTRACT: {b}");
        }
        std::process::exit(1);
    }

    let phases = [steady, overload];
    let json = to_json(mode, &phases);
    let out = std::env::var("MSCCL_BENCH_OUT").unwrap_or_else(|_| "BENCH_SERVICE.json".into());
    std::fs::write(&out, &json).expect("write BENCH_SERVICE.json");
    println!("wrote {out}");

    let baseline_path = std::env::args()
        .skip_while(|a| a != "--baseline")
        .nth(1)
        .or_else(|| std::env::var("MSCCL_BENCH_BASELINE").ok());
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_regression(&phases, &text, 0.30) {
            Ok(()) => println!("no regression vs {path}"),
            Err(msg) => {
                eprintln!("REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }
}
