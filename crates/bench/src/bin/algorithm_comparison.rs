//! Races the library's AllReduce algorithms on one NDv4 node.
//!
//! Run with `cargo run --release -p msccl-bench --bin algorithm_comparison`.

fn main() -> Result<(), msccl_bench::BenchError> {
    let figure = msccl_bench::figures::algorithm_comparison(msccl_bench::Scale::from_env())?;
    println!("{figure}");
    Ok(())
}
