//! Regenerates the paper's Figure 8e.
//!
//! Run with `cargo run --release -p msccl-bench --bin fig8e`; set
//! `MSCCL_BENCH_QUICK=1` for a fast reduced-scale run.

fn main() -> Result<(), msccl_bench::BenchError> {
    let figure = msccl_bench::figures::fig8e(msccl_bench::Scale::from_env())?;
    println!("{figure}");
    Ok(())
}
