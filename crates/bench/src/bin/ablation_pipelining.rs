//! Ablation bench; see the generator's documentation.
//!
//! Run with `cargo run --release -p msccl-bench --bin ablation_pipelining`.

fn main() -> Result<(), msccl_bench::BenchError> {
    let figure = msccl_bench::figures::ablation_pipelining(msccl_bench::Scale::from_env())?;
    println!("{figure}");
    Ok(())
}
