//! Prints the program-size table (§7's "<30 lines" claim).

fn main() -> Result<(), msccl_bench::BenchError> {
    println!("{}", msccl_bench::figures::loc_table()?);
    Ok(())
}
