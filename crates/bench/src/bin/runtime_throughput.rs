//! Runtime throughput tier: sweeps collective buffer sizes through the
//! *real* threaded executor (not the simulator) and reports achieved
//! GB/s plus allocation behaviour, emitting `BENCH_RUNTIME.json` — the
//! repo's measured perf trajectory.
//!
//! Scale: `MSCCL_BENCH_QUICK=1` shrinks ranks/sizes/iterations for CI.
//! Output: `MSCCL_BENCH_OUT` overrides the JSON path (default
//! `BENCH_RUNTIME.json` in the working directory).
//! Regression gate: `--baseline <path>` (or `MSCCL_BENCH_BASELINE`)
//! compares matching entries against a previously emitted JSON and exits
//! non-zero when any entry loses more than 20% GB/s.

use std::fmt::Write as _;
use std::time::Instant;

use msccl_bench::Scale;
use msccl_runtime::{execute_in_arena, reference, ExecArena, RunOptions};
use mscclang::{compile, CompileOptions, Program};

/// One measured point of the sweep.
struct Entry {
    collective: &'static str,
    ranks: usize,
    bytes_per_rank: u64,
    gbps: f64,
    /// Tile-buffer allocations per executed instruction in the measured
    /// (post-warmup) run — zero when the pool recycles perfectly.
    allocs_per_step: f64,
    pool_allocated: u64,
    pool_reused: u64,
}

fn build(collective: &'static str, ranks: usize) -> Program {
    match collective {
        "allreduce_ring" => msccl_algos::ring_all_reduce(ranks, 1).expect("builds"),
        "allgather_recursive_doubling" => {
            msccl_algos::recursive_doubling_all_gather(ranks).expect("builds")
        }
        _ => unreachable!("unknown collective {collective}"),
    }
}

fn measure(collective: &'static str, ranks: usize, bytes_per_rank: u64, iters: usize) -> Entry {
    let program = build(collective, ranks);
    let ir = compile(&program, &CompileOptions::default().with_verify(false)).expect("compiles");
    let in_chunks = ir.collective.in_chunks();
    let chunk_elems = ((bytes_per_rank as usize / 4) / in_chunks).max(1);
    let inputs = reference::random_inputs(&ir, chunk_elems, 42);
    let opts = RunOptions::default();

    // One arena across warmup and measurement: warmup runs pay every
    // allocation (tiles, rank memory, result vectors), so measured
    // iterations report the steady state — allocs_per_step == 0 when
    // recycling is perfect. Two warmups, because the pool's high
    // watermark is scheduling-dependent and can grow once more on the
    // second pass.
    let mut arena = ExecArena::new(&ir, &opts);
    for _ in 0..2 {
        let (warm, _) =
            execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).expect("warmup");
        arena.recycle_outputs(warm);
    }

    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let (out, s) =
            execute_in_arena(&ir, &inputs, chunk_elems, &opts, &mut arena).expect("runs");
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&out);
        arena.recycle_outputs(out);
        if dt < best {
            best = dt;
            // Stats travel with the iteration whose time is reported.
            stats = Some(s);
        }
    }
    let stats = stats.expect("at least one iteration");
    let moved = in_chunks as f64 * chunk_elems as f64 * 4.0;
    Entry {
        collective,
        ranks,
        bytes_per_rank: moved as u64,
        gbps: moved / best / 1e9,
        allocs_per_step: if stats.instructions == 0 {
            0.0
        } else {
            stats.pool.allocated as f64 / stats.instructions as f64
        },
        pool_allocated: stats.pool.allocated,
        pool_reused: stats.pool.reused,
    }
}

fn to_json(mode: &str, entries: &[Entry]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"runtime_throughput\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"unit\": \"GB/s (bytes-per-rank / wall time)\",");
    let _ = writeln!(s, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"collective\": \"{}\", \"ranks\": {}, \"bytes_per_rank\": {}, \
             \"gbps\": {:.3}, \"allocs_per_step\": {:.4}, \"pool_allocated\": {}, \
             \"pool_reused\": {}}}{comma}",
            e.collective,
            e.ranks,
            e.bytes_per_rank,
            e.gbps,
            e.allocs_per_step,
            e.pool_allocated,
            e.pool_reused,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Pulls `(collective, ranks, bytes_per_rank) -> gbps` out of a previously
/// emitted JSON file with a line-oriented scan (the format above is one
/// entry per line; no JSON parser in the dependency tree).
fn parse_baseline(text: &str) -> Vec<(String, usize, u64, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter(|l| l.contains("\"collective\""))
        .filter_map(|l| {
            Some((
                field(l, "collective")?,
                field(l, "ranks")?.parse().ok()?,
                field(l, "bytes_per_rank")?.parse().ok()?,
                field(l, "gbps")?.parse().ok()?,
            ))
        })
        .collect()
}

fn check_regression(entries: &[Entry], baseline: &str, tolerance: f64) -> Result<(), String> {
    let base = parse_baseline(baseline);
    let mut compared = 0usize;
    for e in entries {
        let Some((_, _, _, base_gbps)) = base
            .iter()
            .find(|(c, r, b, _)| c == e.collective && *r == e.ranks && *b == e.bytes_per_rank)
        else {
            continue;
        };
        compared += 1;
        let floor = base_gbps * (1.0 - tolerance);
        if e.gbps < floor {
            return Err(format!(
                "{} ranks={} bytes={}: {:.3} GB/s is a >{:.0}% regression vs baseline {:.3} GB/s",
                e.collective,
                e.ranks,
                e.bytes_per_rank,
                e.gbps,
                tolerance * 100.0,
                base_gbps,
            ));
        }
    }
    if compared == 0 {
        return Err("baseline shares no entries with this run".into());
    }
    Ok(())
}

fn main() {
    let scale = Scale::from_env();
    let (ranks, sizes, iters): (usize, Vec<u64>, usize) = match scale {
        Scale::Full => (8, vec![1 << 20, 8 << 20, 64 << 20], 3),
        Scale::Quick => (4, vec![1 << 16, 1 << 20], 2),
    };
    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };

    let mut entries = Vec::new();
    for collective in ["allreduce_ring", "allgather_recursive_doubling"] {
        for &bytes in &sizes {
            let e = measure(collective, ranks, bytes, iters);
            println!(
                "{:<30} ranks={} bytes/rank={:>9} {:>8.3} GB/s  allocs/step={:.4} (pool: {} allocated, {} reused)",
                e.collective, e.ranks, e.bytes_per_rank, e.gbps, e.allocs_per_step,
                e.pool_allocated, e.pool_reused,
            );
            entries.push(e);
        }
    }

    let json = to_json(mode, &entries);
    let out = std::env::var("MSCCL_BENCH_OUT").unwrap_or_else(|_| "BENCH_RUNTIME.json".into());
    std::fs::write(&out, &json).expect("write BENCH_RUNTIME.json");
    println!("wrote {out}");

    let baseline_path = std::env::args()
        .skip_while(|a| a != "--baseline")
        .nth(1)
        .or_else(|| std::env::var("MSCCL_BENCH_BASELINE").ok());
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_regression(&entries, &text, 0.20) {
            Ok(()) => println!("no regression vs {path}"),
            Err(msg) => {
                eprintln!("REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }
}
