//! Runtime throughput tier: sweeps collective buffer sizes through the
//! *real* threaded executor (not the simulator) and reports achieved
//! GB/s plus allocation behaviour, emitting `BENCH_RUNTIME.json` — the
//! repo's measured perf trajectory.
//!
//! Scale: `MSCCL_BENCH_QUICK=1` shrinks ranks/sizes/iterations for CI.
//! Output: `MSCCL_BENCH_OUT` overrides the JSON path (default
//! `BENCH_RUNTIME.json` in the working directory).
//! Regression gate: `--baseline <path>` (or `MSCCL_BENCH_BASELINE`)
//! compares matching entries against a previously emitted JSON and exits
//! non-zero when any entry loses more than 20% GB/s.
//!
//! Metrics overhead gate: every point is measured both with the
//! always-on metric counters enabled (the default every other consumer
//! sees) and disabled. Both throughputs land in the JSON. The gate
//! itself uses a paired estimator — each iteration times the two modes
//! back-to-back (alternating order so drift cancels) and the point's
//! overhead is the interquartile geometric mean of the per-pair time
//! ratios, which is far more stable against scheduler noise than
//! comparing two independent best-of minima. In quick mode the run
//! fails when the geometric mean across gated points exceeds 4% — the
//! registry's contract that "always on" is affordable. (The budget is
//! relative; it was re-set from 3% when the scheduler work tripled
//! small-row throughput and the unchanged absolute cost tripled as a
//! percentage.) The flight recorder — the always-on black-box ring
//! buffers behind `msccl doctor` — is gated by the same estimator and
//! the same 4% budget.

use std::fmt::Write as _;
use std::time::Instant;

use msccl_bench::Scale;
use msccl_runtime::{execute_in_arena, reference, ExecArena, ExecStats, RunOptions};
use mscclang::{compile, CompileOptions, EpochMode, Program};

/// One measured point of the sweep.
struct Entry {
    collective: &'static str,
    ranks: usize,
    bytes_per_rank: u64,
    gbps: f64,
    /// Throughput of the same sweep point with [`RunOptions::metrics`]
    /// off.
    gbps_metrics_off: f64,
    /// Interquartile geometric mean of per-pair `time_on / time_off`
    /// ratios — the overhead gate's estimator (1.02 = metrics cost 2% of
    /// wall time here).
    overhead_ratio: f64,
    /// Paired estimator for the always-on flight recorder
    /// ([`RunOptions::flight`], the default) against a run with it
    /// disabled: what the black-box ring buffers cost on the hot path.
    flight_overhead_ratio: f64,
    /// The same paired estimator for `--epochs auto` vs epochs off on a
    /// fault-free run: what the epoch subsystem costs when nothing
    /// fails. `Auto` consults the compiler's cost model, which declines
    /// to checkpoint when the snapshot would not amortize — so this
    /// ratio is the price of *having* the feature on, not of a forced
    /// snapshot schedule.
    epoch_overhead_ratio: f64,
    /// Paired estimator for the old 1:1 thread-per-TB model (a worker
    /// pool as wide as the thread-block count) against the default
    /// auto-sized pool: `time_oversubscribed / time_auto`, so values
    /// above 1 are the speedup the work-stealing scheduler buys by *not*
    /// spawning one OS thread per block.
    sched_speedup_ratio: f64,
    /// Tile-buffer allocations per executed instruction in the measured
    /// (post-warmup) run — zero when the pool recycles perfectly.
    allocs_per_step: f64,
    pool_allocated: u64,
    pool_reused: u64,
    /// Whether this row participates in the overhead gates. The 3%
    /// budget was calibrated on the historic low-rank rows; the 16- and
    /// 64-rank rows run microsecond-scale sync-dominated executions
    /// where a single context switch outweighs the counters, so they
    /// report their ratios but do not gate.
    gated: bool,
}

fn build(collective: &'static str, ranks: usize) -> Program {
    match collective {
        "allreduce_ring" => msccl_algos::ring_all_reduce(ranks, 1).expect("builds"),
        "allgather_recursive_doubling" => {
            msccl_algos::recursive_doubling_all_gather(ranks).expect("builds")
        }
        _ => unreachable!("unknown collective {collective}"),
    }
}

/// One paired A/B measurement over a warmed arena.
struct Paired {
    /// Best (minimum) wall time of the A configuration, seconds.
    best_a: f64,
    /// Best wall time of the B configuration, seconds.
    best_b: f64,
    /// Interquartile geometric mean of per-pair `time_a / time_b`.
    ratio: f64,
    /// [`ExecStats`] of the best A iteration.
    stats_a: ExecStats,
}

/// Times `a` and `b` back-to-back over the same warmed arena, so thermal
/// ramp and scheduler drift hit both modes alike. Each pair yields one
/// time ratio, alternating in-pair order so whichever mode runs second
/// gains no systematic edge.
///
/// The estimate is the interquartile geometric mean: it throws away the
/// tails (a descheduled worker can double a single run) while averaging
/// enough samples for the estimate to settle — a plain median of N
/// ratios wobbles several percent at these sync-dominated sizes.
/// Trimming runs per order class (a-first pairs vs b-first pairs) before
/// averaging the two classes: whichever mode runs second inherits the
/// first run's cleanup, and trimming a mixture of the two shifted
/// distributions would bias the estimate instead of cancelling the
/// shift.
fn paired(
    ir: &mscclang::IrProgram,
    inputs: &[Vec<f32>],
    chunk_elems: usize,
    arena: &mut ExecArena,
    a: &RunOptions,
    b: &RunOptions,
    iters: usize,
) -> Paired {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut ratios = Vec::with_capacity(iters);
    let mut stats_a = None;
    for i in 0..iters {
        let order = if i % 2 == 0 {
            [true, false]
        } else {
            [false, true]
        };
        let (mut t_a, mut t_b) = (f64::INFINITY, f64::INFINITY);
        for is_a in order {
            let opts = if is_a { a } else { b };
            let t0 = Instant::now();
            let (out, s) = execute_in_arena(ir, inputs, chunk_elems, opts, arena).expect("runs");
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&out);
            arena.recycle_outputs(out);
            if is_a {
                t_a = dt;
                if dt < best_a {
                    best_a = dt;
                    // Stats travel with the iteration whose time is reported.
                    stats_a = Some(s);
                }
            } else {
                t_b = dt;
                if dt < best_b {
                    best_b = dt;
                }
            }
        }
        ratios.push(t_a / t_b);
    }
    let class_log_mean = |parity: usize| -> f64 {
        let mut logs: Vec<f64> = ratios
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == parity)
            .map(|(_, r)| r.ln())
            .collect();
        logs.sort_by(f64::total_cmp);
        let mid = &logs[logs.len() / 4..(3 * logs.len()).div_ceil(4)];
        mid.iter().sum::<f64>() / mid.len() as f64
    };
    Paired {
        best_a,
        best_b,
        ratio: ((class_log_mean(0) + class_log_mean(1)) / 2.0).exp(),
        stats_a: stats_a.expect("at least one iteration"),
    }
}

fn measure(
    collective: &'static str,
    ranks: usize,
    bytes_per_rank: u64,
    iters: usize,
    gated: bool,
) -> Entry {
    let program = build(collective, ranks);
    let ir = compile(&program, &CompileOptions::default().with_verify(false)).expect("compiles");
    let in_chunks = ir.collective.in_chunks();
    let chunk_elems = ((bytes_per_rank as usize / 4) / in_chunks).max(1);
    let inputs = reference::random_inputs(&ir, chunk_elems, 42);
    let on = RunOptions::default();
    let off = RunOptions {
        metrics: false,
        ..RunOptions::default()
    };
    let flight_off = RunOptions {
        flight: false,
        ..RunOptions::default()
    };
    let epochs_auto = RunOptions {
        epochs: EpochMode::Auto,
        ..RunOptions::default()
    };
    // The old executor model: one OS thread per thread block. Pinning
    // the pool that wide reproduces its oversubscription, so the paired
    // ratio against the auto pool is the scheduler's speedup.
    let oversubscribed = RunOptions {
        worker_threads: ir.num_threadblocks(),
        ..RunOptions::default()
    };

    // One arena across warmup and measurement: warmup runs pay every
    // allocation (tiles, rank memory, result vectors), so measured
    // iterations report the steady state — allocs_per_step == 0 when
    // recycling is perfect. Two warmups, because the pool's high
    // watermark is scheduling-dependent and can grow once more on the
    // second pass.
    let mut arena = ExecArena::new(&ir, &on);
    for _ in 0..2 {
        let (warm, _) =
            execute_in_arena(&ir, &inputs, chunk_elems, &on, &mut arena).expect("warmup");
        arena.recycle_outputs(warm);
    }

    let metrics = paired(&ir, &inputs, chunk_elems, &mut arena, &on, &off, iters);
    // Flight-recorder cost: the always-on default against flight off,
    // same estimator and budget split as the epoch pair.
    let flight = paired(
        &ir,
        &inputs,
        chunk_elems,
        &mut arena,
        &on,
        &flight_off,
        (iters / 2).max(4),
    );
    // Fault-free epoch cost: `--epochs auto` against the plain default,
    // same estimator. Half the pair budget — the gate aggregates across
    // points, and this pair rides on an already-warmed arena.
    let epochs = paired(
        &ir,
        &inputs,
        chunk_elems,
        &mut arena,
        &epochs_auto,
        &on,
        (iters / 2).max(4),
    );
    // Old-vs-new scheduler: thread-per-TB-wide pool against auto.
    let sched = paired(
        &ir,
        &inputs,
        chunk_elems,
        &mut arena,
        &oversubscribed,
        &on,
        (iters / 2).max(4),
    );
    let stats = metrics.stats_a;
    let moved = in_chunks as f64 * chunk_elems as f64 * 4.0;
    Entry {
        collective,
        ranks,
        bytes_per_rank: moved as u64,
        gbps: moved / metrics.best_a / 1e9,
        gbps_metrics_off: moved / metrics.best_b / 1e9,
        overhead_ratio: metrics.ratio,
        flight_overhead_ratio: flight.ratio,
        epoch_overhead_ratio: epochs.ratio,
        sched_speedup_ratio: sched.ratio,
        allocs_per_step: if stats.instructions == 0 {
            0.0
        } else {
            stats.pool.allocated as f64 / stats.instructions as f64
        },
        pool_allocated: stats.pool.allocated,
        pool_reused: stats.pool.reused,
        gated,
    }
}

fn to_json(mode: &str, entries: &[Entry]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"runtime_throughput\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"unit\": \"GB/s (bytes-per-rank / wall time)\",");
    let _ = writeln!(s, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"collective\": \"{}\", \"ranks\": {}, \"bytes_per_rank\": {}, \
             \"gbps\": {:.3}, \"gbps_metrics_off\": {:.3}, \"metrics_overhead_ratio\": {:.4}, \
             \"flight_overhead_ratio\": {:.4}, \
             \"epoch_overhead_ratio\": {:.4}, \"sched_speedup_ratio\": {:.4}, \
             \"allocs_per_step\": {:.4}, \
             \"pool_allocated\": {}, \"pool_reused\": {}}}{comma}",
            e.collective,
            e.ranks,
            e.bytes_per_rank,
            e.gbps,
            e.gbps_metrics_off,
            e.overhead_ratio,
            e.flight_overhead_ratio,
            e.epoch_overhead_ratio,
            e.sched_speedup_ratio,
            e.allocs_per_step,
            e.pool_allocated,
            e.pool_reused,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Pulls `(collective, ranks, bytes_per_rank) -> gbps` out of a previously
/// emitted JSON file with a line-oriented scan (the format above is one
/// entry per line; no JSON parser in the dependency tree).
fn parse_baseline(text: &str) -> Vec<(String, usize, u64, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter(|l| l.contains("\"collective\""))
        .filter_map(|l| {
            Some((
                field(l, "collective")?,
                field(l, "ranks")?.parse().ok()?,
                field(l, "bytes_per_rank")?.parse().ok()?,
                field(l, "gbps")?.parse().ok()?,
            ))
        })
        .collect()
}

fn check_regression(entries: &[Entry], baseline: &str, tolerance: f64) -> Result<(), String> {
    let base = parse_baseline(baseline);
    let mut compared = 0usize;
    for e in entries {
        let Some((_, _, _, base_gbps)) = base
            .iter()
            .find(|(c, r, b, _)| c == e.collective && *r == e.ranks && *b == e.bytes_per_rank)
        else {
            continue;
        };
        compared += 1;
        let floor = base_gbps * (1.0 - tolerance);
        if e.gbps < floor {
            return Err(format!(
                "{} ranks={} bytes={}: {:.3} GB/s is a >{:.0}% regression vs baseline {:.3} GB/s",
                e.collective,
                e.ranks,
                e.bytes_per_rank,
                e.gbps,
                tolerance * 100.0,
                base_gbps,
            ));
        }
    }
    if compared == 0 {
        return Err("baseline shares no entries with this run".into());
    }
    Ok(())
}

fn main() {
    let scale = Scale::from_env();
    // Rows: (ranks, bytes/rank, paired iterations, gates?). The base
    // rows keep their historic shape so baselines stay comparable; the
    // 16- and 64-rank rows exercise the scheduler where thread blocks
    // far outnumber cores. Those rows are excluded from the overhead
    // gates (`gates?` = false): their per-run times are small and
    // sync-dominated enough that the paired estimator reads scheduler
    // noise, not counter cost.
    let rows: Vec<(usize, u64, usize, bool)> = match scale {
        // Full-scale executions are long enough that a handful of pairs
        // gives a usable interquartile band; fewer and the reported
        // overhead ratio is scheduler noise.
        Scale::Full => vec![
            (8, 1 << 20, 9, true),
            (8, 8 << 20, 9, true),
            (8, 64 << 20, 9, true),
            (16, 8 << 20, 5, false),
            (64, 8 << 20, 5, false),
        ],
        // Quick runs are tiny and sync-dominated, so the overhead gate
        // needs more best-of samples than the full-scale sweep to beat
        // scheduler noise.
        Scale::Quick => vec![
            (4, 1 << 16, 120, true),
            (4, 1 << 20, 120, true),
            (16, 1 << 16, 24, false),
            (64, 1 << 16, 12, false),
        ],
    };
    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };

    let run_sweep = || {
        let mut entries = Vec::new();
        for collective in ["allreduce_ring", "allgather_recursive_doubling"] {
            for &(ranks, bytes, iters, gated) in &rows {
                let e = measure(collective, ranks, bytes, iters, gated);
                println!(
                    "{:<30} ranks={} bytes/rank={:>9} {:>8.3} GB/s ({:>8.3} metrics off, overhead {:+.2}%, flight {:+.2}%, epochs auto {:+.2}%, sched speedup {:.2}x)  allocs/step={:.4} (pool: {} allocated, {} reused)",
                    e.collective, e.ranks, e.bytes_per_rank, e.gbps, e.gbps_metrics_off,
                    (e.overhead_ratio - 1.0) * 100.0,
                    (e.flight_overhead_ratio - 1.0) * 100.0,
                    (e.epoch_overhead_ratio - 1.0) * 100.0,
                    e.sched_speedup_ratio,
                    e.allocs_per_step, e.pool_allocated, e.pool_reused,
                );
                entries.push(e);
            }
        }
        entries
    };
    // Overhead gates: geometric mean of the per-point estimators (ratios
    // multiply, so the geomean is the right aggregate). Metrics pay for
    // "always on"; epochs pay for `--epochs auto` on a fault-free run.
    // Both share a 4% quick-mode budget. The budget is *relative*: the
    // scheduler + zero-elision work roughly tripled small-row
    // throughput, so the same absolute metrics cost now reads as a ~3×
    // larger percentage than when the 3% budget was set; 4% of today's
    // runs is still a smaller absolute cost than 3% was then.
    let overhead_of = |entries: &[Entry], ratio: fn(&Entry) -> f64| -> f64 {
        let logs: Vec<f64> = entries
            .iter()
            .filter(|e| e.gated)
            .map(|e| ratio(e).max(1e-12).ln())
            .collect();
        (logs.iter().sum::<f64>() / logs.len().max(1) as f64).exp() - 1.0
    };
    type Gate = (&'static str, fn(&Entry) -> f64);
    let gates: [Gate; 3] = [
        ("metrics", |e| e.overhead_ratio),
        ("flight", |e| e.flight_overhead_ratio),
        ("epochs-auto", |e| e.epoch_overhead_ratio),
    ];

    let mut entries = run_sweep();
    for (what, ratio) in gates {
        let mut overhead = overhead_of(&entries, ratio);
        println!(
            "{what} overhead: {:.2}% (geomean of interquartile paired on/off time ratios across {} gated points)",
            overhead * 100.0,
            entries.iter().filter(|e| e.gated).count()
        );
        if matches!(scale, Scale::Quick) && overhead > 0.04 {
            // One re-measure before failing: at quick-mode sizes a single
            // descheduled worker can shift the estimate past the budget.
            // A real regression fails both sweeps.
            println!(
                "{what} overhead {:.2}% exceeds the 4% budget; re-measuring once",
                overhead * 100.0
            );
            entries = run_sweep();
            overhead = overhead_of(&entries, ratio);
            println!("{what} overhead: {:.2}% (re-measured)", overhead * 100.0);
            if overhead > 0.04 {
                eprintln!(
                    "{} OVERHEAD: {:.2}% exceeds the 4% budget in both sweeps",
                    what.to_uppercase(),
                    overhead * 100.0
                );
                std::process::exit(1);
            }
        }
    }

    let json = to_json(mode, &entries);
    let out = std::env::var("MSCCL_BENCH_OUT").unwrap_or_else(|_| "BENCH_RUNTIME.json".into());
    std::fs::write(&out, &json).expect("write BENCH_RUNTIME.json");
    println!("wrote {out}");

    let baseline_path = std::env::args()
        .skip_while(|a| a != "--baseline")
        .nth(1)
        .or_else(|| std::env::var("MSCCL_BENCH_BASELINE").ok());
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_regression(&entries, &text, 0.20) {
            Ok(()) => println!("no regression vs {path}"),
            Err(msg) => {
                eprintln!("REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }
}
