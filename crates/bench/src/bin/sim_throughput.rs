//! Simulator throughput tier: sweeps rank counts through the serial and
//! the sharded parallel discrete-event engines and reports processed
//! events per second plus the parallel speedup, emitting
//! `BENCH_SIM.json` — the simulator's measured perf trajectory.
//!
//! Every sweep point also asserts the two engines' reports are equal, so
//! the bench doubles as a release-mode differential check at scales the
//! test tiers never reach (1,024 ranks in full mode).
//!
//! Scale: `MSCCL_BENCH_QUICK=1` shrinks rank counts and iterations for
//! CI. Output: `MSCCL_BENCH_OUT` overrides the JSON path (default
//! `BENCH_SIM.json` in the working directory). Regression gate:
//! `--baseline <path>` (or `MSCCL_BENCH_BASELINE`) compares matching
//! entries against a previously emitted JSON and exits non-zero when any
//! entry loses more than 25% parallel events/sec.
//!
//! Speedup is reported, not gated: it is a property of the host
//! (`host_cpus` lands in the JSON next to it), and a single-core CI
//! runner legitimately measures ~1×.

use std::fmt::Write as _;
use std::time::Instant;

use msccl_bench::Scale;
use msccl_sim::{ParallelBackend, SerialBackend, SimBackend, SimReport};
use msccl_topology::Machine;
use mscclang::{
    BufferKind, Collective, IrGpu, IrInstruction, IrLoc, IrProgram, IrThreadBlock, OpCode,
};

/// One measured point of the sweep.
struct Entry {
    collective: &'static str,
    ranks: usize,
    /// Simulator events processed per run (identical in both engines).
    events: u64,
    /// Modeled collective latency, microseconds (identical too).
    total_us: f64,
    serial_events_per_sec: f64,
    parallel_events_per_sec: f64,
    /// Worker threads the parallel engine ran with.
    threads: usize,
    /// `serial wall time / parallel wall time`, best-of-iters.
    speedup: f64,
}

/// Best-of-`iters` wall time for one backend, returning the last report.
fn best_of(
    backend: &dyn SimBackend,
    ir: &mscclang::IrProgram,
    cfg: &msccl_sim::SimConfig,
    bytes: u64,
    iters: usize,
) -> (f64, SimReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = backend
            .simulate(ir, cfg, bytes)
            .expect("clean program simulates");
        best = best.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    (best, report.expect("at least one iteration"))
}

/// Builds the classic chunked-ring allreduce directly as MSCCL-IR: one
/// thread block per rank on one channel, `Send`, n−2 × `RecvReduceSend`,
/// `RecvReduceCopySend`, n−2 × `RecvCopySend`, `Recv`. The compiler
/// would produce the same shape, but its fusion/scheduling passes are
/// superlinear in rank count and would dominate the bench's setup many
/// thousand times over at 1,024 ranks — and the simulator, not the
/// compiler, is the system under test here.
fn ring_ir(ranks: usize) -> IrProgram {
    let chunk = |index: usize| {
        Some(IrLoc {
            buffer: BufferKind::Input,
            index,
        })
    };
    let gpus = (0..ranks)
        .map(|r| {
            let mut instructions = Vec::with_capacity(2 * ranks - 1);
            let mut push = |op: OpCode, index: usize| {
                instructions.push(IrInstruction {
                    step: instructions.len(),
                    op,
                    src: chunk(index),
                    dst: chunk(index),
                    count: 1,
                    deps: Vec::new(),
                    has_dep: false,
                });
            };
            push(OpCode::Send, r);
            for k in 1..ranks - 1 {
                push(OpCode::RecvReduceSend, (r + ranks - k) % ranks);
            }
            push(OpCode::RecvReduceCopySend, (r + 1) % ranks);
            for k in 1..ranks - 1 {
                push(OpCode::RecvCopySend, (r + 1 + k) % ranks);
            }
            push(OpCode::Recv, r);
            IrGpu {
                rank: r,
                input_chunks: ranks,
                output_chunks: 0,
                scratch_chunks: 0,
                threadblocks: vec![IrThreadBlock {
                    id: 0,
                    send_peer: Some((r + 1) % ranks),
                    recv_peer: Some((r + ranks - 1) % ranks),
                    channel: 0,
                    instructions,
                }],
            }
        })
        .collect();
    // The sim reads only `in_chunks` from the collective (chunk size =
    // buffer / in_chunks); `Collective::all_reduce(ranks, ranks, _)`
    // would materialize O(ranks^3) postcondition reduction sets, so use
    // a structurally minimal custom collective with the same chunking.
    let collective = Collective::custom(ranks, ranks, 1, vec![vec![None]; ranks]);
    let ir = IrProgram {
        name: format!("ring_allreduce_{ranks}"),
        collective,
        protocol: None,
        num_channels: 1,
        refinement: 1,
        gpus,
        epoch_cuts: Vec::new(),
    };
    ir.check_structure().expect("generated ring IR is valid");
    ir
}

fn measure(ranks: usize, threads: usize, iters: usize) -> Entry {
    let ir = ring_ir(ranks);
    let machine = Machine::ndv4(ranks.div_ceil(8).max(1));
    let cfg = msccl_sim::SimConfig::new(machine);
    let bytes = 1u64 << 20;

    let (serial_s, serial) = best_of(&SerialBackend, &ir, &cfg, bytes, iters);
    let (parallel_s, parallel) = best_of(&ParallelBackend { threads }, &ir, &cfg, bytes, iters);
    assert_eq!(
        serial, parallel,
        "ranks={ranks}: parallel({threads}) diverged from serial"
    );

    Entry {
        collective: "allreduce_ring",
        ranks,
        events: serial.events,
        total_us: serial.total_us,
        serial_events_per_sec: serial.events as f64 / serial_s,
        parallel_events_per_sec: parallel.events as f64 / parallel_s,
        threads,
        speedup: serial_s / parallel_s,
    }
}

fn to_json(mode: &str, host_cpus: usize, entries: &[Entry]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"sim_throughput\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(s, "  \"unit\": \"simulator events per wall-clock second\",");
    let _ = writeln!(s, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"collective\": \"{}\", \"ranks\": {}, \"events\": {}, \
             \"total_us\": {:.1}, \"serial_events_per_sec\": {:.0}, \
             \"parallel_events_per_sec\": {:.0}, \"threads\": {}, \"speedup\": {:.3}}}{comma}",
            e.collective,
            e.ranks,
            e.events,
            e.total_us,
            e.serial_events_per_sec,
            e.parallel_events_per_sec,
            e.threads,
            e.speedup,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Pulls `(collective, ranks) -> parallel_events_per_sec` out of a
/// previously emitted JSON with a line-oriented scan (one entry per
/// line; no JSON parser in the dependency tree).
fn parse_baseline(text: &str) -> Vec<(String, usize, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter(|l| l.contains("\"collective\""))
        .filter_map(|l| {
            Some((
                field(l, "collective")?,
                field(l, "ranks")?.parse().ok()?,
                field(l, "parallel_events_per_sec")?.parse().ok()?,
            ))
        })
        .collect()
}

fn check_regression(entries: &[Entry], baseline: &str, tolerance: f64) -> Result<(), String> {
    let base = parse_baseline(baseline);
    let mut compared = 0usize;
    for e in entries {
        let Some((_, _, base_eps)) = base
            .iter()
            .find(|(c, r, _)| c == e.collective && *r == e.ranks)
        else {
            continue;
        };
        compared += 1;
        let floor = base_eps * (1.0 - tolerance);
        if e.parallel_events_per_sec < floor {
            return Err(format!(
                "{} ranks={}: {:.0} events/s is a >{:.0}% regression vs baseline {:.0} events/s",
                e.collective,
                e.ranks,
                e.parallel_events_per_sec,
                tolerance * 100.0,
                base_eps,
            ));
        }
    }
    if compared == 0 {
        return Err("baseline shares no entries with this run".into());
    }
    Ok(())
}

fn main() {
    let scale = Scale::from_env();
    let (rank_counts, iters): (Vec<usize>, usize) = match scale {
        Scale::Full => (vec![16, 128, 1024], 3),
        Scale::Quick => (vec![16, 128], 3),
    };
    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    // Worker count: one per core up to 8 (the shard count at every swept
    // rank count is ≥ 2 nodes, so ≥ 2 workers always have work).
    let threads = host_cpus.clamp(2, 8);

    let mut entries = Vec::new();
    for &ranks in &rank_counts {
        let e = measure(ranks, threads, iters);
        println!(
            "{:<16} ranks={:>5} events={:>9} model={:>10.1}us  serial {:>10.0} ev/s  parallel({}) {:>10.0} ev/s  speedup {:.2}x",
            e.collective,
            e.ranks,
            e.events,
            e.total_us,
            e.serial_events_per_sec,
            e.threads,
            e.parallel_events_per_sec,
            e.speedup,
        );
        entries.push(e);
    }

    let json = to_json(mode, host_cpus, &entries);
    let out = std::env::var("MSCCL_BENCH_OUT").unwrap_or_else(|_| "BENCH_SIM.json".into());
    std::fs::write(&out, &json).expect("write BENCH_SIM.json");
    println!("wrote {out}");

    let baseline_path = std::env::args()
        .skip_while(|a| a != "--baseline")
        .nth(1)
        .or_else(|| std::env::var("MSCCL_BENCH_BASELINE").ok());
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_regression(&entries, &text, 0.25) {
            Ok(()) => println!("no regression vs {path}"),
            Err(msg) => {
                eprintln!("REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }
}
