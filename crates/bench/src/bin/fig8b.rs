//! Regenerates the paper's Figure 8b.
//!
//! Run with `cargo run --release -p msccl-bench --bin fig8b`; set
//! `MSCCL_BENCH_QUICK=1` for a fast reduced-scale run.

fn main() -> Result<(), msccl_bench::BenchError> {
    let figure = msccl_bench::figures::fig8b(msccl_bench::Scale::from_env())?;
    println!("{figure}");
    Ok(())
}
