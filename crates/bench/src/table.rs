//! Figure data and markdown rendering.

use std::fmt;

use crate::human_bytes;

/// How a figure's values are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Values are speedups of each series over the named baseline (the
    /// paper's Figure 8 style).
    Speedup,
    /// Values are absolute latencies in microseconds (Figure 11 style).
    LatencyUs,
}

/// A reproduced figure: per-size values for each series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `"fig8a"`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// Series labels (columns).
    pub series: Vec<String>,
    /// Rows: buffer size and one value per series.
    pub rows: Vec<(u64, Vec<f64>)>,
    /// Value interpretation.
    pub mode: Mode,
    /// What the paper reports for this figure, for EXPERIMENTS.md.
    pub paper_claim: String,
    /// Free-form observations filled in by the generator.
    pub notes: Vec<String>,
}

impl Figure {
    /// The largest value a given series reaches across the sweep (the
    /// "up to N×" numbers the paper quotes).
    ///
    /// # Panics
    ///
    /// Panics if `series` is out of range.
    #[must_use]
    pub fn peak(&self, series: usize) -> f64 {
        assert!(series < self.series.len());
        self.rows
            .iter()
            .map(|(_, v)| v[series])
            .fold(f64::NAN, f64::max)
    }

    /// The best (max for speedups, min for latencies) value across all
    /// series at the row closest to `bytes`.
    #[must_use]
    pub fn best_at(&self, bytes: u64) -> Option<(usize, f64)> {
        let (_, values) = self.rows.iter().min_by_key(|(b, _)| b.abs_diff(bytes))?;
        let pick = |a: &(usize, &f64), b: &(usize, &f64)| match self.mode {
            Mode::Speedup => a.1.total_cmp(b.1),
            Mode::LatencyUs => b.1.total_cmp(a.1),
        };
        values
            .iter()
            .enumerate()
            .max_by(|a, b| pick(&(a.0, a.1), &(b.0, b.1)))
            .map(|(i, &v)| (i, v))
    }

    /// Renders the figure as a markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        let unit = match self.mode {
            Mode::Speedup => "speedup",
            Mode::LatencyUs => "latency (us)",
        };
        out.push_str(&format!("| size | {} |\n", self.series.join(" | ")));
        out.push_str(&format!("|---{}|\n", "|---".repeat(self.series.len())));
        for (bytes, values) in &self.rows {
            let cells: Vec<String> = values
                .iter()
                .map(|v| match self.mode {
                    Mode::Speedup => format!("{v:.2}x"),
                    Mode::LatencyUs => format!("{v:.1}"),
                })
                .collect();
            out.push_str(&format!(
                "| {} | {} |\n",
                human_bytes(*bytes),
                cells.join(" | ")
            ));
        }
        out.push_str(&format!(
            "\n*values: {unit}; paper: {}*\n",
            self.paper_claim
        ));
        for n in &self.notes {
            out.push_str(&format!("- {n}\n"));
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            id: "figX".into(),
            title: "test".into(),
            series: vec!["a".into(), "b".into()],
            rows: vec![(1024, vec![1.5, 0.9]), (2048, vec![2.0, 1.1])],
            mode: Mode::Speedup,
            paper_claim: "up to 2x".into(),
            notes: vec!["note".into()],
        }
    }

    #[test]
    fn peak_finds_max() {
        assert_eq!(sample().peak(0), 2.0);
        assert_eq!(sample().peak(1), 1.1);
    }

    #[test]
    fn best_at_picks_mode_appropriately() {
        let mut f = sample();
        assert_eq!(f.best_at(2048), Some((0, 2.0)));
        f.mode = Mode::LatencyUs;
        assert_eq!(f.best_at(2048), Some((1, 1.1)));
    }

    #[test]
    fn markdown_contains_rows_and_notes() {
        let md = sample().to_markdown();
        assert!(md.contains("| 1KB | 1.50x | 0.90x |"));
        assert!(md.contains("- note"));
        assert!(md.contains("figX"));
    }
}
